//! Canonical codes for conjunctive queries and constraint atom lists.
//!
//! A *canonical code* is a textual encoding of a set of atoms that is
//! invariant under **variable renaming** and **atom reordering** — two
//! α-equivalent queries produce byte-identical codes. The service layer
//! (`rbqa-service`, DESIGN.md §6) keys its decision/plan cache on a hash of
//! this code so that repeated and α-equivalent requests share one cache
//! entry.
//!
//! The encoding deliberately resolves relations to their **names** and
//! constants to their **interned strings** (via a caller-supplied resolver),
//! so codes are stable across [`rbqa_common::Signature`] and
//! [`rbqa_common::ValueFactory`] instances — two clients that built the
//! same query independently still collide on the same cache entry.
//!
//! # Algorithm
//!
//! Canonicalization is an ordered DFS over atom orderings (a miniature
//! graph-canonization "canonical code" search):
//!
//! 1. Given the atoms already ordered and the variables already numbered,
//!    every remaining atom has a *local signature*: its tag, relation name
//!    and argument pattern, where arguments are `Const(s)`, `Free(i)` (the
//!    i-th answer variable), `Bound(k)` (already-numbered variable `k`) or
//!    `New(j)` (j-th first occurrence within this atom).
//! 2. Only atoms with the **minimal** local signature are candidates for
//!    the next position; each choice numbers its new variables and recurses.
//! 3. The lexicographically smallest complete encoding over all explored
//!    branches is the canonical code, with prefix pruning against the best
//!    code found so far.
//!
//! In the exact regime invariance holds because every step depends only on
//! the structure of the atom set, never on input order or variable
//! identity. The search is worst-case exponential for highly symmetric
//! queries, so beyond [`MAX_EXACT_ATOMS`] atoms it degenerates to the
//! greedy first minimal candidate. The greedy regime is still
//! deterministic and invariant under variable renaming, but when two
//! atoms *tie* on their local signature the winner is the one listed
//! first — so atom-reordering invariance can be lost for such large,
//! symmetric queries. The failure mode is benign for callers keying
//! caches on the code: two equivalent queries may get *distinct* codes
//! (a spurious cache miss), never the same code for inequivalent
//! queries. Real workloads sit far below the threshold.

use rbqa_common::{Signature, Value};
use rustc_hash::FxHashMap;

use crate::atom::Atom;
use crate::cq::ConjunctiveQuery;
use crate::term::{Term, VarId};

/// Above this many atoms the tie search becomes greedy: codes remain
/// deterministic and renaming-invariant, but atom-reordering invariance is
/// only guaranteed up to local-signature ties (see module docs).
pub const MAX_EXACT_ATOMS: usize = 12;

/// An atom paired with a small integer tag. Tags separate structurally
/// different roles (e.g. TGD body vs. head atoms) without flattening them
/// into one undifferentiated soup.
pub type TaggedAtom<'a> = (u32, &'a Atom);

/// One argument of an atom, rewritten into renaming-invariant form.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum CanonArg {
    /// A constant, resolved to its string form.
    Const(String),
    /// The i-th free (answer) variable.
    Free(usize),
    /// A bound variable already numbered by the ordering prefix.
    Bound(usize),
    /// A variable first seen in this atom (j-th new one within the atom).
    New(usize),
}

/// The renaming-invariant signature of one atom under a partial numbering.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct LocalSig {
    tag: u32,
    relation: String,
    args: Vec<CanonArg>,
}

impl LocalSig {
    fn render(&self) -> String {
        let args: Vec<String> = self
            .args
            .iter()
            .map(|a| match a {
                CanonArg::Const(s) => format!("'{s}'"),
                CanonArg::Free(i) => format!("f{i}"),
                CanonArg::Bound(k) => format!("b{k}"),
                CanonArg::New(j) => format!("n{j}"),
            })
            .collect();
        format!("#{}:{}({})", self.tag, self.relation, args.join(","))
    }
}

struct Search<'a> {
    atoms: Vec<TaggedAtom<'a>>,
    sig: &'a Signature,
    resolve: &'a dyn Fn(Value) -> String,
    free_index: FxHashMap<VarId, usize>,
    exact: bool,
    best: Option<Vec<String>>,
}

impl Search<'_> {
    fn local_sig(&self, atom: TaggedAtom<'_>, numbering: &FxHashMap<VarId, usize>) -> LocalSig {
        let (tag, atom) = atom;
        let mut new_in_atom: FxHashMap<VarId, usize> = FxHashMap::default();
        let args = atom
            .args()
            .iter()
            .map(|t| match t {
                Term::Const(c) => CanonArg::Const((self.resolve)(*c)),
                Term::Var(v) => {
                    if let Some(&i) = self.free_index.get(v) {
                        CanonArg::Free(i)
                    } else if let Some(&k) = numbering.get(v) {
                        CanonArg::Bound(k)
                    } else {
                        let next = new_in_atom.len();
                        CanonArg::New(*new_in_atom.entry(*v).or_insert(next))
                    }
                }
            })
            .collect();
        LocalSig {
            tag,
            relation: self.sig.name(atom.relation()).to_owned(),
            args,
        }
    }

    /// DFS over orderings; `prefix` is the rendered code so far.
    fn dfs(
        &mut self,
        used: &mut Vec<bool>,
        numbering: &mut FxHashMap<VarId, usize>,
        prefix: &mut Vec<String>,
    ) {
        if prefix.len() == self.atoms.len() {
            if self.best.as_ref().is_none_or(|b| &*prefix < b) {
                self.best = Some(prefix.clone());
            }
            return;
        }
        // Prefix pruning: the best code is lexicographically minimal, so any
        // prefix already greater than the best's prefix cannot win.
        if let Some(best) = &self.best {
            if prefix.as_slice() > &best[..prefix.len()] {
                return;
            }
        }
        // Find the minimal local signature among unused atoms.
        let mut min_sig: Option<LocalSig> = None;
        let mut candidates: Vec<usize> = Vec::new();
        for (i, &atom) in self.atoms.iter().enumerate() {
            if used[i] {
                continue;
            }
            let sig = self.local_sig(atom, numbering);
            match &min_sig {
                None => {
                    min_sig = Some(sig);
                    candidates = vec![i];
                }
                Some(m) => match sig.cmp(m) {
                    std::cmp::Ordering::Less => {
                        min_sig = Some(sig);
                        candidates = vec![i];
                    }
                    std::cmp::Ordering::Equal => candidates.push(i),
                    std::cmp::Ordering::Greater => {}
                },
            }
        }
        let min_sig = min_sig.expect("at least one unused atom");
        if !self.exact {
            candidates.truncate(1);
        }
        for i in candidates {
            let (_, atom) = self.atoms[i];
            used[i] = true;
            prefix.push(min_sig.render());
            // Number this atom's new variables in order of occurrence.
            let mut added: Vec<VarId> = Vec::new();
            for t in atom.args() {
                if let Term::Var(v) = t {
                    if !self.free_index.contains_key(v) && !numbering.contains_key(v) {
                        numbering.insert(*v, numbering.len());
                        added.push(*v);
                    }
                }
            }
            self.dfs(used, numbering, prefix);
            for v in added {
                numbering.remove(&v);
            }
            prefix.pop();
            used[i] = false;
        }
    }
}

/// Canonical code of a tagged atom list: invariant under renaming of the
/// non-free variables and under reordering of atoms (within and across
/// tags). `free` fixes the identity of answer variables — `free[i]` is
/// encoded as `f{i}` wherever it occurs, so answer position matters but the
/// answer variable's *name* does not.
pub fn canonical_atoms_code(
    atoms: &[TaggedAtom<'_>],
    free: &[VarId],
    sig: &Signature,
    resolve: &dyn Fn(Value) -> String,
) -> String {
    if atoms.is_empty() {
        return format!("free:{}|", free.len());
    }
    let free_index: FxHashMap<VarId, usize> =
        free.iter().enumerate().map(|(i, v)| (*v, i)).collect();
    let mut search = Search {
        atoms: atoms.to_vec(),
        sig,
        resolve,
        free_index,
        exact: atoms.len() <= MAX_EXACT_ATOMS,
        best: None,
    };
    let mut used = vec![false; atoms.len()];
    let mut numbering = FxHashMap::default();
    let mut prefix = Vec::with_capacity(atoms.len());
    search.dfs(&mut used, &mut numbering, &mut prefix);
    let code = search.best.expect("search visits at least one ordering");
    format!("free:{}|{}", free.len(), code.join(";"))
}

/// Canonical code of a conjunctive query (all atoms tagged 0, free
/// variables in declaration order). Two α-equivalent queries — equal up to
/// consistent variable renaming and atom permutation — produce identical
/// codes; queries differing in constants, relations, join structure or
/// answer-variable positions produce different codes.
pub fn canonical_query_code(
    query: &ConjunctiveQuery,
    sig: &Signature,
    resolve: &dyn Fn(Value) -> String,
) -> String {
    let atoms: Vec<TaggedAtom<'_>> = query.atoms().iter().map(|a| (0u32, a)).collect();
    canonical_atoms_code(&atoms, query.free_vars(), sig, resolve)
}

/// Canonical code of a union of conjunctive queries: the canonical codes of
/// the disjuncts, sorted and deduplicated, each **length-prefixed**
/// (netstring-style, `LEN:CODE`) so that no constant occurring inside a
/// disjunct code can imitate a code boundary — without the prefix, a
/// crafted constant containing the joiner could collide two inequivalent
/// unions onto one code (and hence one cache fingerprint). The code is
/// invariant under disjunct reordering, duplicate disjuncts, α-renaming
/// inside any disjunct, and atom permutation — so `Q1 ∨ Q2` and
/// `Q2' ∨ Q1' ∨ Q2''` (primes denoting α-variants) share one code, and a
/// single-disjunct union is distinguished from larger unions only by its
/// content.
pub fn canonical_ucq_code(
    ucq: &crate::ucq::UnionOfConjunctiveQueries,
    sig: &Signature,
    resolve: &dyn Fn(Value) -> String,
) -> String {
    let mut codes: Vec<String> = ucq
        .disjuncts()
        .iter()
        .map(|q| canonical_query_code(q, sig, resolve))
        .collect();
    codes.sort();
    codes.dedup();
    let mut out = format!("union:{}|", codes.len());
    for code in codes {
        out.push_str(&format!("{}:{}", code.len(), code));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;
    use crate::ucq::UnionOfConjunctiveQueries;
    use rbqa_common::ValueFactory;

    fn code(q: &str, sig: &mut Signature, vf: &mut ValueFactory) -> String {
        let query = parse_cq(q, sig, vf).unwrap();
        let resolver = {
            let vf = vf.clone();
            move |v: Value| vf.display(v)
        };
        canonical_query_code(&query, sig, &resolver)
    }

    #[test]
    fn renamed_variables_share_a_code() {
        let (mut sig, mut vf) = (Signature::new(), ValueFactory::new());
        let a = code("Q(n) :- Prof(i, n, '10000')", &mut sig, &mut vf);
        let b = code("Q(zz) :- Prof(qq, zz, '10000')", &mut sig, &mut vf);
        assert_eq!(a, b);
    }

    #[test]
    fn permuted_atoms_share_a_code() {
        let (mut sig, mut vf) = (Signature::new(), ValueFactory::new());
        let a = code("Q() :- E(x, y), F(y, z)", &mut sig, &mut vf);
        let b = code("Q() :- F(b, c), E(a, b)", &mut sig, &mut vf);
        assert_eq!(a, b);
    }

    #[test]
    fn renamed_and_permuted_share_a_code() {
        let (mut sig, mut vf) = (Signature::new(), ValueFactory::new());
        let a = code("Q(x) :- E(x, y), E(y, z), T(z)", &mut sig, &mut vf);
        let b = code("Q(u) :- T(w), E(v, w), E(u, v)", &mut sig, &mut vf);
        assert_eq!(a, b);
    }

    #[test]
    fn different_join_structure_differs() {
        let (mut sig, mut vf) = (Signature::new(), ValueFactory::new());
        // A 2-path vs. two disconnected edges.
        let a = code("Q() :- E(x, y), E(y, z)", &mut sig, &mut vf);
        let b = code("Q() :- E(x, y), E(u, v)", &mut sig, &mut vf);
        assert_ne!(a, b);
    }

    #[test]
    fn answer_variable_position_matters() {
        let (mut sig, mut vf) = (Signature::new(), ValueFactory::new());
        let a = code("Q(x) :- E(x, y)", &mut sig, &mut vf);
        let b = code("Q(y) :- E(x, y)", &mut sig, &mut vf);
        assert_ne!(a, b);
    }

    #[test]
    fn constants_matter_and_resolve_by_name() {
        let (mut sig, mut vf) = (Signature::new(), ValueFactory::new());
        let a = code("Q() :- R(x, 'a')", &mut sig, &mut vf);
        let b = code("Q() :- R(x, 'b')", &mut sig, &mut vf);
        assert_ne!(a, b);
        // The same query built through a fresh factory (different ConstIds)
        // still collides.
        let (mut sig2, mut vf2) = (Signature::new(), ValueFactory::new());
        vf2.constant("pad0");
        vf2.constant("pad1");
        let mut sig_r = Signature::new();
        sig_r.add_relation("R", 2).unwrap();
        let a2 = code("Q() :- R(x, 'a')", &mut sig2, &mut vf2);
        assert_eq!(a, a2);
    }

    #[test]
    fn symmetric_queries_are_canonical() {
        let (mut sig, mut vf) = (Signature::new(), ValueFactory::new());
        // A triangle listed in three rotations.
        let a = code("Q() :- E(x, y), E(y, z), E(z, x)", &mut sig, &mut vf);
        let b = code("Q() :- E(z, x), E(x, y), E(y, z)", &mut sig, &mut vf);
        let c = code("Q() :- E(b, c), E(a, b), E(c, a)", &mut sig, &mut vf);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn boolean_and_unary_queries_differ() {
        let (mut sig, mut vf) = (Signature::new(), ValueFactory::new());
        let a = code("Q() :- E(x, y)", &mut sig, &mut vf);
        let b = code("Q(x) :- E(x, y)", &mut sig, &mut vf);
        assert_ne!(a, b);
    }

    #[test]
    fn tags_separate_roles() {
        let (mut sig, mut vf) = (Signature::new(), ValueFactory::new());
        let q = parse_cq("Q() :- E(x, y), F(x, y)", &mut sig, &mut vf).unwrap();
        let resolver = |v: Value| format!("{v}");
        let atoms = q.atoms();
        let same_tag: Vec<TaggedAtom<'_>> = atoms.iter().map(|a| (0u32, a)).collect();
        let split_tag: Vec<TaggedAtom<'_>> = atoms
            .iter()
            .enumerate()
            .map(|(i, a)| (i as u32, a))
            .collect();
        assert_ne!(
            canonical_atoms_code(&same_tag, &[], &sig, &resolver),
            canonical_atoms_code(&split_tag, &[], &sig, &resolver),
        );
    }

    #[test]
    fn ucq_codes_are_disjunct_order_invariant_and_deduplicated() {
        let (mut sig, mut vf) = (Signature::new(), ValueFactory::new());
        let q1 = parse_cq("Q(n) :- Prof(i, n, '10000')", &mut sig, &mut vf).unwrap();
        let q2 = parse_cq("Q(n) :- Emeritus(n, y)", &mut sig, &mut vf).unwrap();
        // α-variants of the same disjuncts, listed in the other order, with
        // one duplicated.
        let q1b = parse_cq("Q(nm) :- Prof(pid, nm, '10000')", &mut sig, &mut vf).unwrap();
        let q2b = parse_cq("Q(x) :- Emeritus(x, yr)", &mut sig, &mut vf).unwrap();
        let resolver = {
            let vf = vf.clone();
            move |v: Value| vf.display(v)
        };
        let a = canonical_ucq_code(
            &UnionOfConjunctiveQueries::from_disjuncts(vec![q1.clone(), q2.clone()]),
            &sig,
            &resolver,
        );
        let b = canonical_ucq_code(
            &UnionOfConjunctiveQueries::from_disjuncts(vec![q2b, q1b.clone(), q1b]),
            &sig,
            &resolver,
        );
        assert_eq!(a, b);
        // A single disjunct is a different union.
        let single = canonical_ucq_code(&UnionOfConjunctiveQueries::single(q1), &sig, &resolver);
        assert_ne!(a, single);
        assert!(single.starts_with("union:1|"));
    }

    #[test]
    fn crafted_constants_cannot_forge_disjunct_boundaries() {
        // Without length-prefixing, joining sorted disjunct codes with `||`
        // would make these two 2-disjunct unions collide: the crafted
        // constants embed `')||free:0|#0:R('` so that A = [R(𝑎…𝑏), R('c')]
        // and B = [R('a'), R(𝑏…𝑐)] concatenate to the same byte string.
        let (mut sig, mut vf) = (Signature::new(), ValueFactory::new());
        let a1 = parse_cq(r#"Q() :- R("a')||free:0|#0:R('b")"#, &mut sig, &mut vf).unwrap();
        let a2 = parse_cq("Q() :- R('c')", &mut sig, &mut vf).unwrap();
        let b1 = parse_cq("Q() :- R('a')", &mut sig, &mut vf).unwrap();
        let b2 = parse_cq(r#"Q() :- R("b')||free:0|#0:R('c")"#, &mut sig, &mut vf).unwrap();
        let resolver = {
            let vf = vf.clone();
            move |v: Value| vf.display(v)
        };
        let a = canonical_ucq_code(
            &UnionOfConjunctiveQueries::from_disjuncts(vec![a1, a2]),
            &sig,
            &resolver,
        );
        let b = canonical_ucq_code(
            &UnionOfConjunctiveQueries::from_disjuncts(vec![b1, b2]),
            &sig,
            &resolver,
        );
        assert_ne!(a, b, "inequivalent unions must not share a code");
    }

    #[test]
    fn empty_atom_list_is_stable() {
        let sig = Signature::new();
        let resolver = |v: Value| format!("{v}");
        assert_eq!(canonical_atoms_code(&[], &[], &sig, &resolver), "free:0|");
    }
}
