//! A compact text syntax for atoms, conjunctive queries and dependencies.
//!
//! The syntax is used by examples, tests and workload definitions; it is not
//! part of the paper but makes schemas readable:
//!
//! * **Atom**: `Prof(i, n, '10000')` — arguments starting with a lowercase
//!   letter are variables, quoted strings and numbers are constants.
//! * **Conjunctive query**: `Q(n) :- Prof(i, n, '10000')`; a Boolean query
//!   has an empty head argument list: `Q() :- Udirectory(i, a, p)`.
//! * **TGD**: `Udirectory(i, a, p) -> Prof(i, n, s)` — head variables not in
//!   the body are existentially quantified. Constants are not allowed in
//!   dependencies (the paper disallows constants in constraints).
//! * **FD**: `FD Udirectory: 1 -> 2` — positions are 1-based, as written in
//!   the paper.
//!
//! Relations are auto-declared in the supplied [`Signature`] with the arity
//! at which they are first used; later uses with a different arity are
//! errors.

use rbqa_common::{Error as CommonError, RelationId, Signature, ValueFactory};

use crate::atom::Atom;
use crate::constraints::{Fd, Tgd};
use crate::cq::ConjunctiveQuery;
use crate::term::{Term, VarPool};

/// Errors produced by the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input did not match the expected grammar.
    Syntax(String),
    /// A signature-level error (arity conflict, unknown relation).
    Signature(String),
    /// Constants are not allowed in dependencies.
    ConstantInConstraint(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Syntax(msg) => write!(f, "syntax error: {msg}"),
            ParseError::Signature(msg) => write!(f, "signature error: {msg}"),
            ParseError::ConstantInConstraint(msg) => {
                write!(f, "constants are not allowed in dependencies: {msg}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<CommonError> for ParseError {
    fn from(e: CommonError) -> Self {
        ParseError::Signature(e.to_string())
    }
}

/// Result alias for the parser.
pub type ParseResult<T> = Result<T, ParseError>;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    Quoted(String),
    Number(String),
    LParen,
    RParen,
    Comma,
    ColonDash, // ":-"
    Arrow,     // "->"
    Colon,
    Keyword(String), // "FD"
}

fn tokenize(input: &str) -> ParseResult<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ':' => {
                if i + 1 < chars.len() && chars[i + 1] == '-' {
                    tokens.push(Token::ColonDash);
                    i += 2;
                } else {
                    tokens.push(Token::Colon);
                    i += 1;
                }
            }
            '-' => {
                if i + 1 < chars.len() && chars[i + 1] == '>' {
                    tokens.push(Token::Arrow);
                    i += 2;
                } else {
                    return Err(ParseError::Syntax(format!("unexpected '-' at offset {i}")));
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut j = i + 1;
                let mut s = String::new();
                while j < chars.len() && chars[j] != quote {
                    s.push(chars[j]);
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(ParseError::Syntax("unterminated quoted constant".into()));
                }
                tokens.push(Token::Quoted(s));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                let mut s = String::new();
                while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '.') {
                    s.push(chars[j]);
                    j += 1;
                }
                tokens.push(Token::Number(s));
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                let mut s = String::new();
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    s.push(chars[j]);
                    j += 1;
                }
                if s == "FD" {
                    tokens.push(Token::Keyword(s));
                } else {
                    tokens.push(Token::Ident(s));
                }
                i = j;
            }
            other => {
                return Err(ParseError::Syntax(format!(
                    "unexpected character `{other}` at offset {i}"
                )))
            }
        }
    }
    Ok(tokens)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    sig: &'a mut Signature,
    values: &'a mut ValueFactory,
}

impl<'a> Parser<'a> {
    fn new(input: &str, sig: &'a mut Signature, values: &'a mut ValueFactory) -> ParseResult<Self> {
        Ok(Parser {
            tokens: tokenize(input)?,
            pos: 0,
            sig,
            values,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Token) -> ParseResult<()> {
        match self.next() {
            Some(ref t) if t == tok => Ok(()),
            other => Err(ParseError::Syntax(format!(
                "expected {tok:?}, found {other:?}"
            ))),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Parses `Rel(arg, ...)`, declaring the relation if needed.
    fn parse_atom(&mut self, vars: &mut VarPool, allow_constants: bool) -> ParseResult<Atom> {
        let name = match self.next() {
            Some(Token::Ident(n)) => n,
            other => {
                return Err(ParseError::Syntax(format!(
                    "expected relation name, found {other:?}"
                )))
            }
        };
        self.expect(&Token::LParen)?;
        let mut args: Vec<Term> = Vec::new();
        if self.peek() == Some(&Token::RParen) {
            self.next();
        } else {
            loop {
                match self.next() {
                    Some(Token::Ident(id)) => {
                        // Identifiers starting with a lowercase letter (or '_')
                        // are variables; others are treated as constants.
                        let first = id.chars().next().unwrap_or('_');
                        if first.is_lowercase() || first == '_' {
                            args.push(Term::Var(vars.var(&id)));
                        } else if allow_constants {
                            args.push(Term::Const(self.values.constant(&id)));
                        } else {
                            return Err(ParseError::ConstantInConstraint(id));
                        }
                    }
                    Some(Token::Quoted(s)) => {
                        if allow_constants {
                            args.push(Term::Const(self.values.constant(&s)));
                        } else {
                            return Err(ParseError::ConstantInConstraint(s));
                        }
                    }
                    Some(Token::Number(s)) => {
                        if allow_constants {
                            args.push(Term::Const(self.values.constant(&s)));
                        } else {
                            return Err(ParseError::ConstantInConstraint(s));
                        }
                    }
                    other => {
                        return Err(ParseError::Syntax(format!(
                            "expected argument, found {other:?}"
                        )))
                    }
                }
                match self.next() {
                    Some(Token::Comma) => continue,
                    Some(Token::RParen) => break,
                    other => {
                        return Err(ParseError::Syntax(format!(
                            "expected ',' or ')', found {other:?}"
                        )))
                    }
                }
            }
        }
        let rel = self.sig.add_relation(&name, args.len())?;
        Ok(Atom::new(rel, args))
    }

    fn parse_atom_list(
        &mut self,
        vars: &mut VarPool,
        allow_constants: bool,
    ) -> ParseResult<Vec<Atom>> {
        let mut atoms = vec![self.parse_atom(vars, allow_constants)?];
        while self.peek() == Some(&Token::Comma) {
            self.next();
            atoms.push(self.parse_atom(vars, allow_constants)?);
        }
        Ok(atoms)
    }
}

/// Parses a conjunctive query such as `Q(n) :- Prof(i, n, '10000')`.
///
/// Relations used in the body are declared in `sig`; constants are interned
/// in `values`.
pub fn parse_cq(
    input: &str,
    sig: &mut Signature,
    values: &mut ValueFactory,
) -> ParseResult<ConjunctiveQuery> {
    let mut p = Parser::new(input, sig, values)?;
    let mut vars = VarPool::new();
    // Head: Name(v1, ..., vk)
    let _head_name = match p.next() {
        Some(Token::Ident(n)) => n,
        other => {
            return Err(ParseError::Syntax(format!(
                "expected query head, found {other:?}"
            )))
        }
    };
    p.expect(&Token::LParen)?;
    let mut free = Vec::new();
    if p.peek() == Some(&Token::RParen) {
        p.next();
    } else {
        loop {
            match p.next() {
                Some(Token::Ident(id)) => {
                    let v = vars.var(&id);
                    if !free.contains(&v) {
                        free.push(v);
                    }
                }
                other => {
                    return Err(ParseError::Syntax(format!(
                        "query head arguments must be variables, found {other:?}"
                    )))
                }
            }
            match p.next() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                other => {
                    return Err(ParseError::Syntax(format!(
                        "expected ',' or ')', found {other:?}"
                    )))
                }
            }
        }
    }
    p.expect(&Token::ColonDash)?;
    let atoms = p.parse_atom_list(&mut vars, true)?;
    if !p.at_end() {
        return Err(ParseError::Syntax("trailing input after query".into()));
    }
    // Safety check: free variables must occur in the body.
    let body_vars = {
        let mut seen = Vec::new();
        for a in &atoms {
            for v in a.variables() {
                if !seen.contains(&v) {
                    seen.push(v);
                }
            }
        }
        seen
    };
    for v in &free {
        if !body_vars.contains(v) {
            return Err(ParseError::Syntax(format!(
                "free variable `{}` does not occur in the query body",
                vars.name(*v)
            )));
        }
    }
    Ok(ConjunctiveQuery::new(vars, free, atoms))
}

/// Parses a TGD such as `Udirectory(i, a, p) -> Prof(i, n, s)`.
pub fn parse_tgd(input: &str, sig: &mut Signature, values: &mut ValueFactory) -> ParseResult<Tgd> {
    let mut p = Parser::new(input, sig, values)?;
    let mut vars = VarPool::new();
    let body = p.parse_atom_list(&mut vars, false)?;
    p.expect(&Token::Arrow)?;
    let head = p.parse_atom_list(&mut vars, false)?;
    if !p.at_end() {
        return Err(ParseError::Syntax("trailing input after dependency".into()));
    }
    Ok(Tgd::new(vars, body, head))
}

/// Parses an FD such as `FD Udirectory: 1 -> 2` (1-based positions).
pub fn parse_fd(input: &str, sig: &mut Signature) -> ParseResult<Fd> {
    let mut values = ValueFactory::new();
    let mut p = Parser::new(input, sig, &mut values)?;
    match p.next() {
        Some(Token::Keyword(k)) if k == "FD" => {}
        other => {
            return Err(ParseError::Syntax(format!(
                "expected `FD`, found {other:?}"
            )))
        }
    }
    let rel_name = match p.next() {
        Some(Token::Ident(n)) => n,
        other => {
            return Err(ParseError::Syntax(format!(
                "expected relation name, found {other:?}"
            )))
        }
    };
    let rel: RelationId = p
        .sig
        .relation_by_name(&rel_name)
        .ok_or_else(|| ParseError::Signature(format!("unknown relation `{rel_name}`")))?;
    p.expect(&Token::Colon)?;
    let mut determiners = Vec::new();
    loop {
        match p.next() {
            Some(Token::Number(n)) => {
                let pos: usize = n
                    .parse()
                    .map_err(|_| ParseError::Syntax(format!("bad position `{n}`")))?;
                if pos == 0 {
                    return Err(ParseError::Syntax("positions are 1-based".into()));
                }
                determiners.push(pos - 1);
            }
            other => {
                return Err(ParseError::Syntax(format!(
                    "expected position number, found {other:?}"
                )))
            }
        }
        match p.next() {
            Some(Token::Comma) => continue,
            Some(Token::Arrow) => break,
            other => {
                return Err(ParseError::Syntax(format!(
                    "expected ',' or '->', found {other:?}"
                )))
            }
        }
    }
    let determined = match p.next() {
        Some(Token::Number(n)) => {
            let pos: usize = n
                .parse()
                .map_err(|_| ParseError::Syntax(format!("bad position `{n}`")))?;
            if pos == 0 {
                return Err(ParseError::Syntax("positions are 1-based".into()));
            }
            pos - 1
        }
        other => {
            return Err(ParseError::Syntax(format!(
                "expected position number, found {other:?}"
            )))
        }
    };
    if !p.at_end() {
        return Err(ParseError::Syntax("trailing input after FD".into()));
    }
    let arity = p.sig.arity(rel);
    for pos in determiners.iter().chain(std::iter::once(&determined)) {
        if *pos >= arity {
            return Err(ParseError::Signature(format!(
                "position {} out of range for `{rel_name}` of arity {arity}",
                pos + 1
            )));
        }
    }
    Ok(Fd::new(rel, determiners, determined))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_query_with_constant() {
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        let q = parse_cq("Q(n) :- Prof(i, n, '10000')", &mut sig, &mut vf).unwrap();
        assert_eq!(q.free_vars().len(), 1);
        assert_eq!(q.size(), 1);
        assert_eq!(q.constants().len(), 1);
        assert_eq!(sig.arity(sig.require("Prof").unwrap()), 3);
    }

    #[test]
    fn parse_boolean_query() {
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        let q = parse_cq("Q() :- Udirectory(i, a, p)", &mut sig, &mut vf).unwrap();
        assert!(q.is_boolean());
    }

    #[test]
    fn parse_multi_atom_query_shares_variables() {
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        let q = parse_cq(
            "Q(a) :- Udirectory(i, a, p), Prof(i, n, s)",
            &mut sig,
            &mut vf,
        )
        .unwrap();
        assert_eq!(q.size(), 2);
        assert_eq!(q.all_variables().len(), 5);
    }

    #[test]
    fn parse_tgd_and_classify() {
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        let tgd = parse_tgd("Udirectory(i, a, p) -> Prof(i, n, s)", &mut sig, &mut vf).unwrap();
        assert!(tgd.is_uid());
        assert_eq!(tgd.width(), 1);
    }

    #[test]
    fn parse_full_tgd_with_two_body_atoms() {
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        let tgd = parse_tgd("T(y), S(x) -> T(x)", &mut sig, &mut vf).unwrap();
        assert!(tgd.is_full());
        assert!(!tgd.is_id());
    }

    #[test]
    fn constants_rejected_in_tgds() {
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        let err = parse_tgd("R(x, '5') -> S(x)", &mut sig, &mut vf).unwrap_err();
        assert!(matches!(err, ParseError::ConstantInConstraint(_)));
    }

    #[test]
    fn parse_fd_one_based() {
        let mut sig = Signature::new();
        sig.add_relation("Udirectory", 3).unwrap();
        let fd = parse_fd("FD Udirectory: 1 -> 2", &mut sig).unwrap();
        assert_eq!(fd.determined(), 1);
        assert!(fd.determiners().contains(&0));
    }

    #[test]
    fn parse_fd_composite_lhs() {
        let mut sig = Signature::new();
        sig.add_relation("R", 4).unwrap();
        let fd = parse_fd("FD R: 1, 3 -> 4", &mut sig).unwrap();
        assert_eq!(fd.determiners().len(), 2);
        assert_eq!(fd.determined(), 3);
    }

    #[test]
    fn parse_fd_unknown_relation_fails() {
        let mut sig = Signature::new();
        assert!(parse_fd("FD Nope: 1 -> 2", &mut sig).is_err());
    }

    #[test]
    fn parse_fd_position_out_of_range_fails() {
        let mut sig = Signature::new();
        sig.add_relation("R", 2).unwrap();
        assert!(parse_fd("FD R: 1 -> 5", &mut sig).is_err());
    }

    #[test]
    fn arity_conflicts_are_detected() {
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        parse_cq("Q() :- R(x, y)", &mut sig, &mut vf).unwrap();
        let err = parse_cq("Q() :- R(x)", &mut sig, &mut vf).unwrap_err();
        assert!(matches!(err, ParseError::Signature(_)));
    }

    #[test]
    fn unsafe_query_rejected() {
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        let err = parse_cq("Q(z) :- R(x, y)", &mut sig, &mut vf).unwrap_err();
        assert!(matches!(err, ParseError::Syntax(_)));
    }

    #[test]
    fn syntax_errors_reported() {
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        assert!(parse_cq("Q(x) : R(x)", &mut sig, &mut vf).is_err());
        assert!(parse_cq("Q(x) :- R(x", &mut sig, &mut vf).is_err());
        assert!(parse_tgd("R(x) - S(x)", &mut sig, &mut vf).is_err());
    }

    #[test]
    fn uppercase_bare_identifiers_are_constants_in_queries() {
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        let q = parse_cq("Q() :- R(x, Alice)", &mut sig, &mut vf).unwrap();
        assert_eq!(q.constants().len(), 1);
    }
}
