//! Homomorphisms from conjunctive queries into instances.
//!
//! A Boolean CQ `Q` holds in an instance `I` exactly when there is a
//! homomorphism from `Q` to `I`: a mapping of the variables of `Q` to values
//! of `I` (identity on constants) sending every atom of `Q` to a fact of `I`
//! (paper, Section 2). The search below is a straightforward backtracking
//! join that uses the per-position indexes of [`Instance`] and a
//! most-constrained-atom-first ordering heuristic.

use rbqa_common::{Instance, Value};
use rustc_hash::FxHashMap;

use crate::atom::Atom;
use crate::cq::ConjunctiveQuery;
use crate::term::{Term, VarId};

/// A variable assignment witnessing a homomorphism.
pub type Homomorphism = FxHashMap<VarId, Value>;

/// Searches for a single homomorphism from `query` into `instance`
/// extending `seed` (which may pre-assign some variables, e.g. the free
/// variables of a non-Boolean query).
pub fn find_homomorphism(
    query: &ConjunctiveQuery,
    instance: &Instance,
    seed: &Homomorphism,
) -> Option<Homomorphism> {
    let mut collector = SingleCollector { found: None };
    search(
        query.atoms(),
        instance,
        seed.clone(),
        &mut collector,
        &mut 0,
        usize::MAX,
    );
    collector.found
}

/// Whether the Boolean closure of `query` holds in `instance`.
pub fn holds(query: &ConjunctiveQuery, instance: &Instance) -> bool {
    find_homomorphism(query, instance, &Homomorphism::default()).is_some()
}

/// Enumerates homomorphisms from `query` into `instance`, up to `limit`
/// results (use `usize::MAX` for all). Enumeration order is deterministic.
pub fn all_homomorphisms(
    query: &ConjunctiveQuery,
    instance: &Instance,
    limit: usize,
) -> Vec<Homomorphism> {
    all_homomorphisms_seeded(query, instance, &Homomorphism::default(), limit)
}

/// Enumerates homomorphisms from `query` into `instance` that extend the
/// partial assignment `seed`, up to `limit` results. Every returned
/// assignment contains the seed bindings. This is the entry point used by
/// the semi-naive chase: a body atom is unified with a freshly derived fact
/// and the remaining atoms are joined against the full instance, so only
/// matches touching the delta are enumerated.
pub fn all_homomorphisms_seeded(
    query: &ConjunctiveQuery,
    instance: &Instance,
    seed: &Homomorphism,
    limit: usize,
) -> Vec<Homomorphism> {
    let mut collector = AllCollector { found: Vec::new() };
    search(
        query.atoms(),
        instance,
        seed.clone(),
        &mut collector,
        &mut 0,
        limit,
    );
    collector.found
}

trait Collector {
    /// Records a complete assignment; returns `true` to continue searching.
    fn record(&mut self, assignment: &Homomorphism, limit: usize) -> bool;
}

struct SingleCollector {
    found: Option<Homomorphism>,
}

impl Collector for SingleCollector {
    fn record(&mut self, assignment: &Homomorphism, _limit: usize) -> bool {
        self.found = Some(assignment.clone());
        false
    }
}

struct AllCollector {
    found: Vec<Homomorphism>,
}

impl Collector for AllCollector {
    fn record(&mut self, assignment: &Homomorphism, limit: usize) -> bool {
        self.found.push(assignment.clone());
        self.found.len() < limit
    }
}

/// Backtracking search. `atoms` is processed in a dynamically chosen order:
/// at each step the atom with the most already-bound terms is expanded first
/// (a cheap proxy for selectivity).
fn search<C: Collector>(
    atoms: &[Atom],
    instance: &Instance,
    assignment: Homomorphism,
    collector: &mut C,
    steps: &mut u64,
    limit: usize,
) -> bool {
    fn bound_count(atom: &Atom, assignment: &Homomorphism) -> usize {
        atom.args()
            .iter()
            .filter(|t| match t {
                Term::Const(_) => true,
                Term::Var(v) => assignment.contains_key(v),
            })
            .count()
    }

    fn recurse<C: Collector>(
        remaining: &mut Vec<&Atom>,
        instance: &Instance,
        assignment: &mut Homomorphism,
        collector: &mut C,
        steps: &mut u64,
        limit: usize,
    ) -> bool {
        *steps += 1;
        if remaining.is_empty() {
            return collector.record(assignment, limit);
        }
        // Pick the most-bound atom.
        let (best_idx, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, a)| (i, bound_count(a, assignment)))
            .max_by_key(|&(_, c)| c)
            .expect("remaining is non-empty");
        let atom = remaining.swap_remove(best_idx);

        // Build the binding of already-determined positions.
        let mut binding: Vec<(usize, Value)> = Vec::new();
        for (pos, term) in atom.args().iter().enumerate() {
            match term {
                Term::Const(c) => binding.push((pos, *c)),
                Term::Var(v) => {
                    if let Some(val) = assignment.get(v) {
                        binding.push((pos, *val));
                    }
                }
            }
        }

        let candidates: Vec<Vec<Value>> = instance
            .matching_tuples(atom.relation(), &binding)
            .into_iter()
            .map(|t| t.to_vec())
            .collect();

        let mut keep_going = true;
        'tuples: for tuple in candidates {
            // Try to extend the assignment consistently with this tuple.
            let mut newly_bound: Vec<VarId> = Vec::new();
            for (pos, term) in atom.args().iter().enumerate() {
                match term {
                    Term::Const(c) => {
                        if tuple[pos] != *c {
                            for v in newly_bound.drain(..) {
                                assignment.remove(&v);
                            }
                            continue 'tuples;
                        }
                    }
                    Term::Var(v) => match assignment.get(v) {
                        Some(val) => {
                            if tuple[pos] != *val {
                                for v in newly_bound.drain(..) {
                                    assignment.remove(&v);
                                }
                                continue 'tuples;
                            }
                        }
                        None => {
                            assignment.insert(*v, tuple[pos]);
                            newly_bound.push(*v);
                        }
                    },
                }
            }
            keep_going = recurse(remaining, instance, assignment, collector, steps, limit);
            for v in newly_bound {
                assignment.remove(&v);
            }
            if !keep_going {
                break;
            }
        }
        remaining.push(atom);
        // Restore position irrelevant: order is re-chosen dynamically.
        keep_going
    }

    let mut remaining: Vec<&Atom> = atoms.iter().collect();
    let mut assignment = assignment;
    recurse(
        &mut remaining,
        instance,
        &mut assignment,
        collector,
        steps,
        limit,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::CqBuilder;
    use rbqa_common::{Instance, Signature, ValueFactory};

    fn graph_setup() -> (Signature, rbqa_common::RelationId) {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2).unwrap();
        (sig, e)
    }

    #[test]
    fn path_query_holds_on_path() {
        let (sig, e) = graph_setup();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let c = vf.constant("c");
        let mut inst = Instance::new(sig.clone());
        inst.insert(e, vec![a, b]).unwrap();
        inst.insert(e, vec![b, c]).unwrap();

        // Q :- E(x, y), E(y, z)
        let mut builder = CqBuilder::new();
        let (x, y, z) = (builder.var("x"), builder.var("y"), builder.var("z"));
        let q = builder
            .atom(e, vec![x.into(), y.into(), z.into()][..2].to_vec())
            .atom(e, vec![y.into(), z.into()])
            .build();
        assert!(holds(&q, &inst));
    }

    #[test]
    fn triangle_query_fails_on_path() {
        let (sig, e) = graph_setup();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let c = vf.constant("c");
        let mut inst = Instance::new(sig.clone());
        inst.insert(e, vec![a, b]).unwrap();
        inst.insert(e, vec![b, c]).unwrap();

        // Q :- E(x, y), E(y, z), E(z, x)
        let mut builder = CqBuilder::new();
        let (x, y, z) = (builder.var("x"), builder.var("y"), builder.var("z"));
        let q = builder
            .atom(e, vec![x.into(), y.into()])
            .atom(e, vec![y.into(), z.into()])
            .atom(e, vec![z.into(), x.into()])
            .build();
        assert!(!holds(&q, &inst));

        // Adding the closing edge makes it hold.
        inst.insert(e, vec![c, a]).unwrap();
        assert!(holds(&q, &inst));
    }

    #[test]
    fn constants_must_match_exactly() {
        let (sig, e) = graph_setup();
        let mut builder = CqBuilder::new();
        let x = builder.var("x");
        let a_term = builder.constant("a");
        let (q, mut vf) = {
            builder.atom(e, vec![a_term, x.into()]);
            builder.build_with_values()
        };
        let a = vf.constant("a");
        let b = vf.constant("b");
        let mut inst = Instance::new(sig.clone());
        inst.insert(e, vec![b, b]).unwrap();
        assert!(!holds(&q, &inst));
        inst.insert(e, vec![a, b]).unwrap();
        assert!(holds(&q, &inst));
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let (sig, e) = graph_setup();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let mut inst = Instance::new(sig.clone());
        inst.insert(e, vec![a, b]).unwrap();

        // Q :- E(x, x) : requires a self-loop.
        let mut builder = CqBuilder::new();
        let x = builder.var("x");
        let q = builder.atom(e, vec![x.into(), x.into()]).build();
        assert!(!holds(&q, &inst));
        inst.insert(e, vec![b, b]).unwrap();
        assert!(holds(&q, &inst));
    }

    #[test]
    fn seed_constrains_search() {
        let (sig, e) = graph_setup();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let mut inst = Instance::new(sig.clone());
        inst.insert(e, vec![a, b]).unwrap();
        inst.insert(e, vec![b, b]).unwrap();

        let mut builder = CqBuilder::new();
        let (x, y) = (builder.var("x"), builder.var("y"));
        let q = builder.atom(e, vec![x.into(), y.into()]).build();

        let mut seed = Homomorphism::default();
        seed.insert(x, a);
        let h = find_homomorphism(&q, &inst, &seed).unwrap();
        assert_eq!(h[&x], a);
        assert_eq!(h[&y], b);

        let mut bad_seed = Homomorphism::default();
        bad_seed.insert(y, a);
        assert!(find_homomorphism(&q, &inst, &bad_seed).is_none());
    }

    #[test]
    fn all_homomorphisms_enumerates_and_respects_limit() {
        let (sig, e) = graph_setup();
        let mut vf = ValueFactory::new();
        let vals: Vec<_> = (0..4).map(|i| vf.constant(&format!("v{i}"))).collect();
        let mut inst = Instance::new(sig.clone());
        for &u in &vals {
            for &w in &vals {
                inst.insert(e, vec![u, w]).unwrap();
            }
        }
        let mut builder = CqBuilder::new();
        let (x, y) = (builder.var("x"), builder.var("y"));
        let q = builder.atom(e, vec![x.into(), y.into()]).build();
        assert_eq!(all_homomorphisms(&q, &inst, usize::MAX).len(), 16);
        assert_eq!(all_homomorphisms(&q, &inst, 5).len(), 5);
    }

    #[test]
    fn empty_query_always_holds() {
        let (sig, _) = graph_setup();
        let inst = Instance::new(sig);
        let q = CqBuilder::new().build();
        assert!(holds(&q, &inst));
    }
}
