//! Homomorphisms from conjunctive queries into instances.
//!
//! A Boolean CQ `Q` holds in an instance `I` exactly when there is a
//! homomorphism from `Q` to `I`: a mapping of the variables of `Q` to values
//! of `I` (identity on constants) sending every atom of `Q` to a fact of `I`
//! (paper, Section 2). This module is the matching kernel every decision
//! procedure of the workspace bottoms out in — chase trigger enumeration,
//! AMonDet containment, query evaluation and plan validation.
//!
//! Two implementations share one semantics:
//!
//! * **The compiled kernel** (default). A CQ body is compiled once into a
//!   [`MatchProgram`]: an atom order fixed up front (most-constrained-first
//!   with bound-variable lookahead), with every position classified at
//!   compile time as a constant probe, a bound-variable probe, a
//!   first-occurrence bind or a repeated-variable check. Execution walks the
//!   program with a dense [`Binding`] (a flat slot per variable, undo-stack
//!   backtracking — no hash maps, no per-step clones), probing the flat
//!   posting-list storage of [`Instance`] (`matching_rows_into`,
//!   `first_matching_row`); fully-bound atoms degrade to a single O(1)
//!   membership test. Programs are cached per TGD by the chase engines (see
//!   `rbqa-chase`), and compiled on the fly by the one-shot entry points
//!   below.
//! * **The [`mod@reference`] kernel**. The original backtracking join, kept as
//!   the executable specification: the differential property test in
//!   `tests/hom_kernel_differential.rs` pins the compiled kernel against it
//!   on random queries and instances, and the benchmark harness
//!   (`fig_hom_kernel`, `hom_report`) uses it as the speedup baseline via
//!   [`set_kernel_mode`].
//!
//! The free functions ([`find_homomorphism`], [`holds`],
//! [`all_homomorphisms`], [`all_homomorphisms_seeded`]) are the stable
//! compatibility surface: same signatures as before the kernel rewrite,
//! dispatching on the process-wide [`KernelMode`].

use std::sync::atomic::{AtomicU8, Ordering};

use rbqa_common::{Instance, RelationId, Value};
use rustc_hash::FxHashMap;

use crate::atom::Atom;
use crate::cq::ConjunctiveQuery;
use crate::term::{Term, VarId};

/// A variable assignment witnessing a homomorphism.
pub type Homomorphism = FxHashMap<VarId, Value>;

// ---------------------------------------------------------------------------
// Kernel selection
// ---------------------------------------------------------------------------

/// Which matching kernel the free functions and [`MatchProgram`] execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// The compiled match-program kernel over flat storage (default).
    #[default]
    Compiled,
    /// The retained reference backtracking search — the baseline
    /// implementation used by differential tests and benchmark baselines.
    Reference,
}

impl KernelMode {
    /// Stable lowercase name, used in benchmark reports.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelMode::Compiled => "compiled",
            KernelMode::Reference => "reference",
        }
    }
}

static KERNEL_MODE: AtomicU8 = AtomicU8::new(0);

/// Selects the process-wide matching kernel. Intended for benchmark
/// harnesses and differential tests that need the [`KernelMode::Reference`]
/// baseline; production code leaves the default in place.
pub fn set_kernel_mode(mode: KernelMode) {
    KERNEL_MODE.store(mode as u8, Ordering::Relaxed);
}

/// The currently selected matching kernel.
pub fn kernel_mode() -> KernelMode {
    match KERNEL_MODE.load(Ordering::Relaxed) {
        0 => KernelMode::Compiled,
        _ => KernelMode::Reference,
    }
}

// ---------------------------------------------------------------------------
// Dense bindings
// ---------------------------------------------------------------------------

/// A dense variable assignment: one slot per [`VarId`], with an undo trail
/// for backtracking. Replaces the hash-map `Homomorphism` inside the search
/// (zero clones and zero hashing per search step); convert with
/// [`Binding::to_homomorphism`] at the boundary.
#[derive(Debug, Clone)]
pub struct Binding {
    slots: Vec<Option<Value>>,
    trail: Vec<VarId>,
}

impl Binding {
    /// A binding with `slots` unbound variable slots.
    pub fn new(slots: usize) -> Self {
        Binding {
            slots: vec![None; slots],
            trail: Vec::new(),
        }
    }

    /// The value bound to `var`, if any.
    #[inline]
    pub fn get(&self, var: VarId) -> Option<Value> {
        self.slots.get(var.index()).copied().flatten()
    }

    /// Binds `var` to `value`, recording the assignment on the undo trail.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) when `var` is already bound — rebinding
    /// without undoing first would corrupt the trail.
    #[inline]
    pub fn bind(&mut self, var: VarId, value: Value) {
        debug_assert!(self.slots[var.index()].is_none(), "rebinding {var:?}");
        self.slots[var.index()] = Some(value);
        self.trail.push(var);
    }

    /// A checkpoint of the current trail position.
    #[inline]
    pub fn mark(&self) -> usize {
        self.trail.len()
    }

    /// Unbinds every variable bound after `mark` (stack discipline).
    #[inline]
    pub fn undo_to(&mut self, mark: usize) {
        for var in self.trail.drain(mark..) {
            self.slots[var.index()] = None;
        }
    }

    /// Number of currently bound variables.
    pub fn bound_count(&self) -> usize {
        self.trail.len()
    }

    /// Iterates over the bound `(variable, value)` pairs in slot order.
    pub fn iter_bound(&self) -> impl Iterator<Item = (VarId, Value)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|val| (VarId::from_index(i), val)))
    }

    /// Converts to the hash-map representation used at API boundaries.
    pub fn to_homomorphism(&self) -> Homomorphism {
        self.iter_bound().collect()
    }
}

// ---------------------------------------------------------------------------
// Compiled match programs
// ---------------------------------------------------------------------------

/// One compiled body atom: positions classified against the variables known
/// to be bound when the step runs.
#[derive(Debug, Clone)]
struct Step {
    relation: RelationId,
    /// `(position, constant)` pairs — resolved at compile time.
    const_probe: Vec<(usize, Value)>,
    /// `(position, variable)` pairs whose variable is bound before this
    /// step; the probe value is read from the binding at run time.
    var_probe: Vec<(usize, VarId)>,
    /// First occurrences of unbound variables: bind from the matched row.
    binds: Vec<(usize, VarId)>,
    /// Repeated occurrences within this atom: check against the value just
    /// bound by `binds`.
    checks: Vec<(usize, VarId)>,
}

impl Step {
    /// Whether the probe determines the whole tuple (no binds, no checks):
    /// the step degrades to a single membership test.
    fn is_full_probe(&self) -> bool {
        self.binds.is_empty() && self.checks.is_empty()
    }
}

/// A CQ body compiled for repeated matching against instances: atom order
/// and per-position operations fixed at compile time, relative to a declared
/// set of seed variables (the variables the caller binds before running).
///
/// Compile once, run many times — the chase engines cache one program per
/// TGD body/head (see `rbqa-chase`); the free functions of this module
/// compile throwaway programs for one-shot queries.
///
/// ```
/// use rbqa_common::{Instance, Signature, ValueFactory};
/// use rbqa_logic::homomorphism::MatchProgram;
/// use rbqa_logic::CqBuilder;
/// let mut sig = Signature::new();
/// let e = sig.add_relation("E", 2).unwrap();
/// let mut vf = ValueFactory::new();
/// let (a, b) = (vf.constant("a"), vf.constant("b"));
/// let mut inst = Instance::new(sig);
/// inst.insert(e, vec![a, b]).unwrap();
/// let mut builder = CqBuilder::new();
/// let (x, y) = (builder.var("x"), builder.var("y"));
/// let q = builder.atom(e, vec![x.into(), y.into()]).build();
/// let program = MatchProgram::compile(&q, &[]);
/// assert!(program.exists(&inst, &[]));
/// // A program declares its seed variables at compile time.
/// let seeded = MatchProgram::compile(&q, &[x]);
/// assert_eq!(seeded.find(&inst, &[(x, b)]), None); // b has no outgoing edge
/// assert!(seeded.find(&inst, &[(x, a)]).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct MatchProgram {
    /// Source atoms in original order — the reference kernel's input.
    atoms: Vec<Atom>,
    /// Compiled steps in execution order.
    steps: Vec<Step>,
    /// Variables the caller must bind before running (sorted).
    seed_vars: Vec<VarId>,
    /// Dense slot count covering every variable of atoms and seed.
    slots: usize,
}

impl MatchProgram {
    /// Compiles the body of `query`, assuming the variables in `seed_vars`
    /// are bound by the caller before execution.
    pub fn compile(query: &ConjunctiveQuery, seed_vars: &[VarId]) -> MatchProgram {
        Self::compile_atoms_with_slots(query.atoms(), seed_vars, query.vars().len())
    }

    /// Compiles a bare atom list (used by the chase, whose TGD bodies and
    /// heads share one variable pool without being full queries).
    pub fn compile_atoms(atoms: &[Atom], seed_vars: &[VarId]) -> MatchProgram {
        Self::compile_atoms_with_slots(atoms, seed_vars, 0)
    }

    fn compile_atoms_with_slots(
        atoms: &[Atom],
        seed_vars: &[VarId],
        min_slots: usize,
    ) -> MatchProgram {
        let mut slots = min_slots;
        for atom in atoms {
            for term in atom.args() {
                if let Term::Var(v) = term {
                    slots = slots.max(v.index() + 1);
                }
            }
        }
        for v in seed_vars {
            slots = slots.max(v.index() + 1);
        }

        let mut bound = vec![false; slots];
        for v in seed_vars {
            bound[v.index()] = true;
        }

        // Most-constrained-first ordering with bound-variable lookahead:
        // pick the atom with the most probe-able positions; break ties by
        // how many positions of the *other* remaining atoms become bound
        // once this atom's variables are, then by original index (for
        // determinism).
        let mut remaining: Vec<usize> = (0..atoms.len()).collect();
        let mut order: Vec<usize> = Vec::with_capacity(atoms.len());
        while !remaining.is_empty() {
            let bound_positions = |atom: &Atom, bound: &[bool]| {
                atom.args()
                    .iter()
                    .filter(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => bound[v.index()],
                    })
                    .count()
            };
            let mut best = (0usize, (0usize, 0usize));
            for (slot, &ai) in remaining.iter().enumerate() {
                let atom = &atoms[ai];
                let score = bound_positions(atom, &bound);
                let mut with_atom = bound.clone();
                for v in atom.variables() {
                    with_atom[v.index()] = true;
                }
                let lookahead: usize = remaining
                    .iter()
                    .filter(|&&other| other != ai)
                    .map(|&other| bound_positions(&atoms[other], &with_atom))
                    .sum();
                if slot == 0 || (score, lookahead) > best.1 {
                    best = (slot, (score, lookahead));
                }
            }
            let ai = remaining.remove(best.0);
            for v in atoms[ai].variables() {
                bound[v.index()] = true;
            }
            order.push(ai);
        }

        // Classify every position of every atom, replaying boundness in
        // execution order.
        let mut bound = vec![false; slots];
        for v in seed_vars {
            bound[v.index()] = true;
        }
        let mut steps = Vec::with_capacity(order.len());
        for &ai in &order {
            let atom = &atoms[ai];
            let mut step = Step {
                relation: atom.relation(),
                const_probe: Vec::new(),
                var_probe: Vec::new(),
                binds: Vec::new(),
                checks: Vec::new(),
            };
            let mut local: Vec<VarId> = Vec::new();
            for (pos, term) in atom.args().iter().enumerate() {
                match term {
                    Term::Const(c) => step.const_probe.push((pos, *c)),
                    Term::Var(v) => {
                        if bound[v.index()] {
                            step.var_probe.push((pos, *v));
                        } else if local.contains(v) {
                            step.checks.push((pos, *v));
                        } else {
                            step.binds.push((pos, *v));
                            local.push(*v);
                        }
                    }
                }
            }
            for v in local {
                bound[v.index()] = true;
            }
            steps.push(step);
        }

        let mut seed_vars = seed_vars.to_vec();
        seed_vars.sort_unstable();
        seed_vars.dedup();
        MatchProgram {
            atoms: atoms.to_vec(),
            steps,
            seed_vars,
            slots,
        }
    }

    /// The declared seed variables (sorted).
    pub fn seed_vars(&self) -> &[VarId] {
        &self.seed_vars
    }

    /// Number of dense variable slots.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Runs the program, calling `visit` for every homomorphism extending
    /// `seed`; `visit` returns `false` to stop the enumeration. The seed
    /// must bind exactly the variables declared at compile time.
    pub fn for_each<F: FnMut(&Binding) -> bool>(
        &self,
        instance: &Instance,
        seed: &[(VarId, Value)],
        mut visit: F,
    ) {
        self.run(instance, seed, false, &mut visit);
    }

    fn run<F: FnMut(&Binding) -> bool>(
        &self,
        instance: &Instance,
        seed: &[(VarId, Value)],
        first_only: bool,
        visit: &mut F,
    ) {
        if kernel_mode() == KernelMode::Reference {
            self.for_each_reference(instance, seed, visit);
            return;
        }
        debug_assert!(
            {
                let mut vars: Vec<VarId> = seed.iter().map(|(v, _)| *v).collect();
                vars.sort_unstable();
                vars.dedup();
                vars == self.seed_vars
            },
            "seed variables differ from the compile-time declaration"
        );
        let mut binding = Binding::new(self.slots);
        for &(var, value) in seed {
            binding.bind(var, value);
        }
        let mut ctx = ExecContext {
            instance,
            probe: Vec::new(),
            tuple: Vec::new(),
            rows: vec![Vec::new(); self.steps.len()],
            first_only,
            probes: 0,
            backtracks: 0,
        };
        self.exec(0, &mut binding, &mut ctx, visit);
        // Profiling counts are batched in the scratch (register
        // increments) and flushed once per run, so the kernel's hot loop
        // never pays even the tracing-disabled branch.
        rbqa_obs::counters::flush_kernel(ctx.probes, ctx.backtracks);
    }

    /// The first homomorphism extending `seed`, if any, in hash-map form.
    pub fn find(&self, instance: &Instance, seed: &[(VarId, Value)]) -> Option<Homomorphism> {
        let mut found = None;
        self.for_each(instance, seed, |binding| {
            found = Some(binding.to_homomorphism());
            false
        });
        found
    }

    /// Whether any homomorphism extends `seed` (early-exit existence mode:
    /// a final check-free step resolves through
    /// [`Instance::first_matching_row`] instead of materialising its
    /// candidate rows, so the visited binding may leave that step's
    /// variables unbound — irrelevant for existence).
    pub fn exists(&self, instance: &Instance, seed: &[(VarId, Value)]) -> bool {
        let mut found = false;
        self.run(instance, seed, true, &mut |_| {
            found = true;
            false
        });
        found
    }

    /// Collects up to `limit` homomorphisms extending `seed`.
    pub fn collect(
        &self,
        instance: &Instance,
        seed: &[(VarId, Value)],
        limit: usize,
    ) -> Vec<Homomorphism> {
        let mut out = Vec::new();
        if limit == 0 {
            return out;
        }
        self.for_each(instance, seed, |binding| {
            out.push(binding.to_homomorphism());
            out.len() < limit
        });
        out
    }

    fn exec<F: FnMut(&Binding) -> bool>(
        &self,
        depth: usize,
        binding: &mut Binding,
        ctx: &mut ExecContext<'_>,
        visit: &mut F,
    ) -> bool {
        let Some(step) = self.steps.get(depth) else {
            return visit(binding);
        };

        // Assemble the probe: compile-time constants plus bound-variable
        // values read from the binding.
        ctx.probe.clear();
        ctx.probe.extend_from_slice(&step.const_probe);
        for &(pos, var) in &step.var_probe {
            let value = binding.get(var).expect("probe variable is bound");
            ctx.probe.push((pos, value));
        }

        if step.is_full_probe() {
            // Every position determined: one O(1) membership test instead
            // of a posting-list scan.
            ctx.tuple.clear();
            ctx.tuple.resize(
                ctx.probe.len(),
                Value::Null(rbqa_common::NullId::from_raw(0)),
            );
            for &(pos, value) in &ctx.probe {
                ctx.tuple[pos] = value;
            }
            ctx.probes += 1;
            if ctx.instance.contains(step.relation, &ctx.tuple) {
                return self.exec(depth + 1, binding, ctx, visit);
            }
            return true;
        }

        // Existence mode, final step, no equality checks pending: any row
        // matching the probe completes a match, so the early-exit
        // intersection suffices and no candidate rows are materialised
        // (the step's bind variables are left unbound — the visitor only
        // records that a match exists).
        if ctx.first_only && depth + 1 == self.steps.len() && step.checks.is_empty() {
            ctx.probes += 1;
            if ctx
                .instance
                .first_matching_row(step.relation, &ctx.probe)
                .is_some()
            {
                return visit(binding);
            }
            return true;
        }

        // Enumerate candidate rows via sorted-posting-list intersection,
        // then bind/check the undetermined positions per row.
        let mut rows = std::mem::take(&mut ctx.rows[depth]);
        rows.clear();
        ctx.probes += 1;
        ctx.instance
            .matching_rows_into(step.relation, &ctx.probe, &mut rows);
        let mut keep_going = true;
        for &row in &rows {
            let tuple = ctx.instance.row(step.relation, row);
            let mark = binding.mark();
            let mut ok = true;
            for &(pos, var) in &step.binds {
                match binding.get(var) {
                    None => binding.bind(var, tuple[pos]),
                    // Defensive: tolerate a caller that over-seeds.
                    Some(v) if v == tuple[pos] => {}
                    Some(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                for &(pos, var) in &step.checks {
                    if binding.get(var) != Some(tuple[pos]) {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                keep_going = self.exec(depth + 1, binding, ctx, visit);
            }
            binding.undo_to(mark);
            ctx.backtracks += 1;
            if !keep_going {
                break;
            }
        }
        ctx.rows[depth] = rows;
        keep_going
    }

    /// Reference-mode execution: delegate to the retained baseline search
    /// over the source atoms, then re-present each result as a [`Binding`].
    fn for_each_reference<F: FnMut(&Binding) -> bool>(
        &self,
        instance: &Instance,
        seed: &[(VarId, Value)],
        visit: &mut F,
    ) {
        let seed_map: Homomorphism = seed.iter().copied().collect();
        let mut slots = self.slots;
        let mut keep_going = true;
        reference::search_atoms(&self.atoms, instance, seed_map, &mut |assignment| {
            for v in assignment.keys() {
                slots = slots.max(v.index() + 1);
            }
            let mut binding = Binding::new(slots);
            let mut pairs: Vec<(VarId, Value)> =
                assignment.iter().map(|(v, val)| (*v, *val)).collect();
            pairs.sort_unstable();
            for (v, val) in pairs {
                binding.bind(v, val);
            }
            keep_going = visit(&binding);
            keep_going
        });
    }
}

/// Reusable per-execution scratch: probe pairs, a tuple buffer for
/// membership tests and one row-id buffer per program depth.
struct ExecContext<'a> {
    instance: &'a Instance,
    probe: Vec<(usize, Value)>,
    tuple: Vec<Value>,
    rows: Vec<Vec<u32>>,
    /// Existence mode: the caller only needs to know whether a match
    /// exists, enabling the final-step `first_matching_row` short-circuit.
    first_only: bool,
    /// Posting-list probes this run (batched; flushed to `rbqa-obs` once
    /// at the end of the run).
    probes: u64,
    /// Bindings undone after exploring a row (batched like `probes`).
    backtracks: u64,
}

// ---------------------------------------------------------------------------
// Compatibility entry points
// ---------------------------------------------------------------------------

fn seed_pairs(seed: &Homomorphism) -> Vec<(VarId, Value)> {
    let mut pairs: Vec<(VarId, Value)> = seed.iter().map(|(v, val)| (*v, *val)).collect();
    pairs.sort_unstable();
    pairs
}

/// Searches for a single homomorphism from `query` into `instance`
/// extending `seed` (which may pre-assign some variables, e.g. the free
/// variables of a non-Boolean query).
pub fn find_homomorphism(
    query: &ConjunctiveQuery,
    instance: &Instance,
    seed: &Homomorphism,
) -> Option<Homomorphism> {
    if kernel_mode() == KernelMode::Reference {
        return reference::find_homomorphism(query, instance, seed);
    }
    let pairs = seed_pairs(seed);
    let vars: Vec<VarId> = pairs.iter().map(|(v, _)| *v).collect();
    MatchProgram::compile(query, &vars).find(instance, &pairs)
}

/// Whether the Boolean closure of `query` holds in `instance`.
pub fn holds(query: &ConjunctiveQuery, instance: &Instance) -> bool {
    if kernel_mode() == KernelMode::Reference {
        return reference::find_homomorphism(query, instance, &Homomorphism::default()).is_some();
    }
    MatchProgram::compile(query, &[]).exists(instance, &[])
}

/// Enumerates homomorphisms from `query` into `instance`, up to `limit`
/// results (use `usize::MAX` for all). Enumeration order is deterministic.
pub fn all_homomorphisms(
    query: &ConjunctiveQuery,
    instance: &Instance,
    limit: usize,
) -> Vec<Homomorphism> {
    all_homomorphisms_seeded(query, instance, &Homomorphism::default(), limit)
}

/// Enumerates homomorphisms from `query` into `instance` that extend the
/// partial assignment `seed`, up to `limit` results. Every returned
/// assignment contains the seed bindings. This is the entry point used by
/// the semi-naive chase: a body atom is unified with a freshly derived fact
/// and the remaining atoms are joined against the full instance, so only
/// matches touching the delta are enumerated.
pub fn all_homomorphisms_seeded(
    query: &ConjunctiveQuery,
    instance: &Instance,
    seed: &Homomorphism,
    limit: usize,
) -> Vec<Homomorphism> {
    if kernel_mode() == KernelMode::Reference {
        return reference::all_homomorphisms_seeded(query, instance, seed, limit);
    }
    let pairs = seed_pairs(seed);
    let vars: Vec<VarId> = pairs.iter().map(|(v, _)| *v).collect();
    MatchProgram::compile(query, &vars).collect(instance, &pairs, limit)
}

// ---------------------------------------------------------------------------
// Reference kernel
// ---------------------------------------------------------------------------

/// The original backtracking join, retained verbatim as the baseline
/// implementation: a dynamically ordered (most-bound-atom-first) search over
/// hash-map assignments and materialised candidate tuples. The compiled
/// kernel is differentially tested against it, and the benchmark harness
/// measures speedups relative to it.
pub mod reference {
    use super::*;

    /// Searches for a single homomorphism extending `seed` with the
    /// reference kernel.
    pub fn find_homomorphism(
        query: &ConjunctiveQuery,
        instance: &Instance,
        seed: &Homomorphism,
    ) -> Option<Homomorphism> {
        let mut found = None;
        search_atoms(query.atoms(), instance, seed.clone(), &mut |assignment| {
            found = Some(assignment.clone());
            false
        });
        found
    }

    /// Enumerates up to `limit` homomorphisms with the reference kernel.
    pub fn all_homomorphisms(
        query: &ConjunctiveQuery,
        instance: &Instance,
        limit: usize,
    ) -> Vec<Homomorphism> {
        all_homomorphisms_seeded(query, instance, &Homomorphism::default(), limit)
    }

    /// Enumerates up to `limit` homomorphisms extending `seed` with the
    /// reference kernel.
    pub fn all_homomorphisms_seeded(
        query: &ConjunctiveQuery,
        instance: &Instance,
        seed: &Homomorphism,
        limit: usize,
    ) -> Vec<Homomorphism> {
        let mut out = Vec::new();
        if limit == 0 {
            return out;
        }
        search_atoms(query.atoms(), instance, seed.clone(), &mut |assignment| {
            out.push(assignment.clone());
            out.len() < limit
        });
        out
    }

    /// Visits every homomorphism extending `seed` in the reference kernel's
    /// native representation (no per-result cloning); `visit` returns
    /// `false` to stop. This is the baseline side of the kernel
    /// microbenchmarks — the mirror of [`MatchProgram::for_each`].
    pub fn for_each_homomorphism(
        query: &ConjunctiveQuery,
        instance: &Instance,
        seed: &Homomorphism,
        visit: &mut dyn FnMut(&Homomorphism) -> bool,
    ) {
        search_atoms(query.atoms(), instance, seed.clone(), visit);
    }

    /// Backtracking search over a bare atom list. `atoms` is processed in a
    /// dynamically chosen order: at each step the atom with the most
    /// already-bound terms is expanded first (a cheap proxy for
    /// selectivity). `visit` is called on every complete assignment and
    /// returns `true` to continue the enumeration.
    pub(super) fn search_atoms(
        atoms: &[Atom],
        instance: &Instance,
        assignment: Homomorphism,
        visit: &mut dyn FnMut(&Homomorphism) -> bool,
    ) -> bool {
        fn bound_count(atom: &Atom, assignment: &Homomorphism) -> usize {
            atom.args()
                .iter()
                .filter(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => assignment.contains_key(v),
                })
                .count()
        }

        fn recurse(
            remaining: &mut Vec<&Atom>,
            instance: &Instance,
            assignment: &mut Homomorphism,
            visit: &mut dyn FnMut(&Homomorphism) -> bool,
        ) -> bool {
            if remaining.is_empty() {
                return visit(assignment);
            }
            // Pick the most-bound atom.
            let (best_idx, _) = remaining
                .iter()
                .enumerate()
                .map(|(i, a)| (i, bound_count(a, assignment)))
                .max_by_key(|&(_, c)| c)
                .expect("remaining is non-empty");
            let atom = remaining.swap_remove(best_idx);

            // Build the binding of already-determined positions.
            let mut binding: Vec<(usize, Value)> = Vec::new();
            for (pos, term) in atom.args().iter().enumerate() {
                match term {
                    Term::Const(c) => binding.push((pos, *c)),
                    Term::Var(v) => {
                        if let Some(val) = assignment.get(v) {
                            binding.push((pos, *val));
                        }
                    }
                }
            }

            let candidates: Vec<Vec<Value>> = instance
                .matching_tuples(atom.relation(), &binding)
                .into_iter()
                .map(|t| t.to_vec())
                .collect();

            let mut keep_going = true;
            'tuples: for tuple in candidates {
                // Try to extend the assignment consistently with this tuple.
                let mut newly_bound: Vec<VarId> = Vec::new();
                for (pos, term) in atom.args().iter().enumerate() {
                    match term {
                        Term::Const(c) => {
                            if tuple[pos] != *c {
                                for v in newly_bound.drain(..) {
                                    assignment.remove(&v);
                                }
                                continue 'tuples;
                            }
                        }
                        Term::Var(v) => match assignment.get(v) {
                            Some(val) => {
                                if tuple[pos] != *val {
                                    for v in newly_bound.drain(..) {
                                        assignment.remove(&v);
                                    }
                                    continue 'tuples;
                                }
                            }
                            None => {
                                assignment.insert(*v, tuple[pos]);
                                newly_bound.push(*v);
                            }
                        },
                    }
                }
                keep_going = recurse(remaining, instance, assignment, visit);
                for v in newly_bound {
                    assignment.remove(&v);
                }
                if !keep_going {
                    break;
                }
            }
            remaining.push(atom);
            // Restore position irrelevant: order is re-chosen dynamically.
            keep_going
        }

        let mut remaining: Vec<&Atom> = atoms.iter().collect();
        let mut assignment = assignment;
        recurse(&mut remaining, instance, &mut assignment, visit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::CqBuilder;
    use rbqa_common::{Instance, Signature, ValueFactory};

    fn graph_setup() -> (Signature, rbqa_common::RelationId) {
        let mut sig = Signature::new();
        let e = sig.add_relation("E", 2).unwrap();
        (sig, e)
    }

    #[test]
    fn path_query_holds_on_path() {
        let (sig, e) = graph_setup();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let c = vf.constant("c");
        let mut inst = Instance::new(sig.clone());
        inst.insert(e, vec![a, b]).unwrap();
        inst.insert(e, vec![b, c]).unwrap();

        // Q :- E(x, y), E(y, z)
        let mut builder = CqBuilder::new();
        let (x, y, z) = (builder.var("x"), builder.var("y"), builder.var("z"));
        let q = builder
            .atom(e, vec![x.into(), y.into(), z.into()][..2].to_vec())
            .atom(e, vec![y.into(), z.into()])
            .build();
        assert!(holds(&q, &inst));
    }

    #[test]
    fn triangle_query_fails_on_path() {
        let (sig, e) = graph_setup();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let c = vf.constant("c");
        let mut inst = Instance::new(sig.clone());
        inst.insert(e, vec![a, b]).unwrap();
        inst.insert(e, vec![b, c]).unwrap();

        // Q :- E(x, y), E(y, z), E(z, x)
        let mut builder = CqBuilder::new();
        let (x, y, z) = (builder.var("x"), builder.var("y"), builder.var("z"));
        let q = builder
            .atom(e, vec![x.into(), y.into()])
            .atom(e, vec![y.into(), z.into()])
            .atom(e, vec![z.into(), x.into()])
            .build();
        assert!(!holds(&q, &inst));

        // Adding the closing edge makes it hold.
        inst.insert(e, vec![c, a]).unwrap();
        assert!(holds(&q, &inst));
    }

    #[test]
    fn constants_must_match_exactly() {
        let (sig, e) = graph_setup();
        let mut builder = CqBuilder::new();
        let x = builder.var("x");
        let a_term = builder.constant("a");
        let (q, mut vf) = {
            builder.atom(e, vec![a_term, x.into()]);
            builder.build_with_values()
        };
        let a = vf.constant("a");
        let b = vf.constant("b");
        let mut inst = Instance::new(sig.clone());
        inst.insert(e, vec![b, b]).unwrap();
        assert!(!holds(&q, &inst));
        inst.insert(e, vec![a, b]).unwrap();
        assert!(holds(&q, &inst));
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let (sig, e) = graph_setup();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let mut inst = Instance::new(sig.clone());
        inst.insert(e, vec![a, b]).unwrap();

        // Q :- E(x, x) : requires a self-loop.
        let mut builder = CqBuilder::new();
        let x = builder.var("x");
        let q = builder.atom(e, vec![x.into(), x.into()]).build();
        assert!(!holds(&q, &inst));
        inst.insert(e, vec![b, b]).unwrap();
        assert!(holds(&q, &inst));
    }

    #[test]
    fn seed_constrains_search() {
        let (sig, e) = graph_setup();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let mut inst = Instance::new(sig.clone());
        inst.insert(e, vec![a, b]).unwrap();
        inst.insert(e, vec![b, b]).unwrap();

        let mut builder = CqBuilder::new();
        let (x, y) = (builder.var("x"), builder.var("y"));
        let q = builder.atom(e, vec![x.into(), y.into()]).build();

        let mut seed = Homomorphism::default();
        seed.insert(x, a);
        let h = find_homomorphism(&q, &inst, &seed).unwrap();
        assert_eq!(h[&x], a);
        assert_eq!(h[&y], b);

        let mut bad_seed = Homomorphism::default();
        bad_seed.insert(y, a);
        assert!(find_homomorphism(&q, &inst, &bad_seed).is_none());
    }

    #[test]
    fn all_homomorphisms_enumerates_and_respects_limit() {
        let (sig, e) = graph_setup();
        let mut vf = ValueFactory::new();
        let vals: Vec<_> = (0..4).map(|i| vf.constant(&format!("v{i}"))).collect();
        let mut inst = Instance::new(sig.clone());
        for &u in &vals {
            for &w in &vals {
                inst.insert(e, vec![u, w]).unwrap();
            }
        }
        let mut builder = CqBuilder::new();
        let (x, y) = (builder.var("x"), builder.var("y"));
        let q = builder.atom(e, vec![x.into(), y.into()]).build();
        assert_eq!(all_homomorphisms(&q, &inst, usize::MAX).len(), 16);
        assert_eq!(all_homomorphisms(&q, &inst, 5).len(), 5);
    }

    #[test]
    fn empty_query_always_holds() {
        let (sig, _) = graph_setup();
        let inst = Instance::new(sig);
        let q = CqBuilder::new().build();
        assert!(holds(&q, &inst));
    }

    #[test]
    fn binding_trail_discipline() {
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let (x, y) = (VarId::from_index(0), VarId::from_index(1));
        let mut binding = Binding::new(2);
        assert_eq!(binding.get(x), None);
        binding.bind(x, a);
        let mark = binding.mark();
        binding.bind(y, b);
        assert_eq!(binding.get(y), Some(b));
        assert_eq!(binding.bound_count(), 2);
        binding.undo_to(mark);
        assert_eq!(binding.get(y), None);
        assert_eq!(binding.get(x), Some(a));
        let h = binding.to_homomorphism();
        assert_eq!(h.len(), 1);
        assert_eq!(h[&x], a);
    }

    #[test]
    fn compiled_program_reports_fully_bound_atoms() {
        // With both variables seeded, the single atom degrades to a
        // membership probe; the program still enumerates exactly one match.
        let (sig, e) = graph_setup();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let mut inst = Instance::new(sig.clone());
        inst.insert(e, vec![a, b]).unwrap();
        let mut builder = CqBuilder::new();
        let (x, y) = (builder.var("x"), builder.var("y"));
        let q = builder.atom(e, vec![x.into(), y.into()]).build();
        let program = MatchProgram::compile(&q, &[x, y]);
        assert!(program.steps[0].is_full_probe());
        assert!(program.exists(&inst, &[(x, a), (y, b)]));
        assert!(!program.exists(&inst, &[(x, b), (y, a)]));
        assert_eq!(
            program.collect(&inst, &[(x, a), (y, b)], usize::MAX).len(),
            1
        );
    }

    #[test]
    fn kernel_modes_agree_on_a_join() {
        let (sig, e) = graph_setup();
        let mut vf = ValueFactory::new();
        let vals: Vec<_> = (0..5).map(|i| vf.constant(&format!("v{i}"))).collect();
        let mut inst = Instance::new(sig.clone());
        for w in vals.windows(2) {
            inst.insert(e, vec![w[0], w[1]]).unwrap();
        }
        inst.insert(e, vec![vals[4], vals[0]]).unwrap();
        let mut builder = CqBuilder::new();
        let (x, y, z) = (builder.var("x"), builder.var("y"), builder.var("z"));
        let q = builder
            .atom(e, vec![x.into(), y.into()])
            .atom(e, vec![y.into(), z.into()])
            .build();
        let canonical = |homs: Vec<Homomorphism>| {
            let mut keys: Vec<Vec<(VarId, Value)>> = homs
                .into_iter()
                .map(|h| {
                    let mut pairs: Vec<_> = h.into_iter().collect();
                    pairs.sort_unstable();
                    pairs
                })
                .collect();
            keys.sort();
            keys
        };
        let compiled = canonical(all_homomorphisms(&q, &inst, usize::MAX));
        let reference = canonical(reference::all_homomorphisms(&q, &inst, usize::MAX));
        assert_eq!(compiled, reference);
        assert_eq!(compiled.len(), 5);
    }
}
