//! Query containment (between CQs), minimization, and minimization under
//! FDs.
//!
//! Plain CQ containment `Q1 ⊆ Q2` (no constraints) holds exactly when there
//! is a homomorphism from `Q2` into the canonical database of `Q1` mapping
//! the free variables of `Q2` to the frozen images of the free variables of
//! `Q1` (Chandra–Merlin). Minimization removes redundant atoms, yielding the
//! core of the query; minimization *under FDs* first chases the canonical
//! database with the FDs, as in the construction of `Q*` in the proof of
//! Theorem 7.2.

use rbqa_common::{Signature, Value, ValueFactory};
use rustc_hash::FxHashMap;

use crate::atom::Atom;
use crate::constraints::Fd;
use crate::cq::ConjunctiveQuery;
use crate::homomorphism::{find_homomorphism, Homomorphism};
use crate::term::{Term, VarId, VarPool};

/// Whether `q1 ⊆ q2` over all instances (no constraints): every answer of
/// `q1` is an answer of `q2`. Both queries must use constants interned in
/// `values` and have the same number of free variables (answer arity);
/// otherwise the result is `false`.
pub fn cq_contained_in(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    signature: &Signature,
    values: &mut ValueFactory,
) -> bool {
    if q1.free_vars().len() != q2.free_vars().len() {
        return false;
    }
    let canon = q1.canonical_database(signature, values);
    // The free variables of q2 must map to the frozen free variables of q1,
    // position-wise.
    let mut seed: Homomorphism = FxHashMap::default();
    for (v2, v1) in q2.free_vars().iter().zip(q1.free_vars().iter()) {
        let Some(&target) = canon.assignment.get(v1) else {
            return false;
        };
        seed.insert(*v2, target);
    }
    find_homomorphism(&q2.boolean_closure(), &canon.instance, &seed).is_some()
}

/// Whether `q1` and `q2` are equivalent over all instances.
pub fn cq_equivalent(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    signature: &Signature,
    values: &mut ValueFactory,
) -> bool {
    cq_contained_in(q1, q2, signature, values) && cq_contained_in(q2, q1, signature, values)
}

/// Minimizes a CQ by repeatedly dropping atoms whose removal preserves
/// equivalence, producing (a query isomorphic to) its core.
pub fn minimize(
    query: &ConjunctiveQuery,
    signature: &Signature,
    values: &mut ValueFactory,
) -> ConjunctiveQuery {
    let mut atoms: Vec<Atom> = query.atoms().to_vec();
    let mut changed = true;
    while changed && atoms.len() > 1 {
        changed = false;
        for i in 0..atoms.len() {
            let mut candidate_atoms = atoms.clone();
            candidate_atoms.remove(i);
            let candidate = ConjunctiveQuery::new(
                query.vars().clone(),
                query.free_vars().to_vec(),
                candidate_atoms,
            );
            // Dropping an atom can only make the query weaker-or-equal
            // (candidate ⊇ query always); it is safe exactly when the
            // candidate is still contained in the original.
            if cq_contained_in(&candidate, query, signature, values) {
                atoms.remove(i);
                changed = true;
                break;
            }
        }
    }
    ConjunctiveQuery::new(query.vars().clone(), query.free_vars().to_vec(), atoms)
}

/// Minimizes a CQ under a set of FDs: the canonical database is first
/// chased with the FDs (unifying frozen variables that the FDs force
/// equal), the query is rebuilt from the result, and then minimized. This is
/// the `Q*` construction used in the proof of Theorem 7.2.
///
/// Returns `None` when the FDs make the query unsatisfiable (two distinct
/// constants forced equal).
pub fn minimize_under_fds(
    query: &ConjunctiveQuery,
    fds: &[Fd],
    signature: &Signature,
    values: &mut ValueFactory,
) -> Option<ConjunctiveQuery> {
    let canon = query.canonical_database(signature, values);
    // Chase the canonical database with the FDs only.
    let constraints = crate::constraints::ConstraintSet::from_parts(Vec::new(), fds.to_vec());
    // A tiny FD-only chase: it cannot create facts, only merge values, and
    // always terminates.
    let outcome = fd_only_chase(&canon.instance, &constraints);
    let (instance, unifier) = outcome?;

    // Rebuild the query: every surviving value becomes a term (constants
    // stay constants; nulls become variables named after their id).
    let mut vars = VarPool::new();
    let mut value_to_term: FxHashMap<Value, Term> = FxHashMap::default();
    let mut term_of = |value: Value, vars: &mut VarPool| -> Term {
        *value_to_term.entry(value).or_insert_with(|| match value {
            Value::Const(_) => Term::Const(value),
            Value::Null(n) => Term::Var(vars.var(&format!("m{}", n.raw()))),
        })
    };
    let mut atoms = Vec::new();
    for fact in instance.iter_facts() {
        let args: Vec<Term> = fact.args().iter().map(|v| term_of(*v, &mut vars)).collect();
        atoms.push(Atom::new(fact.relation(), args));
    }
    // Free variables: follow the original free variables through the
    // freezing assignment and the unifier.
    let mut free: Vec<VarId> = Vec::new();
    for v in query.free_vars() {
        let frozen = canon.assignment.get(v)?;
        let rewritten = *unifier.get(frozen).unwrap_or(frozen);
        match term_of(rewritten, &mut vars) {
            Term::Var(new_var) => {
                if !free.contains(&new_var) {
                    free.push(new_var);
                }
            }
            Term::Const(_) => {
                // The FD forced the answer variable to a constant: it no
                // longer needs to be free (any projection is constant), but
                // we keep the arity by introducing a variable equal to it is
                // not possible in plain CQs, so we simply drop it from the
                // free list.
            }
        }
    }
    let rebuilt = ConjunctiveQuery::new(vars, free, atoms);
    Some(minimize(&rebuilt, signature, values))
}

/// FD-only chase on an instance: returns the repaired instance and the value
/// unifier applied, or `None` when two distinct constants must be equated.
fn fd_only_chase(
    instance: &rbqa_common::Instance,
    constraints: &crate::constraints::ConstraintSet,
) -> Option<(rbqa_common::Instance, FxHashMap<Value, Value>)> {
    let mut current = instance.clone();
    let mut total_unifier: FxHashMap<Value, Value> = FxHashMap::default();
    loop {
        let mut merge: Option<(Value, Value)> = None;
        'outer: for fd in constraints.fds() {
            let tuples: Vec<Vec<Value>> =
                current.tuples(fd.relation()).map(|t| t.to_vec()).collect();
            for (i, t1) in tuples.iter().enumerate() {
                for t2 in &tuples[i + 1..] {
                    if fd.violated_by(t1, t2) {
                        merge = Some((t1[fd.determined()], t2[fd.determined()]));
                        break 'outer;
                    }
                }
            }
        }
        let Some((a, b)) = merge else {
            return Some((current, total_unifier));
        };
        let (keep, drop) = match (a.is_const(), b.is_const()) {
            (true, true) => return None,
            (true, false) => (a, b),
            (false, true) => (b, a),
            (false, false) => {
                if a <= b {
                    (a, b)
                } else {
                    (b, a)
                }
            }
        };
        let mut map = FxHashMap::default();
        map.insert(drop, keep);
        current = current.map_values(&map);
        // Compose into the accumulated unifier.
        for v in total_unifier.values_mut() {
            if *v == drop {
                *v = keep;
            }
        }
        total_unifier.insert(drop, keep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_cq;

    fn setup() -> (Signature, ValueFactory) {
        (Signature::new(), ValueFactory::new())
    }

    #[test]
    fn containment_between_path_queries() {
        let (mut sig, mut vf) = setup();
        let path2 = parse_cq("Q() :- E(x, y), E(y, z)", &mut sig, &mut vf).unwrap();
        let edge = parse_cq("Q() :- E(u, v)", &mut sig, &mut vf).unwrap();
        // A 2-path implies an edge, not vice versa.
        assert!(cq_contained_in(&path2, &edge, &sig, &mut vf));
        assert!(!cq_contained_in(&edge, &path2, &sig, &mut vf));
        assert!(!cq_equivalent(&edge, &path2, &sig, &mut vf));
    }

    #[test]
    fn containment_respects_free_variables() {
        let (mut sig, mut vf) = setup();
        // Q1(x) :- E(x, y)   vs   Q2(y) :- E(x, y): not equivalent (the
        // answer is the source in one, the target in the other).
        let q1 = parse_cq("Q(x) :- E(x, y)", &mut sig, &mut vf).unwrap();
        let q2 = parse_cq("Q(y) :- E(x, y)", &mut sig, &mut vf).unwrap();
        assert!(!cq_contained_in(&q1, &q2, &sig, &mut vf));
        assert!(cq_equivalent(&q1, &q1, &sig, &mut vf));
    }

    #[test]
    fn containment_with_constants() {
        let (mut sig, mut vf) = setup();
        let specific = parse_cq("Q() :- R(x, 'a')", &mut sig, &mut vf).unwrap();
        let general = parse_cq("Q() :- R(x, y)", &mut sig, &mut vf).unwrap();
        assert!(cq_contained_in(&specific, &general, &sig, &mut vf));
        assert!(!cq_contained_in(&general, &specific, &sig, &mut vf));
    }

    #[test]
    fn minimize_removes_redundant_atoms() {
        let (mut sig, mut vf) = setup();
        // E(x, y), E(x, z) is equivalent to E(x, y).
        let q = parse_cq("Q(x) :- E(x, y), E(x, z)", &mut sig, &mut vf).unwrap();
        let minimized = minimize(&q, &sig, &mut vf);
        assert_eq!(minimized.size(), 1);
        assert!(cq_equivalent(&q, &minimized, &sig, &mut vf));
    }

    #[test]
    fn minimize_keeps_non_redundant_atoms() {
        let (mut sig, mut vf) = setup();
        let triangle = parse_cq("Q() :- E(x, y), E(y, z), E(z, x)", &mut sig, &mut vf).unwrap();
        let minimized = minimize(&triangle, &sig, &mut vf);
        assert_eq!(minimized.size(), 3);
        // A 2-path with distinguished endpoints cannot shrink either.
        let path = parse_cq("Q(x, z) :- E(x, y), E(y, z)", &mut sig, &mut vf).unwrap();
        assert_eq!(minimize(&path, &sig, &mut vf).size(), 2);
    }

    #[test]
    fn minimize_under_fds_merges_determined_variables() {
        let (mut sig, mut vf) = setup();
        // R(x, y), R(x, z), S(y), S(z) with FD R: 1 -> 2 forces y = z.
        let q = parse_cq("Q() :- R(x, y), R(x, z), S(y), S(z)", &mut sig, &mut vf).unwrap();
        let r = sig.require("R").unwrap();
        let fds = vec![Fd::new(r, vec![0], 1)];
        let minimized = minimize_under_fds(&q, &fds, &sig, &mut vf).unwrap();
        // After unification: R(x, y), S(y) — two atoms.
        assert_eq!(minimized.size(), 2);
    }

    #[test]
    fn minimize_under_fds_detects_unsatisfiable_queries() {
        let (mut sig, mut vf) = setup();
        let q = parse_cq("Q() :- R(x, 'a'), R(x, 'b')", &mut sig, &mut vf).unwrap();
        let r = sig.require("R").unwrap();
        let fds = vec![Fd::new(r, vec![0], 1)];
        assert!(minimize_under_fds(&q, &fds, &sig, &mut vf).is_none());
    }

    #[test]
    fn minimize_under_no_fds_is_plain_minimization() {
        let (mut sig, mut vf) = setup();
        let q = parse_cq("Q() :- E(x, y), E(x, z)", &mut sig, &mut vf).unwrap();
        let minimized = minimize_under_fds(&q, &[], &sig, &mut vf).unwrap();
        assert_eq!(minimized.size(), 1);
    }
}
