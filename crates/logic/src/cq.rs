//! Conjunctive queries and their canonical databases.
//!
//! A conjunctive query (CQ) is `∃ x1 ... xk (A1 ∧ ... ∧ Am)` possibly with
//! free variables (the answer variables). A CQ is *Boolean* when it has no
//! free variables. The *canonical database* of a CQ freezes its variables
//! into labelled nulls, yielding an instance used as the starting point of
//! chase proofs (paper, Section 2, "Query containment and chase proofs").

use rbqa_common::{Instance, Signature, Value, ValueFactory};
use rustc_hash::FxHashMap;

use crate::atom::Atom;
use crate::term::{Term, VarId, VarPool};

/// A conjunctive query.
#[derive(Debug, Clone)]
pub struct ConjunctiveQuery {
    vars: VarPool,
    free: Vec<VarId>,
    atoms: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Creates a query from its parts. Prefer [`CqBuilder`] for construction.
    pub fn new(vars: VarPool, free: Vec<VarId>, atoms: Vec<Atom>) -> Self {
        ConjunctiveQuery { vars, free, atoms }
    }

    /// The variable pool (names) of this query.
    pub fn vars(&self) -> &VarPool {
        &self.vars
    }

    /// The free (answer) variables, in declaration order.
    pub fn free_vars(&self) -> &[VarId] {
        &self.free
    }

    /// The atoms of the query body.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Whether the query is Boolean (no free variables).
    pub fn is_boolean(&self) -> bool {
        self.free.is_empty()
    }

    /// Number of atoms.
    pub fn size(&self) -> usize {
        self.atoms.len()
    }

    /// All distinct variables occurring in the query body, in order of first
    /// occurrence.
    pub fn all_variables(&self) -> Vec<VarId> {
        let mut seen = Vec::new();
        for atom in &self.atoms {
            for v in atom.variables() {
                if !seen.contains(&v) {
                    seen.push(v);
                }
            }
        }
        seen
    }

    /// All distinct constants occurring in the query body.
    pub fn constants(&self) -> Vec<Value> {
        let mut seen = Vec::new();
        for atom in &self.atoms {
            for term in atom.args() {
                if let Term::Const(c) = term {
                    if !seen.contains(c) {
                        seen.push(*c);
                    }
                }
            }
        }
        seen
    }

    /// Returns the Boolean version of this query (all free variables become
    /// existentially quantified).
    pub fn boolean_closure(&self) -> ConjunctiveQuery {
        ConjunctiveQuery {
            vars: self.vars.clone(),
            free: Vec::new(),
            atoms: self.atoms.clone(),
        }
    }

    /// Builds the canonical database of the query: one fact per atom, with
    /// each variable frozen into a fresh labelled null and constants kept.
    ///
    /// The returned [`CanonicalDatabase`] records the variable-to-value map
    /// so that callers can later read back answers or seed accessibility
    /// facts for the query constants.
    pub fn canonical_database(
        &self,
        signature: &Signature,
        values: &mut ValueFactory,
    ) -> CanonicalDatabase {
        let mut assignment: FxHashMap<VarId, Value> = FxHashMap::default();
        for v in self.all_variables() {
            assignment.entry(v).or_insert_with(|| values.fresh_null());
        }
        let mut instance = Instance::new(signature.clone());
        for atom in &self.atoms {
            let tuple = atom
                .instantiate(&assignment)
                .expect("every variable was assigned");
            instance
                .insert(atom.relation(), tuple)
                .expect("query atoms must respect the signature arity");
        }
        CanonicalDatabase {
            instance,
            assignment,
        }
    }

    /// Renders the query in a Datalog-like concrete syntax.
    pub fn display(&self, sig: &Signature) -> String {
        let head_args: Vec<String> = self
            .free
            .iter()
            .map(|v| self.vars.name(*v).to_owned())
            .collect();
        let body: Vec<String> = self
            .atoms
            .iter()
            .map(|a| a.display(sig, |v| self.vars.name(v).to_owned()))
            .collect();
        format!("Q({}) :- {}", head_args.join(", "), body.join(", "))
    }
}

/// The canonical database of a CQ, together with the freezing assignment.
#[derive(Debug, Clone)]
pub struct CanonicalDatabase {
    /// The instance containing one fact per query atom.
    pub instance: Instance,
    /// The value assigned to each query variable.
    pub assignment: FxHashMap<VarId, Value>,
}

/// Fluent builder for [`ConjunctiveQuery`].
///
/// ```
/// use rbqa_common::Signature;
/// use rbqa_logic::CqBuilder;
/// let mut sig = Signature::new();
/// let prof = sig.add_relation("Prof", 3).unwrap();
/// let mut b = CqBuilder::new();
/// let (i, n) = (b.var("i"), b.var("n"));
/// let s = b.constant_value();
/// // Q1(n) :- Prof(i, n, '10000')
/// let q = b
///     .free(n)
///     .atom(prof, vec![i.into(), n.into(), s])
///     .build();
/// assert_eq!(q.size(), 1);
/// assert!(!q.is_boolean());
/// ```
#[derive(Debug, Default)]
pub struct CqBuilder {
    vars: VarPool,
    free: Vec<VarId>,
    atoms: Vec<Atom>,
    values: ValueFactory,
}

impl CqBuilder {
    /// Creates an empty builder with its own [`ValueFactory`]. Use
    /// [`CqBuilder::with_values`] to share a factory with other components.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder that uses (a clone of) the provided value factory
    /// for constants. Prefer passing constants explicitly via
    /// [`Term::Const`] when a factory is shared across the whole task.
    pub fn with_values(values: ValueFactory) -> Self {
        CqBuilder {
            values,
            ..Self::default()
        }
    }

    /// Returns (creating if needed) the variable named `name`.
    pub fn var(&mut self, name: &str) -> VarId {
        self.vars.var(name)
    }

    /// Interns a constant by name and returns it as a [`Term`].
    pub fn constant(&mut self, name: &str) -> Term {
        Term::Const(self.values.constant(name))
    }

    /// Helper for doctests: an arbitrary distinct constant term.
    pub fn constant_value(&mut self) -> Term {
        let k = self.values.interner().len();
        self.constant(&format!("const_{k}"))
    }

    /// Declares a free (answer) variable.
    pub fn free(&mut self, var: VarId) -> &mut Self {
        if !self.free.contains(&var) {
            self.free.push(var);
        }
        self
    }

    /// Adds a body atom.
    pub fn atom(&mut self, relation: rbqa_common::RelationId, args: Vec<Term>) -> &mut Self {
        self.atoms.push(Atom::new(relation, args));
        self
    }

    /// Finalises the query.
    pub fn build(&mut self) -> ConjunctiveQuery {
        ConjunctiveQuery::new(
            std::mem::take(&mut self.vars),
            std::mem::take(&mut self.free),
            std::mem::take(&mut self.atoms),
        )
    }

    /// Consumes the builder, returning the query and the value factory used
    /// for its constants.
    pub fn build_with_values(mut self) -> (ConjunctiveQuery, ValueFactory) {
        let q = self.build();
        (q, self.values)
    }
}

impl From<VarId> for Term {
    fn from(v: VarId) -> Term {
        Term::Var(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_signature() -> (Signature, rbqa_common::RelationId, rbqa_common::RelationId) {
        let mut sig = Signature::new();
        let prof = sig.add_relation("Prof", 3).unwrap();
        let udir = sig.add_relation("Udirectory", 3).unwrap();
        (sig, prof, udir)
    }

    #[test]
    fn builder_constructs_query() {
        let (_sig, prof, _) = example_signature();
        let mut b = CqBuilder::new();
        let i = b.var("i");
        let n = b.var("n");
        let salary = b.constant("10000");
        let q = b
            .free(n)
            .atom(prof, vec![i.into(), n.into(), salary])
            .build();
        assert_eq!(q.size(), 1);
        assert_eq!(q.free_vars(), &[n]);
        assert!(!q.is_boolean());
        assert_eq!(q.all_variables().len(), 2);
        assert_eq!(q.constants().len(), 1);
    }

    #[test]
    fn boolean_closure_removes_free_vars() {
        let (_sig, prof, _) = example_signature();
        let mut b = CqBuilder::new();
        let i = b.var("i");
        let q = b
            .free(i)
            .atom(prof, vec![i.into(), i.into(), i.into()])
            .build();
        let bq = q.boolean_closure();
        assert!(bq.is_boolean());
        assert_eq!(bq.size(), q.size());
    }

    #[test]
    fn canonical_database_freezes_variables() {
        let (sig, prof, udir) = example_signature();
        let mut b = CqBuilder::new();
        let i = b.var("i");
        let n = b.var("n");
        let a = b.var("a");
        let p = b.var("p");
        let (q, mut values) = {
            b.atom(prof, vec![i.into(), n.into(), n.into()])
                .atom(udir, vec![i.into(), a.into(), p.into()]);
            b.build_with_values()
        };
        let canon = q.canonical_database(&sig, &mut values);
        assert_eq!(canon.instance.len(), 2);
        // Each distinct variable became a distinct null.
        assert_eq!(canon.assignment.len(), 4);
        let mut nulls: Vec<_> = canon.assignment.values().collect();
        nulls.sort();
        nulls.dedup();
        assert_eq!(nulls.len(), 4);
        // The shared variable i links the two facts.
        let prof_fact = canon.instance.tuples(prof).next().unwrap().to_vec();
        let udir_fact = canon.instance.tuples(udir).next().unwrap().to_vec();
        assert_eq!(prof_fact[0], udir_fact[0]);
    }

    #[test]
    fn canonical_database_keeps_constants() {
        let (sig, prof, _) = example_signature();
        let mut b = CqBuilder::new();
        let i = b.var("i");
        let n = b.var("n");
        let salary = b.constant("10000");
        let (q, mut values) = {
            b.atom(prof, vec![i.into(), n.into(), salary]);
            b.build_with_values()
        };
        let canon = q.canonical_database(&sig, &mut values);
        let fact = canon.instance.tuples(prof).next().unwrap();
        assert!(fact[2].is_const());
        assert!(fact[0].is_null());
    }

    #[test]
    fn display_round_trips_names() {
        let (sig, prof, _) = example_signature();
        let mut b = CqBuilder::new();
        let i = b.var("i");
        let n = b.var("n");
        let q = b
            .free(n)
            .atom(prof, vec![i.into(), n.into(), n.into()])
            .build();
        let s = q.display(&sig);
        assert!(s.contains("Q(n)"));
        assert!(s.contains("Prof(i, n, n)"));
    }

    #[test]
    fn free_is_idempotent() {
        let (_sig, prof, _) = example_signature();
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let q = b
            .free(x)
            .free(x)
            .atom(prof, vec![x.into(), x.into(), x.into()])
            .build();
        assert_eq!(q.free_vars().len(), 1);
    }
}
