//! Dependency implication: FD closure (`DetBy`), UID closure, and the finite
//! closure of UIDs + FDs.
//!
//! * [`fd_closure`] computes the set of positions determined by a set of
//!   positions under a set of FDs — the paper's `DetBy(R, P)` used by the FD
//!   simplification (Section 4).
//! * [`uid_closure`] closes a set of unary inclusion dependencies under
//!   reflexivity and transitivity.
//! * [`finite_closure`] computes the finite closure `Σ*` of a set of UIDs and
//!   FDs in the style of Cosmadakis, Kanellakis and Vardi: on top of
//!   the unrestricted closure it applies the *cycle rule* — every UID or
//!   unary FD edge lying on a cycle of the combined (UID ∪ unary-FD) graph
//!   gets its reverse added. This is the ingredient of Theorem 7.4 /
//!   Corollary 7.3 that reduces finite monotone answerability to
//!   unrestricted monotone answerability for UIDs + FDs.

use rbqa_common::{RelationId, Signature};
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BTreeSet;

use crate::constraints::tgd::inclusion_dependency;
use crate::constraints::{Fd, Tgd};

/// A unary inclusion dependency at the position level: the values at
/// `from.1` in relation `from.0` all appear at position `to.1` of relation
/// `to.0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uid {
    /// Source (relation, position).
    pub from: (RelationId, usize),
    /// Target (relation, position).
    pub to: (RelationId, usize),
}

impl Uid {
    /// Creates a UID from source to target position.
    pub fn new(from: (RelationId, usize), to: (RelationId, usize)) -> Self {
        Uid { from, to }
    }

    /// Whether the UID is trivial (`from == to`).
    pub fn is_trivial(&self) -> bool {
        self.from == self.to
    }

    /// The reverse UID.
    pub fn reversed(&self) -> Uid {
        Uid {
            from: self.to,
            to: self.from,
        }
    }

    /// Extracts the position-level UID from a [`Tgd`] that is a UID.
    /// Returns `None` if the TGD is not a UID.
    pub fn from_tgd(tgd: &Tgd) -> Option<Uid> {
        if !tgd.is_uid() {
            return None;
        }
        let map = tgd.id_position_map()?;
        let (bpos, hpos) = map[0];
        Some(Uid {
            from: (tgd.body()[0].relation(), bpos),
            to: (tgd.head()[0].relation(), hpos),
        })
    }

    /// Converts the UID back into a [`Tgd`] over `sig`.
    pub fn to_tgd(&self, sig: &Signature) -> Tgd {
        inclusion_dependency(sig, self.from.0, &[self.from.1], self.to.0, &[self.to.1])
    }
}

/// Computes the closure of the position set `start` of relation `relation`
/// under the FDs of `fds` that apply to this relation: the paper's
/// `DetBy(R, P)`. Always contains `start`.
pub fn fd_closure(fds: &[Fd], relation: RelationId, start: &BTreeSet<usize>) -> BTreeSet<usize> {
    let relevant: Vec<&Fd> = fds.iter().filter(|f| f.relation() == relation).collect();
    let mut closure = start.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for fd in &relevant {
            if !closure.contains(&fd.determined())
                && fd.determiners().iter().all(|p| closure.contains(p))
            {
                closure.insert(fd.determined());
                changed = true;
            }
        }
    }
    closure
}

/// Whether `fds` imply the FD `candidate` (standard Armstrong-style test via
/// attribute closure).
pub fn implies_fd(fds: &[Fd], candidate: &Fd) -> bool {
    let closure = fd_closure(fds, candidate.relation(), candidate.determiners());
    closure.contains(&candidate.determined())
}

/// `DetBy(R, P)` for the paper's FD simplification: positions of `relation`
/// determined by the positions `input_positions` under `fds`.
pub fn det_by(fds: &[Fd], relation: RelationId, input_positions: &[usize]) -> BTreeSet<usize> {
    let start: BTreeSet<usize> = input_positions.iter().copied().collect();
    fd_closure(fds, relation, &start)
}

/// Closes `uids` under reflexivity (restricted to mentioned positions) and
/// transitivity. The result contains no trivial UIDs.
pub fn uid_closure(uids: &[Uid]) -> Vec<Uid> {
    let mut set: FxHashSet<Uid> = uids.iter().copied().filter(|u| !u.is_trivial()).collect();
    loop {
        let mut new: Vec<Uid> = Vec::new();
        for a in &set {
            for b in &set {
                if a.to == b.from {
                    let c = Uid::new(a.from, b.to);
                    if !c.is_trivial() && !set.contains(&c) {
                        new.push(c);
                    }
                }
            }
        }
        if new.is_empty() {
            break;
        }
        set.extend(new);
    }
    let mut out: Vec<Uid> = set.into_iter().collect();
    out.sort();
    out
}

/// Whether `uids` imply `candidate` under unrestricted semantics
/// (reflexivity + transitivity).
pub fn implies_uid(uids: &[Uid], candidate: &Uid) -> bool {
    if candidate.is_trivial() {
        return true;
    }
    uid_closure(uids).contains(candidate)
}

/// The finite closure of a set of UIDs and FDs: the UIDs and FDs implied
/// over *finite* instances.
///
/// Implemented as a fixpoint of three rules:
/// 1. UID transitivity (unrestricted implication for UIDs);
/// 2. FD implication is left implicit (checked via [`implies_fd`] /
///    [`fd_closure`] on demand) except that unary FDs participate in rule 3;
/// 3. the *cycle rule*: build the directed graph whose nodes are positions
///    `(R, i)`, with a UID edge for every (derived) UID and an FD edge
///    `(R, a) → (R, b)` for every implied unary FD `{a} → b`; every UID or
///    unary FD edge inside a strongly connected component of this graph gets
///    its reverse added (as a UID, resp. unary FD).
///
/// Iterating 1–3 to fixpoint yields the closure of Cosmadakis–Kanellakis–
/// Vardi for unary inclusion dependencies and functional dependencies.
pub fn finite_closure(sig: &Signature, uids: &[Uid], fds: &[Fd]) -> (Vec<Uid>, Vec<Fd>) {
    let mut cur_uids: FxHashSet<Uid> = uids.iter().copied().filter(|u| !u.is_trivial()).collect();
    let mut cur_fds: FxHashSet<Fd> = fds.iter().cloned().collect();

    loop {
        let before_uids = cur_uids.len();
        let before_fds = cur_fds.len();

        // Rule 1: UID transitivity.
        let closed = uid_closure(&cur_uids.iter().copied().collect::<Vec<_>>());
        cur_uids.extend(closed);

        // Rule 3: cycle rule on the combined graph.
        let fd_vec: Vec<Fd> = cur_fds.iter().cloned().collect();
        let unary_fd_edges = implied_unary_fd_edges(sig, &fd_vec);
        let sccs = combined_sccs(sig, &cur_uids, &unary_fd_edges);

        // Reverse UID edges inside an SCC.
        let mut to_add_uids: Vec<Uid> = Vec::new();
        for uid in &cur_uids {
            if let (Some(a), Some(b)) = (sccs.get(&uid.from), sccs.get(&uid.to)) {
                if a == b {
                    let rev = uid.reversed();
                    if !rev.is_trivial() && !cur_uids.contains(&rev) {
                        to_add_uids.push(rev);
                    }
                }
            }
        }
        // Reverse unary FD edges inside an SCC.
        let mut to_add_fds: Vec<Fd> = Vec::new();
        for &(rel, a, b) in &unary_fd_edges {
            let from = (rel, a);
            let to = (rel, b);
            if let (Some(x), Some(y)) = (sccs.get(&from), sccs.get(&to)) {
                if x == y {
                    let rev = Fd::new(rel, vec![b], a);
                    if !rev.is_trivial() && !implies_fd(&fd_vec, &rev) {
                        to_add_fds.push(rev);
                    }
                }
            }
        }

        cur_uids.extend(to_add_uids);
        cur_fds.extend(to_add_fds);

        if cur_uids.len() == before_uids && cur_fds.len() == before_fds {
            break;
        }
    }

    let mut uids_out: Vec<Uid> = cur_uids.into_iter().collect();
    uids_out.sort();
    let mut fds_out: Vec<Fd> = cur_fds.into_iter().collect();
    fds_out.sort_by_key(|f| (f.relation(), f.determined(), f.determiners().clone()));
    (uids_out, fds_out)
}

/// All unary FD edges `(relation, a, b)` such that the FDs imply `{a} → b`
/// with `a ≠ b`, restricted to positions of relations that appear in `fds`.
fn implied_unary_fd_edges(sig: &Signature, fds: &[Fd]) -> Vec<(RelationId, usize, usize)> {
    let mut relations: Vec<RelationId> = fds.iter().map(|f| f.relation()).collect();
    relations.sort();
    relations.dedup();
    let mut out = Vec::new();
    for rel in relations {
        let arity = sig.arity(rel);
        for a in 0..arity {
            let closure = fd_closure(fds, rel, &BTreeSet::from([a]));
            for b in closure {
                if b != a {
                    out.push((rel, a, b));
                }
            }
        }
    }
    out
}

/// Strongly connected components of the combined UID ∪ unary-FD graph,
/// returned as a map from position to SCC index.
fn combined_sccs(
    sig: &Signature,
    uids: &FxHashSet<Uid>,
    unary_fd_edges: &[(RelationId, usize, usize)],
) -> FxHashMap<(RelationId, usize), usize> {
    // Collect nodes.
    let mut nodes: Vec<(RelationId, usize)> = Vec::new();
    for (rid, rel) in sig.iter() {
        for p in rel.positions() {
            nodes.push((rid, p));
        }
    }
    let index_of: FxHashMap<(RelationId, usize), usize> =
        nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let n = nodes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for uid in uids {
        if let (Some(&a), Some(&b)) = (index_of.get(&uid.from), index_of.get(&uid.to)) {
            adj[a].push(b);
        }
    }
    for &(rel, a, b) in unary_fd_edges {
        if let (Some(&x), Some(&y)) = (index_of.get(&(rel, a)), index_of.get(&(rel, b))) {
            adj[x].push(y);
        }
    }

    // Tarjan's SCC algorithm (iterative-friendly sizes here, recursion ok).
    struct Tarjan<'a> {
        adj: &'a [Vec<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        counter: usize,
        comp: Vec<Option<usize>>,
        comp_count: usize,
    }
    impl Tarjan<'_> {
        fn visit(&mut self, v: usize) {
            self.index[v] = Some(self.counter);
            self.low[v] = self.counter;
            self.counter += 1;
            self.stack.push(v);
            self.on_stack[v] = true;
            for i in 0..self.adj[v].len() {
                let w = self.adj[v][i];
                if self.index[w].is_none() {
                    self.visit(w);
                    self.low[v] = self.low[v].min(self.low[w]);
                } else if self.on_stack[w] {
                    self.low[v] = self.low[v].min(self.index[w].unwrap());
                }
            }
            if Some(self.low[v]) == self.index[v] {
                loop {
                    let w = self.stack.pop().unwrap();
                    self.on_stack[w] = false;
                    self.comp[w] = Some(self.comp_count);
                    if w == v {
                        break;
                    }
                }
                self.comp_count += 1;
            }
        }
    }
    let mut t = Tarjan {
        adj: &adj,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        counter: 0,
        comp: vec![None; n],
        comp_count: 0,
    };
    for v in 0..n {
        if t.index[v].is_none() {
            t.visit(v);
        }
    }
    nodes
        .into_iter()
        .enumerate()
        .map(|(i, node)| (node, t.comp[i].unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> (Signature, RelationId, RelationId) {
        let mut s = Signature::new();
        let r = s.add_relation("R", 3).unwrap();
        let t = s.add_relation("T", 2).unwrap();
        (s, r, t)
    }

    #[test]
    fn fd_closure_basic() {
        let (_s, r, _t) = sig();
        let fds = vec![Fd::new(r, vec![0], 1), Fd::new(r, vec![1], 2)];
        let closure = fd_closure(&fds, r, &BTreeSet::from([0]));
        assert_eq!(closure, BTreeSet::from([0, 1, 2]));
        assert!(implies_fd(&fds, &Fd::new(r, vec![0], 2)));
        assert!(!implies_fd(&fds, &Fd::new(r, vec![2], 0)));
    }

    #[test]
    fn det_by_matches_paper_example() {
        // Example 1.5 / 4.4: Udirectory(id, address, phone) with id -> address.
        let mut s = Signature::new();
        let udir = s.add_relation("Udirectory", 3).unwrap();
        let fds = vec![Fd::new(udir, vec![0], 1)];
        let d = det_by(&fds, udir, &[0]);
        assert_eq!(d, BTreeSet::from([0, 1]));
    }

    #[test]
    fn fd_closure_ignores_other_relations() {
        let (_s, r, t) = sig();
        let fds = vec![Fd::new(t, vec![0], 1)];
        let closure = fd_closure(&fds, r, &BTreeSet::from([0]));
        assert_eq!(closure, BTreeSet::from([0]));
    }

    #[test]
    fn uid_closure_transitivity() {
        let (_s, r, t) = sig();
        let u1 = Uid::new((r, 0), (t, 0));
        let u2 = Uid::new((t, 0), (t, 1));
        let closed = uid_closure(&[u1, u2]);
        assert!(closed.contains(&Uid::new((r, 0), (t, 1))));
        assert!(implies_uid(&[u1, u2], &Uid::new((r, 0), (t, 1))));
        assert!(!implies_uid(&[u1, u2], &Uid::new((t, 1), (r, 0))));
        // Trivial UIDs are always implied.
        assert!(implies_uid(&[], &Uid::new((r, 0), (r, 0))));
    }

    #[test]
    fn uid_tgd_round_trip() {
        let (s, r, t) = sig();
        let uid = Uid::new((r, 1), (t, 0));
        let tgd = uid.to_tgd(&s);
        assert!(tgd.is_uid());
        assert_eq!(Uid::from_tgd(&tgd), Some(uid));
    }

    #[test]
    fn finite_closure_adds_nothing_without_cycles() {
        let (s, r, t) = sig();
        let uids = vec![Uid::new((r, 0), (t, 0))];
        let fds = vec![Fd::new(r, vec![0], 1)];
        let (cu, cf) = finite_closure(&s, &uids, &fds);
        assert_eq!(cu, uids);
        assert_eq!(cf.len(), 1);
    }

    #[test]
    fn finite_closure_reverses_uid_cycle() {
        // A cycle of UIDs R[0] ⊆ T[0] ⊆ R[0] stays a cycle; but a cycle
        // through a unary FD forces the reverse dependencies in the finite
        // case: T[0] ⊆ R[0], FD R: 0 -> 1, R[1] ⊆ T[0].
        let (s, r, t) = sig();
        let uids = vec![Uid::new((t, 0), (r, 0)), Uid::new((r, 1), (t, 0))];
        let fds = vec![Fd::new(r, vec![0], 1)];
        let (cu, cf) = finite_closure(&s, &uids, &fds);
        // The cycle is (t,0) -> (r,0) -FD-> (r,1) -> (t,0); finitely this
        // forces the reverses.
        assert!(cu.contains(&Uid::new((r, 0), (t, 0))));
        assert!(cu.contains(&Uid::new((t, 0), (r, 1))));
        assert!(cf.iter().any(|f| f.relation() == r
            && f.determiners() == &BTreeSet::from([1])
            && f.determined() == 0));
    }

    #[test]
    fn finite_closure_is_idempotent() {
        let (s, r, t) = sig();
        let uids = vec![Uid::new((t, 0), (r, 0)), Uid::new((r, 1), (t, 0))];
        let fds = vec![Fd::new(r, vec![0], 1)];
        let (cu, cf) = finite_closure(&s, &uids, &fds);
        let (cu2, cf2) = finite_closure(&s, &cu, &cf);
        assert_eq!(cu, cu2);
        assert_eq!(cf.len(), cf2.len());
    }
}
