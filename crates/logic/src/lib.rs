//! # rbqa-logic
//!
//! Logical layer of the `rbqa` workspace: conjunctive queries, unions of
//! conjunctive queries, homomorphisms and query evaluation, integrity
//! constraints (tuple-generating dependencies and functional dependencies)
//! together with their syntactic classification (IDs, UIDs, guarded,
//! frontier-guarded, full, linear, width), dependency implication closures,
//! and a small text parser used by examples and tests.
//!
//! This is the vocabulary of the paper's Section 2 ("Preliminaries"):
//!
//! * [`cq::ConjunctiveQuery`] — CQs with free variables, Boolean CQs, and
//!   their canonical databases;
//! * [`constraints::Tgd`] / [`constraints::Fd`] — TGDs (`∀x φ(x) → ∃y ψ(x,y)`)
//!   and FDs (`D → j` on a relation);
//! * [`homomorphism`] — the matching kernel: homomorphism search from a CQ
//!   into an instance (the semantics of Boolean CQs), implemented as
//!   compiled match programs over dense bindings with the original
//!   backtracking search retained as the differential baseline;
//! * [`implication`] — FD closure / `DetBy`, UID closure, and the finite
//!   closure of UIDs + FDs used in Section 7;
//! * [`parser`] — a compact concrete syntax for atoms, queries and
//!   dependencies.

pub mod atom;
pub mod canonical;
pub mod constraints;
pub mod cq;
pub mod evaluate;
pub mod homomorphism;
pub mod implication;
pub mod minimize;
pub mod parser;
pub mod term;
pub mod ucq;

pub use atom::Atom;
pub use canonical::{canonical_atoms_code, canonical_query_code, canonical_ucq_code};
pub use constraints::{Constraint, ConstraintSet, Fd, Tgd};
pub use cq::{CanonicalDatabase, ConjunctiveQuery, CqBuilder};
pub use evaluate::evaluate;
pub use homomorphism::{find_homomorphism, holds, Binding, Homomorphism, KernelMode, MatchProgram};
pub use minimize::{cq_contained_in, cq_equivalent, minimize, minimize_under_fds};
pub use term::{Term, VarId, VarPool};
pub use ucq::UnionOfConjunctiveQueries;
