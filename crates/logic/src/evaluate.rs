//! Evaluation of (possibly non-Boolean) conjunctive queries over instances.

use rbqa_common::{Error, Instance, Result, Value};
use rustc_hash::FxHashSet;

use crate::cq::ConjunctiveQuery;
use crate::homomorphism::MatchProgram;
use crate::term::VarId;

/// The free variables of `query` that do not occur in its body, rendered by
/// name. A non-empty result means the query is *unsafe*: those answer
/// positions have no defined value.
fn unsafe_free_vars(query: &ConjunctiveQuery) -> Vec<String> {
    let body: Vec<VarId> = query.all_variables();
    query
        .free_vars()
        .iter()
        .filter(|v| !body.contains(v))
        .map(|v| query.vars().name(*v).to_owned())
        .collect()
}

/// Evaluates `query` over `instance`, returning the set of answer tuples
/// (projections of homomorphisms onto the free variables, deduplicated,
/// sorted for determinism).
///
/// For a Boolean query the result is either `[[]]` (the query holds — one
/// empty answer tuple) or `[]` (it does not), matching the usual convention
/// that the output of a Boolean query is `true` or `false`.
///
/// # Errors
///
/// Returns [`Error::Invalid`] when the query is *unsafe* — some free
/// (answer) variable does not occur in the body, so its answer position has
/// no defined value. The request layer (`rbqa-api`'s builder) rejects such
/// queries up front; the core refuses to guess rather than silently
/// dropping tuples.
pub fn evaluate(query: &ConjunctiveQuery, instance: &Instance) -> Result<Vec<Vec<Value>>> {
    let missing = unsafe_free_vars(query);
    if !missing.is_empty() {
        return Err(Error::Invalid(format!(
            "unsafe query: free variable(s) {} do not occur in the body",
            missing
                .iter()
                .map(|n| format!("`{n}`"))
                .collect::<Vec<_>>()
                .join(", ")
        )));
    }
    // Project each homomorphism onto the free variables straight from the
    // kernel's dense binding — no intermediate hash-map materialisation.
    let program = MatchProgram::compile(query, &[]);
    let mut out: FxHashSet<Vec<Value>> = FxHashSet::default();
    program.for_each(instance, &[], |binding| {
        let tuple: Vec<Value> = query
            .free_vars()
            .iter()
            .map(|v| {
                binding
                    .get(*v)
                    .expect("safe query: free vars occur in body")
            })
            .collect();
        out.insert(tuple);
        true
    });
    let mut result: Vec<Vec<Value>> = out.into_iter().collect();
    result.sort();
    Ok(result)
}

/// Evaluates the Boolean closure of `query` on `instance`.
pub fn evaluate_boolean(query: &ConjunctiveQuery, instance: &Instance) -> bool {
    crate::homomorphism::holds(query, instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::CqBuilder;
    use rbqa_common::{Instance, Signature, ValueFactory};

    fn prof_setup() -> (Signature, rbqa_common::RelationId, ValueFactory, Vec<Value>) {
        let mut sig = Signature::new();
        let prof = sig.add_relation("Prof", 3).unwrap();
        let mut vf = ValueFactory::new();
        let vals = vec![
            vf.constant("1"),
            vf.constant("ada"),
            vf.constant("10000"),
            vf.constant("2"),
            vf.constant("grace"),
            vf.constant("20000"),
        ];
        (sig, prof, vf, vals)
    }

    #[test]
    fn evaluate_selects_and_projects() {
        let (sig, prof, _vf, v) = prof_setup();
        let mut inst = Instance::new(sig.clone());
        inst.insert(prof, vec![v[0], v[1], v[2]]).unwrap();
        inst.insert(prof, vec![v[3], v[4], v[5]]).unwrap();

        // Q1(n) :- Prof(i, n, '10000')
        let mut b = CqBuilder::with_values({
            // Share constants with the instance by re-interning the same
            // names in the same order.
            let mut f = ValueFactory::new();
            for name in ["1", "ada", "10000", "2", "grace", "20000"] {
                f.constant(name);
            }
            f
        });
        let i = b.var("i");
        let n = b.var("n");
        let salary = b.constant("10000");
        let q = b
            .free(n)
            .atom(prof, vec![i.into(), n.into(), salary])
            .build();

        let answers = evaluate(&q, &inst).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0], vec![v[1]]);
    }

    #[test]
    fn evaluate_boolean_query() {
        let (sig, prof, _vf, v) = prof_setup();
        let mut inst = Instance::new(sig.clone());
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let q = b.atom(prof, vec![x.into(), x.into(), x.into()]).build();
        assert!(!evaluate_boolean(&q, &inst));
        assert_eq!(evaluate(&q, &inst).unwrap(), Vec::<Vec<Value>>::new());
        inst.insert(prof, vec![v[0], v[0], v[0]]).unwrap();
        assert!(evaluate_boolean(&q, &inst));
        assert_eq!(evaluate(&q, &inst).unwrap(), vec![Vec::<Value>::new()]);
    }

    #[test]
    fn evaluate_deduplicates_answers() {
        let (sig, prof, _vf, v) = prof_setup();
        let mut inst = Instance::new(sig.clone());
        // Two professors with the same name but different ids.
        inst.insert(prof, vec![v[0], v[1], v[2]]).unwrap();
        inst.insert(prof, vec![v[3], v[1], v[2]]).unwrap();
        let mut b = CqBuilder::new();
        let i = b.var("i");
        let n = b.var("n");
        let s = b.var("s");
        let q = b
            .free(n)
            .atom(prof, vec![i.into(), n.into(), s.into()])
            .build();
        let answers = evaluate(&q, &inst).unwrap();
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn evaluate_multiple_free_vars_is_sorted() {
        let (sig, prof, _vf, v) = prof_setup();
        let mut inst = Instance::new(sig.clone());
        inst.insert(prof, vec![v[0], v[1], v[2]]).unwrap();
        inst.insert(prof, vec![v[3], v[4], v[5]]).unwrap();
        let mut b = CqBuilder::new();
        let i = b.var("i");
        let n = b.var("n");
        let s = b.var("s");
        let q = b
            .free(i)
            .free(n)
            .atom(prof, vec![i.into(), n.into(), s.into()])
            .build();
        let answers = evaluate(&q, &inst).unwrap();
        assert_eq!(answers.len(), 2);
        let mut sorted = answers.clone();
        sorted.sort();
        assert_eq!(answers, sorted);
    }

    #[test]
    fn unsafe_query_is_rejected() {
        // Q(y) :- Prof(x, x, x): the free variable y has no defined value.
        let (sig, prof, _vf, v) = prof_setup();
        let mut inst = Instance::new(sig.clone());
        inst.insert(prof, vec![v[0], v[0], v[0]]).unwrap();
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let q = b
            .free(y)
            .atom(prof, vec![x.into(), x.into(), x.into()])
            .build();
        let err = evaluate(&q, &inst).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unsafe query"), "{msg}");
        assert!(msg.contains("`y`"), "{msg}");
    }
}
