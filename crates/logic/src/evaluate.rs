//! Evaluation of (possibly non-Boolean) conjunctive queries over instances.

use rbqa_common::{Instance, Value};
use rustc_hash::FxHashSet;

use crate::cq::ConjunctiveQuery;
use crate::homomorphism::all_homomorphisms;

/// Evaluates `query` over `instance`, returning the set of answer tuples
/// (projections of homomorphisms onto the free variables, deduplicated,
/// sorted for determinism).
///
/// For a Boolean query the result is either `[[]]` (the query holds — one
/// empty answer tuple) or `[]` (it does not), matching the usual convention
/// that the output of a Boolean query is `true` or `false`.
pub fn evaluate(query: &ConjunctiveQuery, instance: &Instance) -> Vec<Vec<Value>> {
    let homs = all_homomorphisms(query, instance, usize::MAX);
    let mut out: FxHashSet<Vec<Value>> = FxHashSet::default();
    for h in homs {
        let tuple: Option<Vec<Value>> = query
            .free_vars()
            .iter()
            .map(|v| h.get(v).copied())
            .collect();
        match tuple {
            Some(t) => {
                out.insert(t);
            }
            None => {
                // A free variable not occurring in the body: the query is
                // unsafe; we treat the answer as undefined and skip it.
            }
        }
    }
    let mut result: Vec<Vec<Value>> = out.into_iter().collect();
    result.sort();
    result
}

/// Evaluates the Boolean closure of `query` on `instance`.
pub fn evaluate_boolean(query: &ConjunctiveQuery, instance: &Instance) -> bool {
    crate::homomorphism::holds(query, instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::CqBuilder;
    use rbqa_common::{Instance, Signature, ValueFactory};

    fn prof_setup() -> (Signature, rbqa_common::RelationId, ValueFactory, Vec<Value>) {
        let mut sig = Signature::new();
        let prof = sig.add_relation("Prof", 3).unwrap();
        let mut vf = ValueFactory::new();
        let vals = vec![
            vf.constant("1"),
            vf.constant("ada"),
            vf.constant("10000"),
            vf.constant("2"),
            vf.constant("grace"),
            vf.constant("20000"),
        ];
        (sig, prof, vf, vals)
    }

    #[test]
    fn evaluate_selects_and_projects() {
        let (sig, prof, _vf, v) = prof_setup();
        let mut inst = Instance::new(sig.clone());
        inst.insert(prof, vec![v[0], v[1], v[2]]).unwrap();
        inst.insert(prof, vec![v[3], v[4], v[5]]).unwrap();

        // Q1(n) :- Prof(i, n, '10000')
        let mut b = CqBuilder::with_values({
            // Share constants with the instance by re-interning the same
            // names in the same order.
            let mut f = ValueFactory::new();
            for name in ["1", "ada", "10000", "2", "grace", "20000"] {
                f.constant(name);
            }
            f
        });
        let i = b.var("i");
        let n = b.var("n");
        let salary = b.constant("10000");
        let q = b
            .free(n)
            .atom(prof, vec![i.into(), n.into(), salary])
            .build();

        let answers = evaluate(&q, &inst);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0], vec![v[1]]);
    }

    #[test]
    fn evaluate_boolean_query() {
        let (sig, prof, _vf, v) = prof_setup();
        let mut inst = Instance::new(sig.clone());
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let q = b.atom(prof, vec![x.into(), x.into(), x.into()]).build();
        assert!(!evaluate_boolean(&q, &inst));
        assert_eq!(evaluate(&q, &inst), Vec::<Vec<Value>>::new());
        inst.insert(prof, vec![v[0], v[0], v[0]]).unwrap();
        assert!(evaluate_boolean(&q, &inst));
        assert_eq!(evaluate(&q, &inst), vec![Vec::<Value>::new()]);
    }

    #[test]
    fn evaluate_deduplicates_answers() {
        let (sig, prof, _vf, v) = prof_setup();
        let mut inst = Instance::new(sig.clone());
        // Two professors with the same name but different ids.
        inst.insert(prof, vec![v[0], v[1], v[2]]).unwrap();
        inst.insert(prof, vec![v[3], v[1], v[2]]).unwrap();
        let mut b = CqBuilder::new();
        let i = b.var("i");
        let n = b.var("n");
        let s = b.var("s");
        let q = b
            .free(n)
            .atom(prof, vec![i.into(), n.into(), s.into()])
            .build();
        let answers = evaluate(&q, &inst);
        assert_eq!(answers.len(), 1);
    }

    #[test]
    fn evaluate_multiple_free_vars_is_sorted() {
        let (sig, prof, _vf, v) = prof_setup();
        let mut inst = Instance::new(sig.clone());
        inst.insert(prof, vec![v[0], v[1], v[2]]).unwrap();
        inst.insert(prof, vec![v[3], v[4], v[5]]).unwrap();
        let mut b = CqBuilder::new();
        let i = b.var("i");
        let n = b.var("n");
        let s = b.var("s");
        let q = b
            .free(i)
            .free(n)
            .atom(prof, vec![i.into(), n.into(), s.into()])
            .build();
        let answers = evaluate(&q, &inst);
        assert_eq!(answers.len(), 2);
        let mut sorted = answers.clone();
        sorted.sort();
        assert_eq!(answers, sorted);
    }
}
