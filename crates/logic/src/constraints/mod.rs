//! Integrity constraints: tuple-generating dependencies and functional
//! dependencies, plus sets of constraints with syntactic classification.

pub mod fd;
pub mod tgd;

pub use fd::Fd;
pub use tgd::{Tgd, TgdBuilder};

use rbqa_common::{RelationId, Signature};

/// A single integrity constraint.
#[derive(Debug, Clone)]
pub enum Constraint {
    /// A tuple-generating dependency `∀x (φ(x) → ∃y ψ(x, y))`.
    Tgd(Tgd),
    /// A functional dependency `D → j` on a relation.
    Fd(Fd),
}

impl Constraint {
    /// The TGD, if this constraint is one.
    pub fn as_tgd(&self) -> Option<&Tgd> {
        match self {
            Constraint::Tgd(t) => Some(t),
            Constraint::Fd(_) => None,
        }
    }

    /// The FD, if this constraint is one.
    pub fn as_fd(&self) -> Option<&Fd> {
        match self {
            Constraint::Fd(f) => Some(f),
            Constraint::Tgd(_) => None,
        }
    }

    /// Renders the constraint.
    pub fn display(&self, sig: &Signature) -> String {
        match self {
            Constraint::Tgd(t) => t.display(sig),
            Constraint::Fd(f) => f.display(sig),
        }
    }
}

impl From<Tgd> for Constraint {
    fn from(t: Tgd) -> Self {
        Constraint::Tgd(t)
    }
}

impl From<Fd> for Constraint {
    fn from(f: Fd) -> Self {
        Constraint::Fd(f)
    }
}

/// A set of integrity constraints with convenient classification queries.
///
/// The classification predicates mirror the constraint classes of the
/// paper's Table 1: FDs only, IDs only, bounded-width IDs, UIDs + FDs,
/// (frontier-)guarded TGDs, arbitrary TGDs.
#[derive(Debug, Clone, Default)]
pub struct ConstraintSet {
    tgds: Vec<Tgd>,
    fds: Vec<Fd>,
}

impl ConstraintSet {
    /// Creates an empty constraint set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a constraint set from parts.
    pub fn from_parts(tgds: Vec<Tgd>, fds: Vec<Fd>) -> Self {
        ConstraintSet { tgds, fds }
    }

    /// Adds a TGD.
    pub fn push_tgd(&mut self, tgd: Tgd) {
        self.tgds.push(tgd);
    }

    /// Adds an FD.
    pub fn push_fd(&mut self, fd: Fd) {
        self.fds.push(fd);
    }

    /// Adds any constraint.
    pub fn push(&mut self, c: Constraint) {
        match c {
            Constraint::Tgd(t) => self.tgds.push(t),
            Constraint::Fd(f) => self.fds.push(f),
        }
    }

    /// The TGDs of the set.
    pub fn tgds(&self) -> &[Tgd] {
        &self.tgds
    }

    /// The FDs of the set.
    pub fn fds(&self) -> &[Fd] {
        &self.fds
    }

    /// Iterates over all constraints.
    pub fn iter(&self) -> impl Iterator<Item = Constraint> + '_ {
        self.tgds
            .iter()
            .cloned()
            .map(Constraint::Tgd)
            .chain(self.fds.iter().cloned().map(Constraint::Fd))
    }

    /// Total number of constraints.
    pub fn len(&self) -> usize {
        self.tgds.len() + self.fds.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tgds.is_empty() && self.fds.is_empty()
    }

    /// Whether the set contains only FDs.
    pub fn is_fds_only(&self) -> bool {
        self.tgds.is_empty()
    }

    /// Whether the set contains only TGDs (no FDs).
    pub fn is_tgds_only(&self) -> bool {
        self.fds.is_empty()
    }

    /// Whether every TGD is an inclusion dependency and there are no FDs.
    pub fn is_ids_only(&self) -> bool {
        self.fds.is_empty() && self.tgds.iter().all(|t| t.is_id())
    }

    /// Whether every TGD is a *unary* inclusion dependency (FDs allowed).
    pub fn tgds_are_uids(&self) -> bool {
        self.tgds.iter().all(|t| t.is_uid())
    }

    /// Whether the set consists of UIDs and FDs.
    pub fn is_uids_and_fds(&self) -> bool {
        self.tgds_are_uids()
    }

    /// Whether every TGD is guarded and there are no FDs.
    pub fn is_guarded_tgds_only(&self) -> bool {
        self.fds.is_empty() && self.tgds.iter().all(|t| t.is_guarded())
    }

    /// Whether every TGD is frontier-guarded and there are no FDs.
    pub fn is_frontier_guarded_only(&self) -> bool {
        self.fds.is_empty() && self.tgds.iter().all(|t| t.is_frontier_guarded())
    }

    /// Whether every TGD is full (no existential head variables).
    pub fn tgds_are_full(&self) -> bool {
        self.tgds.iter().all(|t| t.is_full())
    }

    /// Maximum width over all IDs in the set (0 if there are none). Only
    /// meaningful when [`ConstraintSet::is_ids_only`] holds or when all TGDs
    /// are IDs.
    pub fn max_id_width(&self) -> usize {
        self.tgds
            .iter()
            .filter(|t| t.is_id())
            .map(|t| t.width())
            .max()
            .unwrap_or(0)
    }

    /// The FDs restricted to one relation.
    pub fn fds_of(&self, relation: RelationId) -> Vec<&Fd> {
        self.fds
            .iter()
            .filter(|f| f.relation() == relation)
            .collect()
    }

    /// Merges another constraint set into this one.
    pub fn extend(&mut self, other: &ConstraintSet) {
        self.tgds.extend(other.tgds.iter().cloned());
        self.fds.extend(other.fds.iter().cloned());
    }

    /// Renders all constraints, one per line.
    pub fn display(&self, sig: &Signature) -> String {
        self.iter()
            .map(|c| c.display(sig))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn sig3() -> (Signature, RelationId, RelationId, RelationId) {
        let mut sig = Signature::new();
        let r = sig.add_relation("R", 2).unwrap();
        let s = sig.add_relation("S", 3).unwrap();
        let t = sig.add_relation("T", 1).unwrap();
        (sig, r, s, t)
    }

    #[test]
    fn classification_of_id_only_set() {
        let (sig, r, s, _t) = sig3();
        // R(x, y) -> ∃z w S(z, y, w)   (a UID)
        let mut b = TgdBuilder::new();
        let (x, y, z, w) = (b.var("x"), b.var("y"), b.var("z"), b.var("w"));
        b.body_atom(r, vec![Term::Var(x), Term::Var(y)]);
        b.head_atom(s, vec![Term::Var(z), Term::Var(y), Term::Var(w)]);
        let uid = b.build();
        assert!(uid.is_id());
        assert!(uid.is_uid());

        let mut set = ConstraintSet::new();
        set.push_tgd(uid);
        assert!(set.is_ids_only());
        assert!(set.is_uids_and_fds());
        assert!(set.is_guarded_tgds_only());
        assert!(set.is_frontier_guarded_only());
        assert!(!set.is_fds_only());
        assert_eq!(set.max_id_width(), 1);
        assert_eq!(set.len(), 1);
        let _ = set.display(&sig);
    }

    #[test]
    fn classification_with_fds() {
        let (_sig, _r, s, _t) = sig3();
        let mut set = ConstraintSet::new();
        set.push_fd(Fd::new(s, vec![0], 1));
        assert!(set.is_fds_only());
        assert!(!set.is_tgds_only());
        assert!(set.is_uids_and_fds());
        assert_eq!(set.fds_of(s).len(), 1);
    }

    #[test]
    fn non_id_tgd_detected() {
        let (_sig, r, _s, t) = sig3();
        // T(y), R(x, y) -> T(x) : full TGD, not an ID (two body atoms).
        let mut b = TgdBuilder::new();
        let (x, y) = (b.var("x"), b.var("y"));
        b.body_atom(t, vec![Term::Var(y)]);
        b.body_atom(r, vec![Term::Var(x), Term::Var(y)]);
        b.head_atom(t, vec![Term::Var(x)]);
        let tgd = b.build();
        assert!(!tgd.is_id());
        assert!(tgd.is_full());
        let mut set = ConstraintSet::new();
        set.push_tgd(tgd);
        assert!(!set.is_ids_only());
        assert!(set.tgds_are_full());
    }

    #[test]
    fn extend_merges_sets() {
        let (_sig, _r, s, _t) = sig3();
        let mut a = ConstraintSet::new();
        a.push_fd(Fd::new(s, vec![0], 1));
        let mut b = ConstraintSet::new();
        b.push_fd(Fd::new(s, vec![0], 2));
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn constraint_conversions() {
        let (_sig, _r, s, _t) = sig3();
        let c: Constraint = Fd::new(s, vec![0], 1).into();
        assert!(c.as_fd().is_some());
        assert!(c.as_tgd().is_none());
    }
}
