//! Functional dependencies.
//!
//! An FD on a relation `R` of arity `n` is written `D → j` for
//! `D ⊆ {0..n-1}` and `j ∈ {0..n-1}`: whenever two `R`-facts agree on all
//! positions of `D`, they agree on position `j` (paper, Section 2).

use rbqa_common::{RelationId, Signature, Value};
use std::collections::BTreeSet;

/// A functional dependency `D → j` on one relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Fd {
    relation: RelationId,
    determiners: BTreeSet<usize>,
    determined: usize,
}

impl Fd {
    /// Creates the FD `determiners → determined` on `relation`.
    /// Positions are 0-based.
    pub fn new(relation: RelationId, determiners: Vec<usize>, determined: usize) -> Self {
        Fd {
            relation,
            determiners: determiners.into_iter().collect(),
            determined,
        }
    }

    /// Creates a key constraint: `key_positions` determine every position of
    /// the relation. Returns one FD per non-key position (plus none for the
    /// key positions themselves, which are trivially determined).
    pub fn key(sig: &Signature, relation: RelationId, key_positions: &[usize]) -> Vec<Fd> {
        let arity = sig.arity(relation);
        (0..arity)
            .filter(|p| !key_positions.contains(p))
            .map(|p| Fd::new(relation, key_positions.to_vec(), p))
            .collect()
    }

    /// The relation the FD applies to.
    pub fn relation(&self) -> RelationId {
        self.relation
    }

    /// The determining positions `D`.
    pub fn determiners(&self) -> &BTreeSet<usize> {
        &self.determiners
    }

    /// The determined position `j`.
    pub fn determined(&self) -> usize {
        self.determined
    }

    /// Whether the FD is trivial (`j ∈ D`).
    pub fn is_trivial(&self) -> bool {
        self.determiners.contains(&self.determined)
    }

    /// Whether the FD is *unary* (a single determining position).
    pub fn is_unary(&self) -> bool {
        self.determiners.len() == 1
    }

    /// Whether two tuples of the FD's relation violate it: they agree on all
    /// determining positions but disagree on the determined position.
    pub fn violated_by(&self, t1: &[Value], t2: &[Value]) -> bool {
        self.determiners.iter().all(|&p| t1[p] == t2[p])
            && t1[self.determined] != t2[self.determined]
    }

    /// Whether the FD holds on every pair of tuples of its relation in
    /// `instance`.
    pub fn holds_on(&self, instance: &rbqa_common::Instance) -> bool {
        let tuples: Vec<&[Value]> = instance.tuples(self.relation).collect();
        for (i, t1) in tuples.iter().enumerate() {
            for t2 in &tuples[i + 1..] {
                if self.violated_by(t1, t2) {
                    return false;
                }
            }
        }
        true
    }

    /// Renders the FD using 1-based positions, as in the paper.
    pub fn display(&self, sig: &Signature) -> String {
        let lhs: Vec<String> = self
            .determiners
            .iter()
            .map(|p| (p + 1).to_string())
            .collect();
        format!(
            "FD {}: {} -> {}",
            sig.name(self.relation),
            lhs.join(","),
            self.determined + 1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_common::{Instance, ValueFactory};

    fn setup() -> (Signature, RelationId, ValueFactory) {
        let mut sig = Signature::new();
        let udir = sig.add_relation("Udirectory", 3).unwrap();
        (sig, udir, ValueFactory::new())
    }

    #[test]
    fn fd_accessors() {
        let (_sig, udir, _) = setup();
        let fd = Fd::new(udir, vec![0], 1);
        assert_eq!(fd.relation(), udir);
        assert_eq!(fd.determined(), 1);
        assert!(fd.determiners().contains(&0));
        assert!(fd.is_unary());
        assert!(!fd.is_trivial());
        assert!(Fd::new(udir, vec![0, 1], 1).is_trivial());
        assert!(!Fd::new(udir, vec![0, 2], 1).is_unary());
    }

    #[test]
    fn violation_detection() {
        // Example 1.5: each employee id has exactly one address
        // (Udirectory: id -> address), but possibly many phone numbers.
        let (_sig, udir, mut vf) = setup();
        let id = vf.constant("12345");
        let addr1 = vf.constant("main st");
        let addr2 = vf.constant("elm st");
        let phone1 = vf.constant("555-1");
        let phone2 = vf.constant("555-2");
        let fd = Fd::new(udir, vec![0], 1);
        assert!(!fd.violated_by(&[id, addr1, phone1], &[id, addr1, phone2]));
        assert!(fd.violated_by(&[id, addr1, phone1], &[id, addr2, phone1]));
    }

    #[test]
    fn holds_on_instance() {
        let (sig, udir, mut vf) = setup();
        let id = vf.constant("12345");
        let id2 = vf.constant("6789");
        let addr1 = vf.constant("main st");
        let addr2 = vf.constant("elm st");
        let phone1 = vf.constant("555-1");
        let phone2 = vf.constant("555-2");
        let fd = Fd::new(udir, vec![0], 1);
        let mut inst = Instance::new(sig.clone());
        inst.insert(udir, vec![id, addr1, phone1]).unwrap();
        inst.insert(udir, vec![id, addr1, phone2]).unwrap();
        inst.insert(udir, vec![id2, addr2, phone1]).unwrap();
        assert!(fd.holds_on(&inst));
        inst.insert(udir, vec![id, addr2, phone1]).unwrap();
        assert!(!fd.holds_on(&inst));
    }

    #[test]
    fn key_generates_fds_for_non_key_positions() {
        let (sig, udir, _) = setup();
        let fds = Fd::key(&sig, udir, &[0]);
        assert_eq!(fds.len(), 2);
        assert!(fds.iter().all(|f| f.determiners().contains(&0)));
        let determined: BTreeSet<usize> = fds.iter().map(|f| f.determined()).collect();
        assert_eq!(determined, BTreeSet::from([1, 2]));
    }

    #[test]
    fn display_uses_one_based_positions() {
        let (sig, udir, _) = setup();
        let fd = Fd::new(udir, vec![0, 2], 1);
        assert_eq!(fd.display(&sig), "FD Udirectory: 1,3 -> 2");
    }
}
