//! Tuple-generating dependencies (TGDs) and their syntactic classes.
//!
//! A TGD is a sentence `∀x (φ(x) → ∃y ψ(x, y))` where `φ` (the *body*) and
//! `ψ` (the *head*) are conjunctions of relational atoms. The *exported*
//! (frontier) variables are the body variables that also occur in the head.
//! The paper's constraint classes are all syntactic restrictions of TGDs:
//!
//! * **full** TGD — no existentially quantified head variable;
//! * **guarded** TGD (GTGD) — some body atom contains every body variable;
//! * **frontier-guarded** TGD (FGTGD) — some body atom contains every
//!   exported variable;
//! * **inclusion dependency** (ID) — single body atom and single head atom,
//!   each without repeated variables;
//! * **unary inclusion dependency** (UID) — an ID of width 1, i.e. a single
//!   exported variable;
//! * **linear** TGD — single body atom (repetitions allowed).

use rbqa_common::{RelationId, Signature};
use rustc_hash::FxHashSet;

use crate::atom::Atom;
use crate::term::{Term, VarId, VarPool};

/// A tuple-generating dependency.
#[derive(Debug, Clone)]
pub struct Tgd {
    vars: VarPool,
    body: Vec<Atom>,
    head: Vec<Atom>,
}

impl Tgd {
    /// Creates a TGD from its parts. Prefer [`TgdBuilder`].
    pub fn new(vars: VarPool, body: Vec<Atom>, head: Vec<Atom>) -> Self {
        Tgd { vars, body, head }
    }

    /// The variable pool of this dependency.
    pub fn vars(&self) -> &VarPool {
        &self.vars
    }

    /// The body atoms.
    pub fn body(&self) -> &[Atom] {
        &self.body
    }

    /// The head atoms.
    pub fn head(&self) -> &[Atom] {
        &self.head
    }

    /// Distinct variables of the body, in order of first occurrence.
    pub fn body_variables(&self) -> Vec<VarId> {
        distinct_vars(&self.body)
    }

    /// Distinct variables of the head, in order of first occurrence.
    pub fn head_variables(&self) -> Vec<VarId> {
        distinct_vars(&self.head)
    }

    /// The exported (frontier) variables: body variables occurring in the
    /// head.
    pub fn exported_variables(&self) -> Vec<VarId> {
        let head: FxHashSet<VarId> = self.head_variables().into_iter().collect();
        self.body_variables()
            .into_iter()
            .filter(|v| head.contains(v))
            .collect()
    }

    /// The existential variables: head variables not occurring in the body.
    pub fn existential_variables(&self) -> Vec<VarId> {
        let body: FxHashSet<VarId> = self.body_variables().into_iter().collect();
        self.head_variables()
            .into_iter()
            .filter(|v| !body.contains(v))
            .collect()
    }

    /// Whether the TGD is full (no existential head variable).
    pub fn is_full(&self) -> bool {
        self.existential_variables().is_empty()
    }

    /// Whether the TGD is guarded: some body atom contains all body
    /// variables.
    pub fn is_guarded(&self) -> bool {
        let body_vars: FxHashSet<VarId> = self.body_variables().into_iter().collect();
        self.body.iter().any(|a| {
            let atom_vars: FxHashSet<VarId> = a.variables().into_iter().collect();
            body_vars.is_subset(&atom_vars)
        })
    }

    /// Whether the TGD is frontier-guarded: some body atom contains all
    /// exported variables.
    pub fn is_frontier_guarded(&self) -> bool {
        let frontier: FxHashSet<VarId> = self.exported_variables().into_iter().collect();
        self.body.iter().any(|a| {
            let atom_vars: FxHashSet<VarId> = a.variables().into_iter().collect();
            frontier.is_subset(&atom_vars)
        })
    }

    /// Whether the TGD is linear (single body atom).
    pub fn is_linear(&self) -> bool {
        self.body.len() == 1
    }

    /// Whether the TGD is an inclusion dependency: single body atom and
    /// single head atom, both without repeated variables or constants.
    pub fn is_id(&self) -> bool {
        self.body.len() == 1
            && self.head.len() == 1
            && !self.body[0].has_repeated_variable()
            && !self.head[0].has_repeated_variable()
            && !self.body[0].has_constants()
            && !self.head[0].has_constants()
    }

    /// The width of the dependency: the number of exported variables. For
    /// IDs this is the paper's notion of width.
    pub fn width(&self) -> usize {
        self.exported_variables().len()
    }

    /// Whether the TGD is a unary inclusion dependency (an ID of width 1).
    pub fn is_uid(&self) -> bool {
        self.is_id() && self.width() == 1
    }

    /// For an ID, the pairs `(body position, head position)` at which each
    /// exported variable travels from the body atom to the head atom.
    /// Returns `None` when the TGD is not an ID.
    pub fn id_position_map(&self) -> Option<Vec<(usize, usize)>> {
        if !self.is_id() {
            return None;
        }
        let body = &self.body[0];
        let head = &self.head[0];
        let mut map = Vec::new();
        for v in self.exported_variables() {
            let bpos = body.positions_of(v);
            let hpos = head.positions_of(v);
            debug_assert_eq!(bpos.len(), 1);
            debug_assert_eq!(hpos.len(), 1);
            map.push((bpos[0], hpos[0]));
        }
        Some(map)
    }

    /// The relations mentioned by the dependency (body then head, deduped).
    pub fn relations(&self) -> Vec<RelationId> {
        let mut out = Vec::new();
        for a in self.body.iter().chain(self.head.iter()) {
            if !out.contains(&a.relation()) {
                out.push(a.relation());
            }
        }
        out
    }

    /// Renders the TGD in the `body -> head` concrete syntax.
    pub fn display(&self, sig: &Signature) -> String {
        let names = |v: VarId| self.vars.name(v).to_owned();
        let body: Vec<String> = self.body.iter().map(|a| a.display(sig, names)).collect();
        let head: Vec<String> = self.head.iter().map(|a| a.display(sig, names)).collect();
        format!("{} -> {}", body.join(", "), head.join(", "))
    }
}

fn distinct_vars(atoms: &[Atom]) -> Vec<VarId> {
    let mut seen = Vec::new();
    for atom in atoms {
        for v in atom.variables() {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
    }
    seen
}

/// Fluent builder for [`Tgd`].
#[derive(Debug, Default)]
pub struct TgdBuilder {
    vars: VarPool,
    body: Vec<Atom>,
    head: Vec<Atom>,
}

impl TgdBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating if needed) the variable named `name`.
    pub fn var(&mut self, name: &str) -> VarId {
        self.vars.var(name)
    }

    /// Adds a body atom.
    pub fn body_atom(&mut self, relation: RelationId, args: Vec<Term>) -> &mut Self {
        self.body.push(Atom::new(relation, args));
        self
    }

    /// Adds a head atom.
    pub fn head_atom(&mut self, relation: RelationId, args: Vec<Term>) -> &mut Self {
        self.head.push(Atom::new(relation, args));
        self
    }

    /// Finalises the dependency.
    pub fn build(&mut self) -> Tgd {
        Tgd::new(
            std::mem::take(&mut self.vars),
            std::mem::take(&mut self.body),
            std::mem::take(&mut self.head),
        )
    }
}

/// Convenience constructor for an inclusion dependency.
///
/// `body_positions` and `head_positions` must have equal length `k`; the
/// resulting ID exports `k` variables, exporting the value at
/// `body_positions[i]` of `from` into `head_positions[i]` of `to`, with all
/// other head positions existentially quantified.
pub fn inclusion_dependency(
    sig: &Signature,
    from: RelationId,
    body_positions: &[usize],
    to: RelationId,
    head_positions: &[usize],
) -> Tgd {
    assert_eq!(
        body_positions.len(),
        head_positions.len(),
        "inclusion dependency requires matching position lists"
    );
    let mut b = TgdBuilder::new();
    let from_arity = sig.arity(from);
    let to_arity = sig.arity(to);
    // Body: one distinct variable per position of `from`.
    let body_vars: Vec<VarId> = (0..from_arity).map(|i| b.var(&format!("x{i}"))).collect();
    // Head: exported variables where dictated, fresh variables elsewhere.
    let mut head_terms: Vec<Term> = (0..to_arity)
        .map(|i| Term::Var(b.var(&format!("y{i}"))))
        .collect();
    for (bp, hp) in body_positions.iter().zip(head_positions.iter()) {
        assert!(*bp < from_arity, "body position out of range");
        assert!(*hp < to_arity, "head position out of range");
        head_terms[*hp] = Term::Var(body_vars[*bp]);
    }
    b.body_atom(from, body_vars.iter().map(|v| Term::Var(*v)).collect());
    b.head_atom(to, head_terms);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig() -> (Signature, RelationId, RelationId, RelationId) {
        let mut s = Signature::new();
        let r = s.add_relation("R", 2).unwrap();
        let t = s.add_relation("T", 1).unwrap();
        let u = s.add_relation("U", 3).unwrap();
        (s, r, t, u)
    }

    #[test]
    fn uid_from_paper_example() {
        // R(x, y) -> ∃z w  S(z, y, w) : a UID (paper, Section 2).
        let (sig, r, _t, u) = sig();
        let tgd = inclusion_dependency(&sig, r, &[1], u, &[1]);
        assert!(tgd.is_id());
        assert!(tgd.is_uid());
        assert!(tgd.is_linear());
        assert!(tgd.is_guarded());
        assert!(tgd.is_frontier_guarded());
        assert!(!tgd.is_full());
        assert_eq!(tgd.width(), 1);
        assert_eq!(tgd.id_position_map(), Some(vec![(1, 1)]));
        assert_eq!(tgd.exported_variables().len(), 1);
        assert_eq!(tgd.existential_variables().len(), 2);
    }

    #[test]
    fn full_tgd_with_two_body_atoms() {
        // T(y), R(x, y) -> T(x) (Example 6.1's first constraint shape).
        let (sig, r, t, _u) = sig();
        let mut b = TgdBuilder::new();
        let (x, y) = (b.var("x"), b.var("y"));
        b.body_atom(t, vec![Term::Var(y)]);
        b.body_atom(r, vec![Term::Var(x), Term::Var(y)]);
        b.head_atom(t, vec![Term::Var(x)]);
        let tgd = b.build();
        assert!(tgd.is_full());
        assert!(!tgd.is_id());
        assert!(!tgd.is_linear());
        // R(x, y) guards both body variables.
        assert!(tgd.is_guarded());
        assert!(tgd.is_frontier_guarded());
        assert_eq!(tgd.width(), 1);
        let _ = tgd.display(&sig);
    }

    #[test]
    fn non_guarded_tgd() {
        // T(x), T(y) -> R(x, y) : no body atom contains both x and y.
        let (_sig, r, t, _u) = sig();
        let mut b = TgdBuilder::new();
        let (x, y) = (b.var("x"), b.var("y"));
        b.body_atom(t, vec![Term::Var(x)]);
        b.body_atom(t, vec![Term::Var(y)]);
        b.head_atom(r, vec![Term::Var(x), Term::Var(y)]);
        let tgd = b.build();
        assert!(!tgd.is_guarded());
        assert!(!tgd.is_frontier_guarded());
        assert!(tgd.is_full());
        assert_eq!(tgd.width(), 2);
    }

    #[test]
    fn frontier_guarded_but_not_guarded() {
        // R(x, y), T(z) -> T(x) : frontier {x} is guarded by R(x, y) but the
        // body variable z is in no common atom with x and y.
        let (_sig, r, t, _u) = sig();
        let mut b = TgdBuilder::new();
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.body_atom(r, vec![Term::Var(x), Term::Var(y)]);
        b.body_atom(t, vec![Term::Var(z)]);
        b.head_atom(t, vec![Term::Var(x)]);
        let tgd = b.build();
        assert!(!tgd.is_guarded());
        assert!(tgd.is_frontier_guarded());
    }

    #[test]
    fn repeated_variable_breaks_id() {
        // R(x, x) -> T(x) is linear and guarded but not an ID.
        let (_sig, r, t, _u) = sig();
        let mut b = TgdBuilder::new();
        let x = b.var("x");
        b.body_atom(r, vec![Term::Var(x), Term::Var(x)]);
        b.head_atom(t, vec![Term::Var(x)]);
        let tgd = b.build();
        assert!(!tgd.is_id());
        assert!(tgd.is_linear());
        assert!(tgd.is_guarded());
    }

    #[test]
    fn inclusion_dependency_width_two() {
        let (sig, _r, _t, u) = sig();
        let mut s2 = sig.clone();
        let v = s2.add_relation("V", 2).unwrap();
        let tgd = inclusion_dependency(&s2, u, &[0, 2], v, &[0, 1]);
        assert!(tgd.is_id());
        assert!(!tgd.is_uid());
        assert_eq!(tgd.width(), 2);
        assert_eq!(tgd.id_position_map(), Some(vec![(0, 0), (2, 1)]));
    }

    #[test]
    fn relations_listed_once() {
        let (sig, r, t, _u) = sig();
        let tgd = inclusion_dependency(&sig, r, &[0], t, &[0]);
        assert_eq!(tgd.relations(), vec![r, t]);
    }
}
