//! Unions of conjunctive queries (UCQs).
//!
//! A UCQ is a finite disjunction of CQs over the same free variables. The
//! paper uses UCQs to state finite controllability (Section 2) and to
//! convert monotone plans back into queries (Proposition 2.2); the plan
//! layer of `rbqa-access` performs a similar conversion for validation.

use rbqa_common::{Instance, Result, Value};
use rustc_hash::FxHashSet;

use crate::cq::ConjunctiveQuery;
use crate::evaluate::evaluate;

/// A union (disjunction) of conjunctive queries.
#[derive(Debug, Clone, Default)]
pub struct UnionOfConjunctiveQueries {
    disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionOfConjunctiveQueries {
    /// Creates an empty UCQ (equivalent to `false`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a UCQ from its disjuncts.
    pub fn from_disjuncts(disjuncts: Vec<ConjunctiveQuery>) -> Self {
        UnionOfConjunctiveQueries { disjuncts }
    }

    /// Wraps a single CQ as a UCQ.
    pub fn single(cq: ConjunctiveQuery) -> Self {
        UnionOfConjunctiveQueries {
            disjuncts: vec![cq],
        }
    }

    /// Adds a disjunct.
    pub fn push(&mut self, cq: ConjunctiveQuery) {
        self.disjuncts.push(cq);
    }

    /// The disjuncts of the UCQ.
    pub fn disjuncts(&self) -> &[ConjunctiveQuery] {
        &self.disjuncts
    }

    /// Whether the UCQ has no disjuncts (unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// Whether all disjuncts are Boolean.
    pub fn is_boolean(&self) -> bool {
        self.disjuncts.iter().all(|q| q.is_boolean())
    }

    /// The common number of free (answer) variables of the disjuncts, when
    /// they agree: a UCQ is well-formed only if every disjunct produces
    /// answers of the same arity. The empty union is vacuously uniform with
    /// arity 0; `None` means the disjuncts disagree.
    pub fn uniform_free_arity(&self) -> Option<usize> {
        let mut arities = self.disjuncts.iter().map(|q| q.free_vars().len());
        let first = match arities.next() {
            None => return Some(0),
            Some(a) => a,
        };
        if arities.all(|a| a == first) {
            Some(first)
        } else {
            None
        }
    }

    /// All distinct constants occurring in any disjunct.
    pub fn constants(&self) -> Vec<Value> {
        let mut seen = Vec::new();
        for q in &self.disjuncts {
            for c in q.constants() {
                if !seen.contains(&c) {
                    seen.push(c);
                }
            }
        }
        seen
    }

    /// Renders the union in the parser's concrete syntax, disjuncts joined
    /// by `||` (the wire protocol's disjunct separator).
    pub fn display(&self, sig: &rbqa_common::Signature) -> String {
        self.disjuncts
            .iter()
            .map(|q| q.display(sig))
            .collect::<Vec<_>>()
            .join(" || ")
    }

    /// Evaluates the UCQ over `instance`: the union of the answers of each
    /// disjunct, deduplicated and sorted.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::evaluate::evaluate`]'s unsafe-query error when
    /// some disjunct has a free variable absent from its body.
    pub fn evaluate(&self, instance: &Instance) -> Result<Vec<Vec<Value>>> {
        let mut out: FxHashSet<Vec<Value>> = FxHashSet::default();
        for q in &self.disjuncts {
            out.extend(evaluate(q, instance)?);
        }
        let mut result: Vec<Vec<Value>> = out.into_iter().collect();
        result.sort();
        Ok(result)
    }

    /// Whether the Boolean UCQ holds on `instance` (some disjunct holds).
    pub fn holds(&self, instance: &Instance) -> bool {
        self.disjuncts
            .iter()
            .any(|q| crate::homomorphism::holds(q, instance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::CqBuilder;
    use rbqa_common::{Instance, Signature, ValueFactory};

    fn setup() -> (Signature, rbqa_common::RelationId, rbqa_common::RelationId) {
        let mut sig = Signature::new();
        let p = sig.add_relation("P", 1).unwrap();
        let u = sig.add_relation("U", 1).unwrap();
        (sig, p, u)
    }

    #[test]
    fn empty_ucq_is_false() {
        let (sig, _, _) = setup();
        let inst = Instance::new(sig);
        let ucq = UnionOfConjunctiveQueries::new();
        assert!(ucq.is_empty());
        assert!(!ucq.holds(&inst));
        assert!(ucq.evaluate(&inst).unwrap().is_empty());
    }

    #[test]
    fn union_of_two_boolean_cqs() {
        let (sig, p, u) = setup();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");

        let mut b1 = CqBuilder::new();
        let x1 = b1.var("x");
        let q1 = b1.atom(p, vec![x1.into()]).build();
        let mut b2 = CqBuilder::new();
        let x2 = b2.var("x");
        let q2 = b2.atom(u, vec![x2.into()]).build();

        let ucq = UnionOfConjunctiveQueries::from_disjuncts(vec![q1, q2]);
        assert!(ucq.is_boolean());
        assert_eq!(ucq.len(), 2);

        let mut inst = Instance::new(sig.clone());
        assert!(!ucq.holds(&inst));
        inst.insert(u, vec![a]).unwrap();
        assert!(ucq.holds(&inst));
    }

    #[test]
    fn evaluate_unions_answers() {
        let (sig, p, u) = setup();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let mut inst = Instance::new(sig.clone());
        inst.insert(p, vec![a]).unwrap();
        inst.insert(u, vec![b]).unwrap();
        inst.insert(u, vec![a]).unwrap();

        let mut b1 = CqBuilder::new();
        let x1 = b1.var("x");
        let q1 = b1.free(x1).atom(p, vec![x1.into()]).build();
        let mut b2 = CqBuilder::new();
        let x2 = b2.var("x");
        let q2 = b2.free(x2).atom(u, vec![x2.into()]).build();

        let ucq = UnionOfConjunctiveQueries::from_disjuncts(vec![q1, q2]);
        let answers = ucq.evaluate(&inst).unwrap();
        // {a} ∪ {a, b} = {a, b}
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn uniform_free_arity_detects_mismatch() {
        let (_sig, p, u) = setup();
        let mut b1 = CqBuilder::new();
        let x1 = b1.var("x");
        let q1 = b1.free(x1).atom(p, vec![x1.into()]).build();
        let mut b2 = CqBuilder::new();
        let x2 = b2.var("x");
        let boolean = b2.atom(u, vec![x2.into()]).build();

        assert_eq!(
            UnionOfConjunctiveQueries::new().uniform_free_arity(),
            Some(0)
        );
        let uniform = UnionOfConjunctiveQueries::from_disjuncts(vec![q1.clone(), q1.clone()]);
        assert_eq!(uniform.uniform_free_arity(), Some(1));
        let mixed = UnionOfConjunctiveQueries::from_disjuncts(vec![q1, boolean]);
        assert_eq!(mixed.uniform_free_arity(), None);
    }

    #[test]
    fn constants_collects_across_disjuncts() {
        let (_sig, p, u) = setup();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let mut b1 = CqBuilder::new();
        let q1 = b1.atom(p, vec![crate::Term::Const(a)]).build();
        let mut b2 = CqBuilder::new();
        let q2 = b2
            .atom(u, vec![crate::Term::Const(a)])
            .atom(u, vec![crate::Term::Const(b)])
            .build();
        let ucq = UnionOfConjunctiveQueries::from_disjuncts(vec![q1, q2]);
        assert_eq!(ucq.constants(), vec![a, b]);
    }

    #[test]
    fn single_and_push() {
        let (_sig, p, _) = setup();
        let mut b1 = CqBuilder::new();
        let x1 = b1.var("x");
        let q1 = b1.atom(p, vec![x1.into()]).build();
        let mut ucq = UnionOfConjunctiveQueries::single(q1.clone());
        assert_eq!(ucq.len(), 1);
        ucq.push(q1);
        assert_eq!(ucq.len(), 2);
    }
}
