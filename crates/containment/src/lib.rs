//! # rbqa-containment
//!
//! Query containment under constraints — the reasoning problem that every
//! answerability question of the paper is reduced to (Section 3).
//!
//! The crate provides:
//!
//! * [`problem::ContainmentProblem`] / [`problem::Verdict`] — the problem
//!   statement `Q ⊆_Σ Q'` and three-valued verdicts (`Holds`,
//!   `DoesNotHold`, `Unknown` when a budget was exhausted before a decision
//!   could be certified);
//! * [`generic`] — the chase-based decision procedure: chase the canonical
//!   database of `Q` with `Σ`, then check whether `Q'` holds (paper,
//!   Section 2, "Query containment and chase proofs");
//! * [`bounds`] — Johnson–Klug style depth bounds for (semi-)bounded-width
//!   inclusion dependencies (Propositions 5.6 / E.7 / E.8) and the
//!   depth-bounded decision wrapper used for IDs;
//! * [`semi_width`] — position graphs, width and semi-width of sets of
//!   linear dependencies (Section 5);
//! * [`saturation`] — the truncated-accessibility-axiom saturation algorithm
//!   of Proposition E.1;
//! * [`linearization`] — the linearization construction of Proposition 5.5 /
//!   Appendix E.3.5: simulating the chase of bounded-width IDs together with
//!   accessibility axioms by linear dependencies of bounded semi-width over
//!   an expanded signature.
//!
//! Every procedure takes a [`rbqa_chase::ChaseConfig`], so callers choose
//! the budget **and the engine** (naive or the default delta-driven
//! semi-naive one — see [`rbqa_chase::ChaseEngine`]). Both engines are
//! sound; whenever both finish within budget they agree on the verdict.
//! Near the budget edge they may differ in the sound direction only: the
//! semi-naive engine enumerates strictly less per round, so it can return
//! a definitive verdict where the naive engine exhausts its budget and
//! reports [`Verdict::Unknown`] — which is also why the engine choice is
//! part of the service-layer cache fingerprint.
//!
//! ```
//! use rbqa_chase::{Budget, ChaseConfig};
//! use rbqa_common::{Signature, ValueFactory};
//! use rbqa_containment::{decide, ContainmentProblem, Verdict};
//! use rbqa_logic::constraints::ConstraintSet;
//! use rbqa_logic::parser::{parse_cq, parse_tgd};
//!
//! // Σ: Udirectory(i, a, p) -> Prof(i, n, s)  (Example 1.1's referential
//! // constraint, reversed). Then ∃ Udirectory ⊆_Σ ∃ Prof.
//! let mut sig = Signature::new();
//! let mut values = ValueFactory::new();
//! let lhs = parse_cq("Q() :- Udirectory(i, a, p)", &mut sig, &mut values).unwrap();
//! let rhs = parse_cq("Q() :- Prof(i2, n, s)", &mut sig, &mut values).unwrap();
//! let tgd = parse_tgd("Udirectory(i, a, p) -> Prof(i, n, s)", &mut sig, &mut values).unwrap();
//! let mut constraints = ConstraintSet::new();
//! constraints.push_tgd(tgd);
//!
//! let problem = ContainmentProblem { signature: sig, lhs, rhs, constraints };
//! let outcome = decide(
//!     &problem,
//!     &mut values,
//!     ChaseConfig::with_budget(Budget::generous()),
//! );
//! assert_eq!(outcome.verdict, Verdict::Holds);
//! assert!(outcome.complete);
//! ```

pub mod bounds;
pub mod generic;
pub mod linearization;
pub mod problem;
pub mod saturation;
pub mod semi_width;

pub use bounds::{decide_bounded_depth, johnson_klug_depth_bound};
pub use generic::decide;
pub use problem::{ContainmentOutcome, ContainmentProblem, Verdict};
