//! # rbqa-containment
//!
//! Query containment under constraints — the reasoning problem that every
//! answerability question of the paper is reduced to (Section 3).
//!
//! The crate provides:
//!
//! * [`problem::ContainmentProblem`] / [`problem::Verdict`] — the problem
//!   statement `Q ⊆_Σ Q'` and three-valued verdicts (`Holds`,
//!   `DoesNotHold`, `Unknown` when a budget was exhausted before a decision
//!   could be certified);
//! * [`generic`] — the chase-based decision procedure: chase the canonical
//!   database of `Q` with `Σ`, then check whether `Q'` holds (paper,
//!   Section 2, "Query containment and chase proofs");
//! * [`bounds`] — Johnson–Klug style depth bounds for (semi-)bounded-width
//!   inclusion dependencies (Propositions 5.6 / E.7 / E.8) and the
//!   depth-bounded decision wrapper used for IDs;
//! * [`semi_width`] — position graphs, width and semi-width of sets of
//!   linear dependencies (Section 5);
//! * [`saturation`] — the truncated-accessibility-axiom saturation algorithm
//!   of Proposition E.1;
//! * [`linearization`] — the linearization construction of Proposition 5.5 /
//!   Appendix E.3.5: simulating the chase of bounded-width IDs together with
//!   accessibility axioms by linear dependencies of bounded semi-width over
//!   an expanded signature.

pub mod bounds;
pub mod generic;
pub mod linearization;
pub mod problem;
pub mod saturation;
pub mod semi_width;

pub use bounds::{decide_bounded_depth, johnson_klug_depth_bound};
pub use generic::decide;
pub use problem::{ContainmentOutcome, ContainmentProblem, Verdict};
