//! Containment problem statements and verdicts.

use rbqa_chase::{ChaseStats, Completion};
use rbqa_common::Signature;
use rbqa_logic::constraints::ConstraintSet;
use rbqa_logic::ConjunctiveQuery;

/// The query containment problem `Q ⊆_Σ Q'`: does every instance satisfying
/// `lhs` (as a Boolean query) and `constraints` also satisfy `rhs`?
#[derive(Debug, Clone)]
pub struct ContainmentProblem {
    /// The signature over which both queries and constraints are expressed.
    pub signature: Signature,
    /// The containing-side query `Q`.
    pub lhs: ConjunctiveQuery,
    /// The contained-side query `Q'`.
    pub rhs: ConjunctiveQuery,
    /// The constraints `Σ`.
    pub constraints: ConstraintSet,
}

/// The answer to a containment question.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// `Q ⊆_Σ Q'` holds (a chase proof was found, or the left-hand side is
    /// unsatisfiable under the constraints).
    Holds,
    /// `Q ⊆_Σ Q'` does not hold: the chase saturated (or reached a depth at
    /// which matches are guaranteed to appear, see
    /// [`crate::bounds::decide_bounded_depth`]) without a match of `Q'`.
    DoesNotHold,
    /// The procedure ran out of budget before it could certify either
    /// answer.
    Unknown,
}

impl Verdict {
    /// Whether the verdict is decisive (not [`Verdict::Unknown`]).
    pub fn is_decided(self) -> bool {
        !matches!(self, Verdict::Unknown)
    }

    /// Whether containment was certified.
    pub fn holds(self) -> bool {
        matches!(self, Verdict::Holds)
    }
}

/// The outcome of a containment decision: the verdict plus diagnostics.
#[derive(Debug, Clone)]
pub struct ContainmentOutcome {
    /// The verdict.
    pub verdict: Verdict,
    /// How the underlying chase run ended.
    pub chase_completion: Completion,
    /// Chase statistics (facts fired, nulls created, rounds, depth).
    pub chase_stats: ChaseStats,
    /// Number of facts in the chased instance when the decision was made.
    pub chased_facts: usize,
    /// Whether the negative answer (if any) is certified complete: either
    /// the chase saturated, or the depth cap used was at least the
    /// completeness bound supplied by the caller.
    pub complete: bool,
}

impl ContainmentOutcome {
    /// Convenience constructor for a decided outcome without chase work
    /// (e.g. trivial containments).
    pub fn trivial(verdict: Verdict) -> Self {
        ContainmentOutcome {
            verdict,
            chase_completion: Completion::Saturated,
            chase_stats: ChaseStats::default(),
            chased_facts: 0,
            complete: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_predicates() {
        assert!(Verdict::Holds.is_decided());
        assert!(Verdict::Holds.holds());
        assert!(Verdict::DoesNotHold.is_decided());
        assert!(!Verdict::DoesNotHold.holds());
        assert!(!Verdict::Unknown.is_decided());
        assert!(!Verdict::Unknown.holds());
    }

    #[test]
    fn trivial_outcome_is_complete() {
        let o = ContainmentOutcome::trivial(Verdict::Holds);
        assert!(o.complete);
        assert_eq!(o.verdict, Verdict::Holds);
        assert_eq!(o.chased_facts, 0);
    }
}
