//! Johnson–Klug style depth bounds and the depth-bounded decision wrapper.
//!
//! For containment under IDs of width `w` over a signature of arity `m`,
//! Johnson and Klug show that if the right-hand query (of size `k` atoms)
//! has a match in the chase then it has a match within depth
//! `k · |Σ| · m^(w+1)` of the chase tree (paper, Lemma E.6); the result
//! extends to *semi-width* `w` with an additive `|Σ2|` factor
//! (Proposition E.8). Exploring the chase up to that depth therefore decides
//! containment.
//!
//! Deterministically materialising the chase to that depth can be expensive
//! (the NP procedure guesses the relevant branches), so
//! [`decide_bounded_depth`] combines the bound with the caller's budget: the
//! verdict is flagged as *complete* when the explored depth reaches the
//! bound (or the chase saturates earlier), and [`Verdict::Unknown`] is
//! returned when the budget stops exploration before that.

#[cfg(test)]
use rbqa_chase::Budget;
use rbqa_chase::ChaseConfig;
use rbqa_common::ValueFactory;

use crate::generic::decide_with_completeness;
use crate::problem::{ContainmentOutcome, ContainmentProblem, Verdict};
use crate::semi_width::{max_width, semi_width_decomposition};

/// The Johnson–Klug depth bound `k · |Σ| · m^(w+1)` for a right-hand query
/// of `query_atoms` atoms, `n_dependencies` dependencies, signature arity
/// `max_arity` and width `width`. Saturates instead of overflowing.
pub fn johnson_klug_depth_bound(
    query_atoms: usize,
    n_dependencies: usize,
    max_arity: usize,
    width: usize,
) -> usize {
    let pow = (max_arity.max(1) as u128).saturating_pow(width as u32 + 1);
    let bound = (query_atoms.max(1) as u128)
        .saturating_mul(n_dependencies.max(1) as u128)
        .saturating_mul(pow);
    usize::try_from(bound).unwrap_or(usize::MAX)
}

/// The depth bound for a set of dependencies of semi-width `w`: the
/// Johnson–Klug bound for the bounded-width part plus the size of the
/// acyclic part (a value can propagate through the acyclic dependencies at
/// most `|Σ2|` consecutive steps, Proposition E.8).
pub fn semi_width_depth_bound(
    query_atoms: usize,
    n_bounded: usize,
    n_acyclic: usize,
    max_arity: usize,
    width: usize,
) -> usize {
    johnson_klug_depth_bound(query_atoms, n_bounded + n_acyclic, max_arity, width)
        .saturating_add(n_acyclic)
}

/// The completeness depth for a set of linear dependencies and a right-hand
/// query of `rhs_atoms` atoms: the semi-width bound for the smallest width at
/// which the greedy semi-width decomposition succeeds (falling back to the
/// maximal width of the set).
pub fn completeness_depth_for(
    tgds: &[rbqa_logic::Tgd],
    rhs_atoms: usize,
    max_arity: usize,
) -> usize {
    let width_cap = max_width(tgds);
    let mut chosen: Option<(usize, usize, usize)> = None; // (w, |Σ1|, |Σ2|)
    for w in 0..=width_cap {
        if let Some(d) = semi_width_decomposition(tgds, w) {
            chosen = Some((w, d.bounded_part.len(), d.acyclic_part.len()));
            break;
        }
    }
    let (w, n1, n2) = chosen.unwrap_or((width_cap, tgds.len(), 0));
    semi_width_depth_bound(rhs_atoms, n1, n2, max_arity, w)
}

/// Decides `problem` (whose TGDs should be linear — IDs or linearized rules)
/// with a depth-bounded chase.
///
/// The depth used is `min(bound, config.budget.max_depth)` where `bound` is
/// the semi-width depth bound computed from the constraint set (using the
/// smallest `w` for which the greedy semi-width decomposition succeeds, and
/// falling back to the maximal width otherwise). The outcome's `complete`
/// flag records whether the explored depth reached the bound.
pub fn decide_bounded_depth(
    problem: &ContainmentProblem,
    values: &mut ValueFactory,
    config: ChaseConfig,
) -> ContainmentOutcome {
    let bound = completeness_depth_for(
        problem.constraints.tgds(),
        problem.rhs.size(),
        problem.signature.max_arity(),
    );
    let depth = bound.min(config.budget.max_depth);
    let config = ChaseConfig {
        budget: config.budget.with_max_depth(depth),
        ..config
    };
    let mut outcome = decide_with_completeness(problem, values, config, Some(bound));
    // `decide_with_completeness` flags completeness when max_depth >= bound;
    // saturation also certifies it. Nothing further to adjust, but make the
    // invariant explicit for readers of the outcome.
    if outcome.verdict == Verdict::DoesNotHold && !outcome.complete {
        outcome.verdict = Verdict::Unknown;
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_common::Signature;
    use rbqa_logic::constraints::tgd::inclusion_dependency;
    use rbqa_logic::constraints::ConstraintSet;
    use rbqa_logic::parser::parse_cq;

    #[test]
    fn depth_bound_formula() {
        assert_eq!(johnson_klug_depth_bound(2, 3, 2, 1), 2 * 3 * 4);
        assert_eq!(johnson_klug_depth_bound(1, 1, 3, 2), 27);
        // Saturating behaviour on absurd inputs.
        assert_eq!(
            johnson_klug_depth_bound(usize::MAX, usize::MAX, 10, 30),
            usize::MAX
        );
        assert_eq!(semi_width_depth_bound(1, 1, 2, 2, 1), 3 * 4 + 2);
    }

    #[test]
    fn bounded_depth_decides_cyclic_uids() {
        // Cyclic UIDs R[1] ⊆ S[0], S[1] ⊆ R[0]: the chase is infinite, but
        // the Johnson–Klug bound makes the negative answer definitive.
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        let lhs = parse_cq("Q() :- R(x, y)", &mut sig, &mut vf).unwrap();
        let rhs = parse_cq("Q() :- T(u)", &mut sig, &mut vf).unwrap();
        sig.add_relation("T", 1).unwrap();
        let r = sig.require("R").unwrap();
        let s = sig.add_relation("S", 2).unwrap();
        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));
        constraints.push_tgd(inclusion_dependency(&sig, s, &[1], r, &[0]));
        let problem = ContainmentProblem {
            signature: sig,
            lhs,
            rhs,
            constraints,
        };
        let out = decide_bounded_depth(
            &problem,
            &mut vf,
            ChaseConfig::with_budget(Budget::generous()),
        );
        assert_eq!(out.verdict, Verdict::DoesNotHold);
        assert!(out.complete);
    }

    #[test]
    fn bounded_depth_finds_positive_answers_through_cycles() {
        // R[1] ⊆ S[0] and S[1] ⊆ R[0]; asking for ∃ S is entailed by ∃ R.
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        let lhs = parse_cq("Q() :- R(x, y)", &mut sig, &mut vf).unwrap();
        let rhs = parse_cq("Q() :- S(u, v)", &mut sig, &mut vf).unwrap();
        let r = sig.require("R").unwrap();
        let s = sig.require("S").unwrap();
        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));
        constraints.push_tgd(inclusion_dependency(&sig, s, &[1], r, &[0]));
        let problem = ContainmentProblem {
            signature: sig,
            lhs,
            rhs,
            constraints,
        };
        let out = decide_bounded_depth(
            &problem,
            &mut vf,
            ChaseConfig::with_budget(Budget::generous()),
        );
        assert_eq!(out.verdict, Verdict::Holds);
    }

    #[test]
    fn tiny_budget_yields_unknown_not_wrong_answer() {
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        let lhs = parse_cq("Q() :- R(x, y)", &mut sig, &mut vf).unwrap();
        // A long chain requirement that needs several chase steps.
        let rhs = parse_cq(
            "Q() :- R(a, b), S(b, c), R(c, d), S(d, e)",
            &mut sig,
            &mut vf,
        )
        .unwrap();
        let r = sig.require("R").unwrap();
        let s = sig.require("S").unwrap();
        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));
        constraints.push_tgd(inclusion_dependency(&sig, s, &[1], r, &[0]));
        let problem = ContainmentProblem {
            signature: sig,
            lhs,
            rhs,
            constraints,
        };
        // Deny the budget needed to reach the completeness bound: the
        // procedure must answer Unknown rather than a wrong DoesNotHold
        // (the chain actually exists in the infinite chase).
        let budget = Budget {
            max_facts: 3,
            max_rounds: 1,
            max_depth: 1,
            max_nulls: 3,
        };
        let out = decide_bounded_depth(&problem, &mut vf, ChaseConfig::with_budget(budget));
        assert_eq!(out.verdict, Verdict::Unknown);

        // And with a real budget it is found to hold.
        let out = decide_bounded_depth(
            &problem,
            &mut vf,
            ChaseConfig::with_budget(Budget::generous()),
        );
        assert_eq!(out.verdict, Verdict::Holds);
    }
}
