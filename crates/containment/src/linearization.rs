//! Linearization of bounded-width IDs with accessibility axioms
//! (Proposition 5.5 / Appendix E.3.5 and E.5.2).
//!
//! The AMonDet containment problem for a schema whose constraints are IDs
//! involves the IDs `Σ`, their primed copies `Σ'`, and accessibility axioms
//! `∆` (truncated accessibility + transfer) which are *not* IDs. The
//! linearization construction simulates the chase of `Σ ∪ ∆` with a set
//! `Σ^Lin` of *linear* dependencies of bounded semi-width over an expanded
//! signature: for every relation `R` and every subset `P` of its positions
//! of size at most the ID width `w`, a relation `R_P` represents "an
//! `R`-fact whose positions in `P` hold accessible values". The rules are:
//!
//! * **(Lift)** — for every ID `R(u) → ∃z S(z, u)` and every `P`, an ID from
//!   `R_P` to `S_P'''` where `P'''` is the image of the positions
//!   *transferred by* `P` (closed under the derived truncated accessibility
//!   axioms of [`crate::saturation`]) through the ID's exported positions;
//! * **(Transfer)** — `R_P(x) → R'(x)` whenever the positions transferred by
//!   `P` cover the input positions of some access method on `R` without a
//!   result bound;
//! * **(Result-bounded Fact Transfer)** — `R_P(x, y) → ∃z R'(x, z)` for each
//!   result-bounded method on `R` (`x` its input positions), reflecting that
//!   result-bounded methods are only useful as existence checks for ID
//!   constraints (Theorem 4.2 / Appendix E.5.2);
//! * the primed copies `Σ'` of the original IDs.
//!
//! The initial instance `I0^Lin` is obtained from the canonical database of
//! the left-hand query by closing its accessible values under the derived
//! axioms and annotating each fact with every accessible subset `P` of size
//! at most `w`.

#[cfg(test)]
use rbqa_chase::Budget;
use rbqa_common::{Instance, RelationId, Signature, Value, ValueFactory};
use rbqa_logic::constraints::ConstraintSet;
use rbqa_logic::{Atom, ConjunctiveQuery, Term, Tgd};
use rustc_hash::{FxHashMap, FxHashSet};
use std::collections::BTreeSet;

use crate::bounds::completeness_depth_for;
use crate::problem::ContainmentOutcome;
use crate::saturation::{
    saturate_truncated_axioms, subsets_up_to, MethodSignature, TruncatedAxiom,
};

/// The linearized signature, rules and derived axioms for one schema.
#[derive(Debug, Clone)]
pub struct LinearizedSchema {
    /// The original signature `S`.
    pub base_signature: Signature,
    /// The expanded signature: `S` plus the `R_P` relations and the primed
    /// relations `R'`.
    pub lin_signature: Signature,
    /// The ID width bound `w` used for the construction.
    pub width: usize,
    /// Derived truncated accessibility axioms of breadth at most `w`.
    pub axioms: Vec<TruncatedAxiom>,
    /// The linear rules `Σ^Lin` (Lift, Transfer, Result-bounded Fact
    /// Transfer) together with the primed copies of the original IDs.
    pub rules: ConstraintSet,
    rp: FxHashMap<(RelationId, Vec<usize>), RelationId>,
    primed: FxHashMap<RelationId, RelationId>,
}

/// Renames every atom of `tgd` through `map` (identity on unmapped
/// relations), keeping terms unchanged.
fn remap_tgd(tgd: &Tgd, map: &FxHashMap<RelationId, RelationId>) -> Tgd {
    let remap_atoms = |atoms: &[Atom]| -> Vec<Atom> {
        atoms
            .iter()
            .map(|a| {
                let rel = *map.get(&a.relation()).unwrap_or(&a.relation());
                Atom::new(rel, a.args().to_vec())
            })
            .collect()
    };
    Tgd::new(
        tgd.vars().clone(),
        remap_atoms(tgd.body()),
        remap_atoms(tgd.head()),
    )
}

impl LinearizedSchema {
    /// Builds the linearization for IDs `ids` over `sig` with access methods
    /// `methods`, using width bound `width` (typically the maximal width of
    /// the IDs; it is raised to at least 1).
    pub fn build(
        sig: &Signature,
        ids: &[Tgd],
        methods: &[MethodSignature],
        width: usize,
    ) -> LinearizedSchema {
        // The construction needs annotated relations for every exported-
        // position set of every ID, so the width bound is at least the
        // maximal ID width (and at least 1).
        let id_width = ids.iter().map(|t| t.width()).max().unwrap_or(0);
        let width = width.max(id_width).max(1);
        let axioms = saturate_truncated_axioms(sig, ids, methods, width);

        // One pass over the axioms instead of a rescan per (relation,
        // subset) in the rule loops below.
        let mut transferred_of: FxHashMap<(RelationId, Vec<usize>), BTreeSet<usize>> =
            FxHashMap::default();
        for ax in &axioms {
            transferred_of
                .entry((ax.relation, ax.premises.iter().copied().collect()))
                .or_default()
                .insert(ax.conclusion);
        }
        let transferred_of = |rid: RelationId, subset: &BTreeSet<usize>| -> BTreeSet<usize> {
            let key: Vec<usize> = subset.iter().copied().collect();
            let mut out = subset.clone();
            if let Some(extra) = transferred_of.get(&(rid, key)) {
                out.extend(extra.iter().copied());
            }
            out
        };

        // Expanded signature.
        let mut lin_signature = sig.clone();
        let mut rp: FxHashMap<(RelationId, Vec<usize>), RelationId> = FxHashMap::default();
        let mut primed: FxHashMap<RelationId, RelationId> = FxHashMap::default();
        for (rid, rel) in sig.iter() {
            for subset in subsets_up_to(rel.arity(), width) {
                let key: Vec<usize> = subset.iter().copied().collect();
                let suffix: Vec<String> = key.iter().map(|p| p.to_string()).collect();
                let name = format!("{}__acc_{}", rel.name(), suffix.join("_"));
                let new_rel = lin_signature
                    .add_relation(&name, rel.arity())
                    .expect("fresh relation name");
                rp.insert((rid, key), new_rel);
            }
            let primed_rel = lin_signature
                .add_relation(&format!("{}__prime", rel.name()), rel.arity())
                .expect("fresh relation name");
            primed.insert(rid, primed_rel);
        }

        let mut rules = ConstraintSet::new();

        // Primed copies of the original IDs.
        for id in ids {
            rules.push_tgd(remap_tgd(id, &primed));
        }

        // (Transfer) and (Result-bounded Fact Transfer).
        for (rid, rel) in sig.iter() {
            let arity = rel.arity();
            for subset in subsets_up_to(arity, width) {
                let key: Vec<usize> = subset.iter().copied().collect();
                let rp_rel = rp[&(rid, key)];
                let transferred = transferred_of(rid, &subset);

                // (Transfer): some non-result-bounded method's inputs are
                // covered by the transferred positions.
                let has_full_access = methods.iter().any(|m| {
                    m.relation == rid
                        && !m.result_bounded
                        && m.input_positions.iter().all(|i| transferred.contains(i))
                });
                if has_full_access {
                    let mut b = rbqa_logic::constraints::TgdBuilder::new();
                    let vars: Vec<_> = (0..arity).map(|i| b.var(&format!("x{i}"))).collect();
                    b.body_atom(rp_rel, vars.iter().map(|v| Term::Var(*v)).collect());
                    b.head_atom(primed[&rid], vars.iter().map(|v| Term::Var(*v)).collect());
                    rules.push_tgd(b.build());
                }

                // (Result-bounded Fact Transfer): for each result-bounded
                // method on R, R_P(x, y) → ∃z R'(x, z).
                for m in methods
                    .iter()
                    .filter(|m| m.relation == rid && m.result_bounded)
                {
                    let mut b = rbqa_logic::constraints::TgdBuilder::new();
                    let body_vars: Vec<_> = (0..arity).map(|i| b.var(&format!("x{i}"))).collect();
                    let head_terms: Vec<Term> = (0..arity)
                        .map(|i| {
                            if m.input_positions.contains(&i) {
                                Term::Var(body_vars[i])
                            } else {
                                Term::Var(b.var(&format!("z{i}")))
                            }
                        })
                        .collect();
                    b.body_atom(rp_rel, body_vars.iter().map(|v| Term::Var(*v)).collect());
                    b.head_atom(primed[&rid], head_terms);
                    rules.push_tgd(b.build());
                }
            }
        }

        // (Lift): IDs propagated through the annotated relations.
        for id in ids {
            let map = id
                .id_position_map()
                .expect("linearization input must consist of IDs");
            let body_rel = id.body()[0].relation();
            let head_rel = id.head()[0].relation();
            let body_arity = sig.arity(body_rel);
            for subset in subsets_up_to(body_arity, width) {
                let key: Vec<usize> = subset.iter().copied().collect();
                let body_rp = rp[&(body_rel, key)];
                let transferred = transferred_of(body_rel, &subset);
                // Exported body positions whose accessibility transfers.
                let head_positions: BTreeSet<usize> = map
                    .iter()
                    .filter(|(b, _)| transferred.contains(b))
                    .map(|(_, h)| *h)
                    .collect();
                let head_key: Vec<usize> = head_positions.iter().copied().collect();
                let head_rp = rp[&(head_rel, head_key)];
                let mut relmap = FxHashMap::default();
                relmap.insert(body_rel, body_rp);
                relmap.insert(head_rel, head_rp);
                rules.push_tgd(remap_tgd(id, &relmap));
            }
        }

        LinearizedSchema {
            base_signature: sig.clone(),
            lin_signature,
            width,
            axioms,
            rules,
            rp,
            primed,
        }
    }

    /// The annotated relation `R_P`, if `R` belongs to the base signature
    /// and `|P| ≤ w`.
    pub fn rp_relation(
        &self,
        relation: RelationId,
        positions: &BTreeSet<usize>,
    ) -> Option<RelationId> {
        let key: Vec<usize> = positions.iter().copied().collect();
        self.rp.get(&(relation, key)).copied()
    }

    /// The primed copy `R'` of a base relation.
    pub fn primed_relation(&self, relation: RelationId) -> Option<RelationId> {
        self.primed.get(&relation).copied()
    }

    /// Rewrites a query over the base signature into the same query over the
    /// primed relations.
    pub fn primed_query(&self, query: &ConjunctiveQuery) -> ConjunctiveQuery {
        let atoms: Vec<Atom> = query
            .atoms()
            .iter()
            .map(|a| {
                let rel = self
                    .primed_relation(a.relation())
                    .expect("query must be over the base signature");
                Atom::new(rel, a.args().to_vec())
            })
            .collect();
        ConjunctiveQuery::new(query.vars().clone(), query.free_vars().to_vec(), atoms)
    }

    /// Computes the accessible-value closure of `instance` under the derived
    /// truncated accessibility axioms, starting from `seed`.
    pub fn accessible_closure(
        &self,
        instance: &Instance,
        seed: &FxHashSet<Value>,
    ) -> FxHashSet<Value> {
        let mut accessible = seed.clone();
        // Group the axioms per relation once; the fixpoint then scans each
        // tuple against its own relation's axioms only.
        let mut by_relation: FxHashMap<RelationId, Vec<&TruncatedAxiom>> = FxHashMap::default();
        for ax in &self.axioms {
            by_relation.entry(ax.relation).or_default().push(ax);
        }
        loop {
            let mut changed = false;
            for (rid, _) in self.base_signature.iter() {
                let Some(axioms) = by_relation.get(&rid) else {
                    continue;
                };
                for tuple in instance.tuples(rid) {
                    for ax in axioms {
                        if ax.premises.iter().all(|&p| accessible.contains(&tuple[p]))
                            && accessible.insert(tuple[ax.conclusion])
                        {
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return accessible;
            }
        }
    }

    /// Builds the linearized initial instance `I0^Lin` from a base-signature
    /// instance (typically the canonical database of the left-hand query)
    /// and a set of initially accessible values (typically the constants of
    /// the query).
    pub fn initial_instance(&self, base: &Instance, seed: &FxHashSet<Value>) -> Instance {
        let accessible = self.accessible_closure(base, seed);
        let mut out = Instance::new(self.lin_signature.clone());
        for (rid, rel) in self.base_signature.iter() {
            let arity = rel.arity();
            // One subset lattice per relation, not per tuple.
            let subsets = subsets_up_to(arity, self.width);
            for tuple in base.tuples(rid) {
                // Keep the original fact (harmless; the rules only read the
                // annotated and primed relations).
                out.insert(rid, tuple.to_vec()).expect("same arity");
                let acc_positions: BTreeSet<usize> = (0..arity)
                    .filter(|&i| accessible.contains(&tuple[i]))
                    .collect();
                for subset in &subsets {
                    if subset.is_subset(&acc_positions) {
                        let rp_rel = self.rp_relation(rid, subset).expect("subset within width");
                        out.insert(rp_rel, tuple.to_vec()).expect("same arity");
                    }
                }
                if acc_positions.len() == arity {
                    let primed = self.primed_relation(rid).expect("base relation");
                    out.insert(primed, tuple.to_vec()).expect("same arity");
                }
            }
        }
        out
    }

    /// Decides the AMonDet-style containment `Q ⊆ Q'` through the
    /// linearization: chase `I0^Lin` with `Σ^Lin` (depth-bounded by the
    /// semi-width completeness bound) and check the primed right-hand query.
    ///
    /// `lhs` and `rhs` must be queries over the base signature; for the
    /// AMonDet containment of the paper both are the same query `Q` (the
    /// right-hand side is automatically primed). When `rhs` shares its
    /// variable pool with `lhs` (the usual case where both *are* `Q`), the
    /// free variables of `rhs` are required to match the values frozen for
    /// them in the canonical database of `lhs` — the non-Boolean reading of
    /// answerability (every answer tuple must be recovered).
    pub fn decide(
        &self,
        lhs: &ConjunctiveQuery,
        rhs: &ConjunctiveQuery,
        values: &mut ValueFactory,
        config: rbqa_chase::ChaseConfig,
    ) -> ContainmentOutcome {
        let canon = lhs.canonical_database(&self.base_signature, values);
        let seed: FxHashSet<Value> = lhs.constants().into_iter().collect();
        let start = self.initial_instance(&canon.instance, &seed);
        let rhs_primed = self.primed_query(rhs);
        let rhs_seed: rbqa_logic::homomorphism::Homomorphism = rhs
            .free_vars()
            .iter()
            .filter_map(|v| canon.assignment.get(v).map(|val| (*v, *val)))
            .collect();
        let bound = completeness_depth_for(
            self.rules.tgds(),
            rhs_primed.size(),
            self.lin_signature.max_arity(),
        );
        let depth = bound.min(config.budget.max_depth);
        let config = rbqa_chase::ChaseConfig {
            budget: config.budget.with_max_depth(depth),
            ..config
        };
        crate::generic::decide_from_instance_seeded(
            &start,
            &rhs_primed,
            &rhs_seed,
            &self.rules,
            values,
            config,
            Some(bound),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Verdict;
    use rbqa_logic::constraints::tgd::inclusion_dependency;
    use rbqa_logic::parser::parse_cq;

    /// The university schema of Example 1.1 with the referential constraint
    /// of Example 1.2: Udirectory(id, addr, phone) ⊆ Prof(id, _, _) is *not*
    /// what the paper states — the constraint goes from Prof into
    /// Udirectory. Methods: pr on Prof with input id (no bound), ud on
    /// Udirectory input-free (result-bounded in Example 1.3).
    fn university() -> (Signature, RelationId, RelationId, Tgd) {
        let mut sig = Signature::new();
        let prof = sig.add_relation("Prof", 3).unwrap();
        let udir = sig.add_relation("Udirectory", 3).unwrap();
        let referential = inclusion_dependency(&sig, prof, &[0], udir, &[0]);
        (sig, prof, udir, referential)
    }

    #[test]
    fn build_creates_annotated_and_primed_relations() {
        let (sig, prof, udir, referential) = university();
        let methods = vec![
            MethodSignature::new(prof, &[0], false),
            MethodSignature::new(udir, &[], true),
        ];
        let lin = LinearizedSchema::build(&sig, &[referential], &methods, 1);
        // 2 original + per relation: 1 + 3 annotated (|P| ≤ 1) + 1 primed.
        assert_eq!(lin.lin_signature.len(), 2 + 2 * 5);
        assert!(lin.rp_relation(prof, &BTreeSet::new()).is_some());
        assert!(lin.rp_relation(prof, &BTreeSet::from([2])).is_some());
        assert!(lin.rp_relation(prof, &BTreeSet::from([0, 1])).is_none());
        assert!(lin.primed_relation(udir).is_some());
        // Rules: primed ID + transfers + lifts are all linear.
        assert!(lin.rules.tgds().iter().all(|t| t.is_linear()));
        assert!(!lin.rules.tgds().is_empty());
    }

    #[test]
    fn q2_existence_check_is_answerable_example_1_4() {
        // Example 1.4: Q2 = ∃ Udirectory(i, a, p), ud result-bounded and
        // input-free. The AMonDet containment holds: the linearized chase
        // transfers the Udirectory fact to Udirectory' via the
        // result-bounded fact transfer rule.
        let (mut sig, prof, udir, referential) = university();
        let mut vf = ValueFactory::new();
        let q2 = parse_cq("Q() :- Udirectory(i, a, p)", &mut sig, &mut vf).unwrap();
        let methods = vec![
            MethodSignature::new(prof, &[0], false),
            MethodSignature::new(udir, &[], true),
        ];
        let lin = LinearizedSchema::build(&sig, &[referential], &methods, 1);
        let out = lin.decide(
            &q2,
            &q2,
            &mut vf,
            rbqa_chase::ChaseConfig::with_budget(Budget::generous()),
        );
        assert_eq!(out.verdict, Verdict::Holds);
    }

    #[test]
    fn q1_salary_query_not_answerable_with_result_bound_example_1_3() {
        // Example 1.3: Q1(n) = ∃i Prof(i, n, 10000) with ud result-bounded:
        // the plan of Example 1.2 no longer works and the query is not
        // monotone answerable, hence the AMonDet containment fails.
        let (mut sig, prof, udir, _referential) = university();
        let mut vf = ValueFactory::new();
        let q1 = parse_cq("Q() :- Prof(i, n, '10000')", &mut sig, &mut vf).unwrap();
        // The referential constraint of the paper: every Prof id appears in
        // Udirectory.
        let referential = inclusion_dependency(&sig, prof, &[0], udir, &[0]);
        let methods = vec![
            MethodSignature::new(prof, &[0], false),
            MethodSignature::new(udir, &[], true),
        ];
        let lin = LinearizedSchema::build(&sig, &[referential], &methods, 1);
        let out = lin.decide(
            &q1,
            &q1,
            &mut vf,
            rbqa_chase::ChaseConfig::with_budget(Budget::generous()),
        );
        assert_eq!(out.verdict, Verdict::DoesNotHold);
        assert!(out.complete);
    }

    #[test]
    fn q1_salary_query_answerable_without_result_bound_example_1_2() {
        // Example 1.2: with ud *not* result-bounded, Q1 is monotone
        // answerable (access ud, then pr with each id, filter on salary).
        let (mut sig, prof, udir, _referential) = university();
        let mut vf = ValueFactory::new();
        let q1 = parse_cq("Q() :- Prof(i, n, '10000')", &mut sig, &mut vf).unwrap();
        let referential = inclusion_dependency(&sig, prof, &[0], udir, &[0]);
        let methods = vec![
            MethodSignature::new(prof, &[0], false),
            MethodSignature::new(udir, &[], false),
        ];
        let lin = LinearizedSchema::build(&sig, &[referential], &methods, 1);
        let out = lin.decide(
            &q1,
            &q1,
            &mut vf,
            rbqa_chase::ChaseConfig::with_budget(Budget::generous()),
        );
        assert_eq!(out.verdict, Verdict::Holds);
    }

    #[test]
    fn accessible_closure_uses_derived_axioms() {
        let (sig, prof, udir, referential) = university();
        let methods = vec![
            MethodSignature::new(prof, &[0], false),
            MethodSignature::new(udir, &[], false),
        ];
        let lin = LinearizedSchema::build(&sig, &[referential], &methods, 1);
        let mut vf = ValueFactory::new();
        let id = vf.constant("12345");
        let name = vf.constant("ada");
        let salary = vf.constant("10000");
        let mut inst = Instance::new(sig.clone());
        inst.insert(prof, vec![id, name, salary]).unwrap();
        // The input-free method on Udirectory yields nothing here (no
        // Udirectory fact), but the Prof method keyed on id makes name and
        // salary accessible once the id is.
        let closure = lin.accessible_closure(&inst, &FxHashSet::from_iter([id]));
        assert!(closure.contains(&name));
        assert!(closure.contains(&salary));
        // Even with an empty seed, the derived axioms know that a Prof id is
        // accessible: the referential constraint puts it into Udirectory,
        // which the input-free unbounded ud method returns in full.
        let empty_seed = lin.accessible_closure(&inst, &FxHashSet::default());
        assert!(empty_seed.contains(&id));
        assert!(empty_seed.contains(&name));
    }

    #[test]
    fn initial_instance_annotates_accessible_positions() {
        let (sig, prof, udir, referential) = university();
        let methods = vec![
            MethodSignature::new(prof, &[0], false),
            MethodSignature::new(udir, &[], true),
        ];
        let lin = LinearizedSchema::build(&sig, &[referential], &methods, 1);
        let mut vf = ValueFactory::new();
        let id = vf.constant("12345");
        let name = vf.constant("ada");
        let salary = vf.constant("10000");
        let mut inst = Instance::new(sig.clone());
        inst.insert(prof, vec![id, name, salary]).unwrap();
        let start = lin.initial_instance(&inst, &FxHashSet::from_iter([id]));
        // With the id accessible and the pr method, every value of the Prof
        // fact is accessible: the fully-annotated and primed facts appear.
        let all_prof = lin.primed_relation(prof).unwrap();
        assert_eq!(start.relation_len(all_prof), 1);
        let acc0 = lin.rp_relation(prof, &BTreeSet::from([0])).unwrap();
        assert_eq!(start.relation_len(acc0), 1);
        // The empty annotation is always present.
        let acc_empty = lin.rp_relation(prof, &BTreeSet::new()).unwrap();
        assert_eq!(start.relation_len(acc_empty), 1);
    }
}
