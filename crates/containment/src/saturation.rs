//! Truncated-accessibility-axiom saturation (Proposition E.1).
//!
//! A *truncated accessibility axiom* has the form
//! `(⋀_{i ∈ P} accessible(x_i)) ∧ R(x) → accessible(x_j)`: when the values
//! at the positions `P` of an `R`-fact are accessible, performing an access
//! makes the value at position `j` accessible too. The original axioms come
//! from access methods without result bounds; chasing them together with the
//! schema's IDs implies further *derived* axioms. Proposition E.1 shows that
//! all derived axioms of breadth at most `w` (the ID width) can be computed
//! by a polynomial saturation procedure with three rules — (ID),
//! (Transitivity) and (Access) — which this module implements. The derived
//! axioms feed the linearization construction
//! ([`crate::linearization`]).

use rbqa_common::{RelationId, Signature};
use rbqa_logic::Tgd;
use rustc_hash::FxHashMap;
use std::collections::BTreeSet;

/// Abstract description of an access method, decoupled from the plan layer:
/// the relation it accesses, its input positions, and whether it carries a
/// result bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSignature {
    /// The relation accessed by the method.
    pub relation: RelationId,
    /// The 0-based input positions of the method.
    pub input_positions: BTreeSet<usize>,
    /// Whether the method has a result bound. Result-bounded methods do not
    /// participate in the (Access) saturation rule (their outputs are not
    /// guaranteed to be retrievable in full); they are handled separately by
    /// the linearization's "result-bounded fact transfer" rule.
    pub result_bounded: bool,
}

impl MethodSignature {
    /// Convenience constructor.
    pub fn new(relation: RelationId, input_positions: &[usize], result_bounded: bool) -> Self {
        MethodSignature {
            relation,
            input_positions: input_positions.iter().copied().collect(),
            result_bounded,
        }
    }
}

/// A truncated accessibility axiom `(⋀_{i∈premises} accessible(x_i)) ∧ R(x)
/// → accessible(x_conclusion)`, represented as the triple `(R, P, j)` of the
/// appendix.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TruncatedAxiom {
    /// The relation `R`.
    pub relation: RelationId,
    /// The premise positions `P` (breadth = `|P|`).
    pub premises: BTreeSet<usize>,
    /// The concluded position `j`.
    pub conclusion: usize,
}

impl TruncatedAxiom {
    /// Creates an axiom.
    pub fn new(relation: RelationId, premises: BTreeSet<usize>, conclusion: usize) -> Self {
        TruncatedAxiom {
            relation,
            premises,
            conclusion,
        }
    }

    /// Whether the axiom is trivial (`j ∈ P`).
    pub fn is_trivial(&self) -> bool {
        self.premises.contains(&self.conclusion)
    }
}

/// All subsets of `{0, ..., positions-1}` of size at most `k`, in a
/// deterministic order (by size, then lexicographically).
pub fn subsets_up_to(positions: usize, k: usize) -> Vec<BTreeSet<usize>> {
    let mut out: Vec<BTreeSet<usize>> = vec![BTreeSet::new()];
    for size in 1..=k.min(positions) {
        let prev: Vec<BTreeSet<usize>> = out
            .iter()
            .filter(|s| s.len() == size - 1)
            .cloned()
            .collect();
        for s in prev {
            let start = s.iter().max().map_or(0, |m| m + 1);
            for p in start..positions {
                let mut t = s.clone();
                t.insert(p);
                out.push(t);
            }
        }
    }
    out
}

/// Runs the saturation algorithm of Proposition E.1: computes every derived
/// truncated accessibility axiom of breadth at most `breadth` implied by the
/// IDs `ids` and the access methods `methods` (result-bounded methods are
/// ignored by the (Access) rule).
///
/// The output contains the trivial axioms `(R, P, j)` with `j ∈ P`, matching
/// the initialisation of the algorithm in the appendix.
pub fn saturate_truncated_axioms(
    sig: &Signature,
    ids: &[Tgd],
    methods: &[MethodSignature],
    breadth: usize,
) -> Vec<TruncatedAxiom> {
    let mut obs = rbqa_obs::phase_span("saturation", rbqa_obs::Phase::Saturation);

    // The saturation state is a map from `(relation, premise set)` to the
    // set of transferred positions. Premise and conclusion sets are packed
    // into `u32` bitmasks (arities are tiny), so the fixpoint manipulates
    // machine words instead of allocated `BTreeSet`s — the snapshot-free
    // formulation below is what keeps `LinearizedSchema::build` off the
    // Decide hot path.
    let mask_of = |set: &BTreeSet<usize>| -> u32 { set.iter().fold(0u32, |m, &p| m | (1 << p)) };

    // Dense premise-set table per relation: `premise_sets[rel]` lists every
    // subset of the relation's positions of size at most `breadth` (as
    // masks), and `reachable[rel][k]` is the transferred-position mask of
    // `premise_sets[rel][k]`, initialised to the trivial axioms (P itself).
    let relation_count = sig.len();
    let mut premise_sets: Vec<Vec<u32>> = Vec::with_capacity(relation_count);
    let mut reachable: Vec<Vec<u32>> = Vec::with_capacity(relation_count);
    for (_, rel) in sig.iter() {
        // `Signature::add_relation` caps arities at `MAX_ARITY` (= 32), so
        // every position set fits a u32 mask; this guards the invariant.
        debug_assert!(
            rel.arity() <= rbqa_common::MAX_ARITY,
            "saturation packs positions into u32"
        );
        let masks: Vec<u32> = subsets_up_to(rel.arity(), breadth)
            .iter()
            .map(&mask_of)
            .collect();
        reachable.push(masks.clone());
        premise_sets.push(masks);
    }
    // O(1) slot lookup for the (ID) rule, built once outside the fixpoint.
    let slot_of: FxHashMap<(usize, u32), usize> = premise_sets
        .iter()
        .enumerate()
        .flat_map(|(rel, masks)| masks.iter().enumerate().map(move |(k, &m)| ((rel, m), k)))
        .collect();
    let index_of = |rel: usize, mask: u32| -> usize { slot_of[&(rel, mask)] };

    // Pre-compute the ID position maps once: (body relation, head relation,
    // exported (body position, head position) pairs) plus the head-image
    // mask and the head->body translation table.
    struct IdMap {
        body_rel: usize,
        head_rel: usize,
        image: u32,
        back: Vec<usize>, // indexed by head position (valid where `image` set)
    }
    let id_maps: Vec<IdMap> = ids
        .iter()
        .filter_map(|tgd| {
            tgd.id_position_map().map(|m| {
                let head_arity = sig.arity(tgd.head()[0].relation());
                let mut image = 0u32;
                let mut back = vec![usize::MAX; head_arity];
                // Mirror the reference formulation: the first body position
                // mapping to a head position wins.
                for &(b, h) in &m {
                    if back[h] == usize::MAX {
                        back[h] = b;
                        image |= 1 << h;
                    }
                }
                IdMap {
                    body_rel: tgd.body()[0].relation().index(),
                    head_rel: tgd.head()[0].relation().index(),
                    image,
                    back,
                }
            })
        })
        .collect();
    let back_mask = |id: &IdMap, mask: u32| -> u32 {
        let mut out = 0u32;
        for h in 0..id.back.len() {
            if mask & (1 << h) != 0 {
                out |= 1 << id.back[h];
            }
        }
        out
    };

    let mut changed = true;
    let mut iters = 0u64;
    while changed {
        changed = false;
        iters += 1;

        // (Access): if all input positions of a (non-result-bounded) method
        // on R are transferred by P, then every position of R is.
        for m in methods.iter().filter(|m| !m.result_bounded) {
            let rel = m.relation.index();
            let arity = sig.arity(m.relation);
            // All-positions mask; written shift-free so arity = 32 (the
            // `MAX_ARITY` cap) does not overflow the u32 shift.
            let full: u32 = if arity == 0 {
                0
            } else {
                u32::MAX >> (32 - arity)
            };
            let inputs = m
                .input_positions
                .iter()
                .fold(0u32, |acc, &i| acc | (1 << i));
            for t in reachable[rel].iter_mut() {
                if *t & inputs == inputs && *t != full {
                    *t = full;
                    changed = true;
                }
            }
        }

        // (ID): an axiom on the head relation of an ID, whose positions are
        // all exported, pulls back to the body relation.
        for id in &id_maps {
            for k in 0..premise_sets[id.head_rel].len() {
                let premises = premise_sets[id.head_rel][k];
                if premises & !id.image != 0 {
                    continue;
                }
                let conclusions = reachable[id.head_rel][k] & id.image;
                let body_premises = back_mask(id, premises);
                let body_conclusions = back_mask(id, conclusions);
                let target = index_of(id.body_rel, body_premises);
                let t = &mut reachable[id.body_rel][target];
                if *t | body_conclusions != *t {
                    *t |= body_conclusions;
                    changed = true;
                }
            }
        }

        // (Transitivity): positions transferred by P can serve as premises
        // for further transfers from P: fold in the reachable set of every
        // premise set covered by P's current closure.
        for rel in 0..relation_count {
            for k in 0..premise_sets[rel].len() {
                let closure = premise_sets[rel][k] | reachable[rel][k];
                let mut grown = reachable[rel][k];
                for k2 in 0..premise_sets[rel].len() {
                    if premise_sets[rel][k2] & !closure == 0 {
                        grown |= reachable[rel][k2];
                    }
                }
                if grown != reachable[rel][k] {
                    reachable[rel][k] = grown;
                    changed = true;
                }
            }
        }
    }

    // Unpack the masks into the public axiom representation.
    let mut out: Vec<TruncatedAxiom> = Vec::new();
    for (rid, rel) in sig.iter() {
        let arity = rel.arity();
        for (k, &premises) in premise_sets[rid.index()].iter().enumerate() {
            let premise_set: BTreeSet<usize> =
                (0..arity).filter(|&p| premises & (1 << p) != 0).collect();
            let t = reachable[rid.index()][k];
            for j in (0..arity).filter(|&j| t & (1 << j) != 0) {
                out.push(TruncatedAxiom::new(rid, premise_set.clone(), j));
            }
        }
    }
    out.sort();
    rbqa_obs::counters::add_saturation_iters(iters);
    obs.num("iters", iters);
    obs.num("axioms", out.len() as u64);
    out
}

/// The positions of `relation` *transferred by* the premise set `premises`
/// under `axioms`: all `j` with `(relation, premises, j)` derived. Always a
/// superset of `premises` (by the trivial axioms).
pub fn transferred_positions(
    axioms: &[TruncatedAxiom],
    relation: RelationId,
    premises: &BTreeSet<usize>,
) -> BTreeSet<usize> {
    let mut out: BTreeSet<usize> = premises.clone();
    for ax in axioms {
        if ax.relation == relation && &ax.premises == premises {
            out.insert(ax.conclusion);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_logic::constraints::tgd::inclusion_dependency;

    fn setup() -> (Signature, RelationId, RelationId) {
        let mut sig = Signature::new();
        let prof = sig.add_relation("Prof", 3).unwrap();
        let udir = sig.add_relation("Udirectory", 3).unwrap();
        (sig, prof, udir)
    }

    #[test]
    fn subsets_enumeration() {
        let subs = subsets_up_to(3, 2);
        // {}, {0}, {1}, {2}, {0,1}, {0,2}, {1,2}
        assert_eq!(subs.len(), 7);
        assert!(subs.contains(&BTreeSet::new()));
        assert!(subs.contains(&BTreeSet::from([0, 2])));
        assert!(!subs.contains(&BTreeSet::from([0, 1, 2])));
        assert_eq!(subsets_up_to(2, 5).len(), 4);
        assert_eq!(subsets_up_to(0, 3), vec![BTreeSet::new()]);
    }

    #[test]
    fn access_rule_derives_full_output_accessibility() {
        // Method pr on Prof with input {0} and no result bound: from an
        // accessible id every position of Prof becomes accessible.
        let (sig, prof, _) = setup();
        let methods = vec![MethodSignature::new(prof, &[0], false)];
        let axioms = saturate_truncated_axioms(&sig, &[], &methods, 1);
        for j in 0..3 {
            assert!(axioms.contains(&TruncatedAxiom::new(prof, BTreeSet::from([0]), j)));
        }
        // Nothing is derivable from position 1 alone (no method keyed on it).
        assert!(!axioms.contains(&TruncatedAxiom::new(prof, BTreeSet::from([1]), 0)));
    }

    #[test]
    fn input_free_method_makes_everything_accessible() {
        let (sig, _prof, udir) = setup();
        let methods = vec![MethodSignature::new(udir, &[], false)];
        let axioms = saturate_truncated_axioms(&sig, &[], &methods, 1);
        for j in 0..3 {
            assert!(axioms.contains(&TruncatedAxiom::new(udir, BTreeSet::new(), j)));
        }
    }

    #[test]
    fn result_bounded_methods_do_not_fire_access_rule() {
        let (sig, prof, _) = setup();
        let methods = vec![MethodSignature::new(prof, &[0], true)];
        let axioms = saturate_truncated_axioms(&sig, &[], &methods, 1);
        assert!(!axioms.contains(&TruncatedAxiom::new(prof, BTreeSet::from([0]), 1)));
    }

    #[test]
    fn id_rule_pulls_axioms_back_through_ids() {
        // Udirectory(i, a, p) -> Prof(i, n, s), exporting position 0 to 0.
        // The (ID) rule pulls back axioms on Prof whose positions are all
        // exported; (Prof, {0}, 1) concludes a non-exported position, so it
        // does not pull back, while the trivial (Prof, {0}, 0) does.
        let (sig, prof, udir) = setup();
        let id = inclusion_dependency(&sig, udir, &[0], prof, &[0]);
        let methods = vec![MethodSignature::new(prof, &[0], false)];
        let axioms = saturate_truncated_axioms(&sig, &[id], &methods, 1);
        assert!(axioms.contains(&TruncatedAxiom::new(udir, BTreeSet::from([0]), 0)));
        assert!(!axioms.contains(&TruncatedAxiom::new(udir, BTreeSet::from([0]), 1)));
    }

    #[test]
    fn id_rule_with_wider_export() {
        // R(x, y) ⊆ S(x, y) (width 2) plus an input-free method on S: from
        // an empty premise set every position of S is accessible, and the
        // (ID) rule pulls these derived axioms back to R.
        let mut sig = Signature::new();
        let r = sig.add_relation("R", 2).unwrap();
        let s = sig.add_relation("S", 2).unwrap();
        let id = inclusion_dependency(&sig, r, &[0, 1], s, &[0, 1]);
        let methods = vec![MethodSignature::new(s, &[], false)];
        let axioms = saturate_truncated_axioms(&sig, &[id], &methods, 2);
        assert!(axioms.contains(&TruncatedAxiom::new(s, BTreeSet::new(), 0)));
        assert!(axioms.contains(&TruncatedAxiom::new(r, BTreeSet::new(), 0)));
        assert!(axioms.contains(&TruncatedAxiom::new(r, BTreeSet::new(), 1)));
    }

    #[test]
    fn transitivity_chains_methods() {
        // m1 keyed on position 0 reveals position 1; m2 keyed on position 1
        // reveals position 2: from {0} alone, position 2 becomes derivable.
        let mut sig = Signature::new();
        let r = sig.add_relation("R", 3).unwrap();
        let methods = vec![
            MethodSignature::new(r, &[0], false),
            MethodSignature::new(r, &[1], false),
        ];
        let axioms = saturate_truncated_axioms(&sig, &[], &methods, 1);
        assert!(axioms.contains(&TruncatedAxiom::new(r, BTreeSet::from([0]), 2)));
        let transferred = transferred_positions(&axioms, r, &BTreeSet::from([0]));
        assert_eq!(transferred, BTreeSet::from([0, 1, 2]));
    }

    #[test]
    fn transferred_positions_contains_premises() {
        let (sig, prof, _) = setup();
        let axioms = saturate_truncated_axioms(&sig, &[], &[], 2);
        let t = transferred_positions(&axioms, prof, &BTreeSet::from([1, 2]));
        assert_eq!(t, BTreeSet::from([1, 2]));
    }

    #[test]
    fn trivial_axiom_detection() {
        let (_sig, prof, _) = setup();
        assert!(TruncatedAxiom::new(prof, BTreeSet::from([0, 1]), 1).is_trivial());
        assert!(!TruncatedAxiom::new(prof, BTreeSet::from([0]), 1).is_trivial());
    }
}
