//! The generic chase-based containment procedure.
//!
//! To decide `Q ⊆_Σ Q'` we chase the canonical database of `Q` with `Σ` and
//! check whether `Q'` holds in the result (paper, Section 2). The procedure
//! is:
//!
//! * **sound for `Holds`** as soon as a match of `Q'` appears in any chase
//!   prefix (chase steps only add logical consequences);
//! * **complete** when the chase saturates (the result is then a universal
//!   model of `Q ∧ Σ`), or — for constraint classes with a known depth bound
//!   on matches, such as bounded-width IDs — when the chase has been explored
//!   up to that depth (see [`crate::bounds`]);
//! * otherwise the verdict is [`Verdict::Unknown`].
//!
//! An FD failure during the chase (two distinct constants forced equal)
//! means `Q ∧ Σ` is unsatisfiable, so the containment holds vacuously.

use rbqa_chase::{chase, ChaseConfig, Completion};
use rbqa_common::{Instance, ValueFactory};
use rbqa_logic::constraints::ConstraintSet;
use rbqa_logic::homomorphism::{find_homomorphism, Homomorphism};
use rbqa_logic::ConjunctiveQuery;

use crate::problem::{ContainmentOutcome, ContainmentProblem, Verdict};

/// Decides the containment problem with the given chase configuration.
///
/// `completeness_depth` is the depth (if any) at which the caller knows that
/// every potential match of `Q'` must have appeared (e.g. the Johnson–Klug
/// bound for bounded-width IDs). When the chase is stopped by the depth cap
/// but `config.budget.max_depth >= completeness_depth`, a missing match is
/// reported as a definitive [`Verdict::DoesNotHold`].
pub fn decide_with_completeness(
    problem: &ContainmentProblem,
    values: &mut ValueFactory,
    config: ChaseConfig,
    completeness_depth: Option<usize>,
) -> ContainmentOutcome {
    let canon = problem.lhs.canonical_database(&problem.signature, values);
    decide_from_instance(
        &canon.instance,
        &problem.rhs,
        &problem.constraints,
        values,
        config,
        completeness_depth,
    )
}

/// Decides whether every instance extending `start` under `constraints`
/// satisfies `rhs`: the chase-based containment check starting from an
/// arbitrary instance instead of a canonical database. This is the entry
/// point used by the linearization pipeline, whose starting instance is the
/// translated canonical database `I0^Lin` rather than a plain `CanonDB(Q)`.
pub fn decide_from_instance(
    start: &Instance,
    rhs: &ConjunctiveQuery,
    constraints: &ConstraintSet,
    values: &mut ValueFactory,
    config: ChaseConfig,
    completeness_depth: Option<usize>,
) -> ContainmentOutcome {
    decide_from_instance_seeded(
        start,
        rhs,
        &Homomorphism::default(),
        constraints,
        values,
        config,
        completeness_depth,
    )
}

/// Like [`decide_from_instance`], but the match of `rhs` must extend the
/// given partial assignment `rhs_seed`.
///
/// The seed is how non-Boolean answerability is handled: the free (answer)
/// variables of the query are frozen in the canonical database, and the
/// right-hand (primed) query must recover *the same* frozen values — a plan
/// must return every answer tuple, not merely witness that some tuple
/// exists.
pub fn decide_from_instance_seeded(
    start: &Instance,
    rhs: &ConjunctiveQuery,
    rhs_seed: &Homomorphism,
    constraints: &ConstraintSet,
    values: &mut ValueFactory,
    config: ChaseConfig,
    completeness_depth: Option<usize>,
) -> ContainmentOutcome {
    decide_from_instance_any(
        start,
        &[(rhs, rhs_seed)],
        constraints,
        values,
        config,
        completeness_depth,
    )
    .0
}

/// Disjunctive form of [`decide_from_instance_seeded`]: the containment
/// holds as soon as **any** of the `(rhs, seed)` targets matches the chased
/// instance. This is the right-hand side of the AMonDet containment for a
/// *union* of conjunctive queries — the chase of one disjunct's canonical
/// database may be matched by any disjunct of the union.
///
/// Returns the outcome together with the index of the first target that
/// matched (in slice order), when one did. The chase runs once regardless
/// of the number of targets.
pub fn decide_from_instance_any(
    start: &Instance,
    targets: &[(&ConjunctiveQuery, &Homomorphism)],
    constraints: &ConstraintSet,
    values: &mut ValueFactory,
    config: ChaseConfig,
    completeness_depth: Option<usize>,
) -> (ContainmentOutcome, Option<usize>) {
    let outcome = chase(start, constraints, values, config);

    if outcome.is_fd_failure() {
        // Q ∧ Σ is unsatisfiable: containment holds vacuously.
        return (
            ContainmentOutcome {
                verdict: Verdict::Holds,
                chase_completion: outcome.completion,
                chase_stats: outcome.stats,
                chased_facts: outcome.instance.len(),
                complete: true,
            },
            None,
        );
    }

    let matched = {
        // The chase above is attributed to `Phase::Chase` by the chase
        // crate; only the target-match search is containment self-time.
        let mut obs = rbqa_obs::phase_span("containment_match", rbqa_obs::Phase::Containment);
        obs.num("targets", targets.len() as u64);
        obs.num("facts", outcome.instance.len() as u64);
        targets.iter().position(|(rhs, seed)| {
            find_homomorphism(&rhs.boolean_closure(), &outcome.instance, seed).is_some()
        })
    };
    let saturated = outcome.completion == Completion::Saturated;
    // A missing match is only certified when the chase explored everything
    // up to the depth cap (it was not stopped by another budget) *and* the
    // cap reaches the caller-supplied completeness depth.
    let depth_complete = match completeness_depth {
        Some(required) => {
            outcome.completion.explored_to_depth_cap() && config.budget.max_depth >= required
        }
        None => false,
    };
    let complete = saturated || depth_complete;

    let verdict = if matched.is_some() {
        Verdict::Holds
    } else if complete {
        Verdict::DoesNotHold
    } else {
        Verdict::Unknown
    };

    (
        ContainmentOutcome {
            verdict,
            chase_completion: outcome.completion,
            chase_stats: outcome.stats,
            chased_facts: outcome.instance.len(),
            complete,
        },
        matched,
    )
}

/// Decides the containment problem using only chase saturation as the
/// completeness criterion.
pub fn decide(
    problem: &ContainmentProblem,
    values: &mut ValueFactory,
    config: ChaseConfig,
) -> ContainmentOutcome {
    decide_with_completeness(problem, values, config, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_chase::Budget;
    use rbqa_common::Signature;
    use rbqa_logic::constraints::tgd::inclusion_dependency;
    use rbqa_logic::constraints::ConstraintSet;
    use rbqa_logic::parser::{parse_cq, parse_fd, parse_tgd};

    fn config() -> ChaseConfig {
        ChaseConfig::with_budget(Budget::generous())
    }

    #[test]
    fn containment_without_constraints_is_homomorphism_check() {
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        // Q :- E(x, y), E(y, z)     Q' :- E(u, v)
        let lhs = parse_cq("Q() :- E(x, y), E(y, z)", &mut sig, &mut vf).unwrap();
        let rhs = parse_cq("Q() :- E(u, v)", &mut sig, &mut vf).unwrap();
        let problem = ContainmentProblem {
            signature: sig.clone(),
            lhs: lhs.clone(),
            rhs: rhs.clone(),
            constraints: ConstraintSet::new(),
        };
        let out = decide(&problem, &mut vf, config());
        assert_eq!(out.verdict, Verdict::Holds);
        assert!(out.complete);

        // The converse direction does not hold.
        let problem = ContainmentProblem {
            signature: sig,
            lhs: rhs,
            rhs: lhs,
            constraints: ConstraintSet::new(),
        };
        let out = decide(&problem, &mut vf, config());
        assert_eq!(out.verdict, Verdict::DoesNotHold);
        assert!(out.complete);
    }

    #[test]
    fn id_constraint_makes_containment_hold() {
        // Σ: Udirectory(i, a, p) -> Prof(i, n, s) (referential constraint of
        // Example 1.1). Then ∃ Udirectory ⊆_Σ ∃ Prof.
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        let lhs = parse_cq("Q() :- Udirectory(i, a, p)", &mut sig, &mut vf).unwrap();
        let rhs = parse_cq("Q() :- Prof(i2, n, s)", &mut sig, &mut vf).unwrap();
        let tgd = parse_tgd("Udirectory(i, a, p) -> Prof(i, n, s)", &mut sig, &mut vf).unwrap();
        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(tgd);
        let problem = ContainmentProblem {
            signature: sig,
            lhs,
            rhs,
            constraints,
        };
        let out = decide(&problem, &mut vf, config());
        assert_eq!(out.verdict, Verdict::Holds);
        assert!(out.chase_stats.tgd_firings >= 1);
    }

    #[test]
    fn fd_constraint_merges_nulls_to_entail_rhs() {
        // Σ: FD R: 1 -> 2. Q :- R(x, y), R(x, z), S(y)  entails  Q' :- R(x, z), S(z).
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        let lhs = parse_cq("Q() :- R(x, y), R(x, z), S(y)", &mut sig, &mut vf).unwrap();
        let rhs = parse_cq("Q() :- R(x, z), S(z)", &mut sig, &mut vf).unwrap();
        let fd = parse_fd("FD R: 1 -> 2", &mut sig).unwrap();
        let mut constraints = ConstraintSet::new();
        constraints.push_fd(fd);
        let problem = ContainmentProblem {
            signature: sig,
            lhs,
            rhs,
            constraints,
        };
        let out = decide(&problem, &mut vf, config());
        assert_eq!(out.verdict, Verdict::Holds);
        assert!(out.chase_stats.fd_unifications >= 1);
    }

    #[test]
    fn unsatisfiable_lhs_gives_vacuous_containment() {
        // Σ: FD R: 1 -> 2. Q uses two distinct constants for the same key,
        // so Q ∧ Σ is unsatisfiable and containment holds vacuously.
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        let lhs = parse_cq("Q() :- R(x, 'a'), R(x, 'b')", &mut sig, &mut vf).unwrap();
        let rhs = parse_cq("Q() :- T(u)", &mut sig, &mut vf).unwrap();
        let fd = parse_fd("FD R: 1 -> 2", &mut sig).unwrap();
        let mut constraints = ConstraintSet::new();
        constraints.push_fd(fd);
        let problem = ContainmentProblem {
            signature: sig,
            lhs,
            rhs,
            constraints,
        };
        let out = decide(&problem, &mut vf, config());
        assert_eq!(out.verdict, Verdict::Holds);
        assert!(out.complete);
    }

    #[test]
    fn cyclic_ids_give_unknown_without_completeness_bound() {
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        let lhs = parse_cq("Q() :- R(x, y)", &mut sig, &mut vf).unwrap();
        let rhs = parse_cq("Q() :- T(u)", &mut sig, &mut vf).unwrap();
        sig.add_relation("T", 1).unwrap();
        let r = sig.require("R").unwrap();
        let s = sig.add_relation("S", 2).unwrap();
        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));
        constraints.push_tgd(inclusion_dependency(&sig, s, &[1], r, &[0]));
        let problem = ContainmentProblem {
            signature: sig,
            lhs,
            rhs,
            constraints,
        };
        let budget = Budget::small().with_max_depth(5);
        let out = decide(&problem, &mut vf, ChaseConfig::with_budget(budget));
        assert_eq!(out.verdict, Verdict::Unknown);
        assert!(!out.complete);

        // With an explicit completeness bound below the cap, the same run is
        // decisive.
        let out =
            decide_with_completeness(&problem, &mut vf, ChaseConfig::with_budget(budget), Some(4));
        assert_eq!(out.verdict, Verdict::DoesNotHold);
        assert!(out.complete);
    }

    #[test]
    fn any_target_match_decides_the_disjunction() {
        // Σ: R(x, y) -> S(x). CanonDB(∃ R) satisfies neither T nor U, but
        // chasing derives S — so the disjunction (T ∨ S ∨ U) holds, matched
        // at index 1, while (T ∨ U) definitively does not.
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        let lhs = parse_cq("Q() :- R(x, y)", &mut sig, &mut vf).unwrap();
        let t = parse_cq("Q() :- T(u)", &mut sig, &mut vf).unwrap();
        let s = parse_cq("Q() :- S(u)", &mut sig, &mut vf).unwrap();
        let u = parse_cq("Q() :- U(u)", &mut sig, &mut vf).unwrap();
        let tgd = parse_tgd("R(x, y) -> S(x)", &mut sig, &mut vf).unwrap();
        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(tgd);
        let canon = lhs.canonical_database(&sig, &mut vf);

        let empty_seed = Homomorphism::default();
        let targets: Vec<(&ConjunctiveQuery, &Homomorphism)> =
            vec![(&t, &empty_seed), (&s, &empty_seed), (&u, &empty_seed)];
        let (out, matched) = decide_from_instance_any(
            &canon.instance,
            &targets,
            &constraints,
            &mut vf,
            config(),
            None,
        );
        assert_eq!(out.verdict, Verdict::Holds);
        assert_eq!(matched, Some(1));

        let (out, matched) = decide_from_instance_any(
            &canon.instance,
            &targets[..1],
            &constraints,
            &mut vf,
            config(),
            None,
        );
        assert_eq!(out.verdict, Verdict::DoesNotHold);
        assert!(out.complete);
        assert_eq!(matched, None);
    }

    #[test]
    fn rhs_with_constant_requires_that_constant() {
        let mut sig = Signature::new();
        let mut vf = ValueFactory::new();
        let lhs = parse_cq("Q() :- R(x, 'a')", &mut sig, &mut vf).unwrap();
        let rhs_same = parse_cq("Q() :- R(y, 'a')", &mut sig, &mut vf).unwrap();
        let rhs_diff = parse_cq("Q() :- R(y, 'b')", &mut sig, &mut vf).unwrap();
        let p1 = ContainmentProblem {
            signature: sig.clone(),
            lhs: lhs.clone(),
            rhs: rhs_same,
            constraints: ConstraintSet::new(),
        };
        assert_eq!(decide(&p1, &mut vf, config()).verdict, Verdict::Holds);
        let p2 = ContainmentProblem {
            signature: sig,
            lhs,
            rhs: rhs_diff,
            constraints: ConstraintSet::new(),
        };
        assert_eq!(decide(&p2, &mut vf, config()).verdict, Verdict::DoesNotHold);
    }
}
