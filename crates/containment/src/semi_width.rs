//! Position graphs, width and semi-width of sets of linear dependencies.
//!
//! The *basic position graph* of a set of IDs (or linear TGDs) has one node
//! per relation position and an edge from position `i` of `T` to position
//! `j` of `U` whenever some dependency exports a variable from `i` in its
//! body atom to `j` in its head atom. A set has *semi-width* bounded by `w`
//! when it splits into `Σ1 ∪ Σ2` with `Σ1` of width at most `w` and the
//! position graph of `Σ2` acyclic (paper, Section 5). Semi-width is the
//! measure under which the Johnson–Klug NP bound generalises
//! (Proposition 5.6 / E.8).

use rbqa_common::RelationId;
use rbqa_logic::Tgd;
use rustc_hash::{FxHashMap, FxHashSet};

/// A position node `(relation, position)`.
pub type PosNode = (RelationId, usize);

/// The basic position graph of a set of linear dependencies: edges from
/// body positions to head positions of exported variables.
pub fn position_graph(tgds: &[Tgd]) -> Vec<(PosNode, PosNode)> {
    let mut edges = Vec::new();
    for tgd in tgds {
        let exported: FxHashSet<_> = tgd.exported_variables().into_iter().collect();
        for body_atom in tgd.body() {
            for x in body_atom.variables() {
                if !exported.contains(&x) {
                    continue;
                }
                for bpos in body_atom.positions_of(x) {
                    for head_atom in tgd.head() {
                        for hpos in head_atom.positions_of(x) {
                            edges
                                .push(((body_atom.relation(), bpos), (head_atom.relation(), hpos)));
                        }
                    }
                }
            }
        }
    }
    edges
}

/// Whether the position graph of `tgds` is acyclic.
pub fn position_graph_is_acyclic(tgds: &[Tgd]) -> bool {
    let edges = position_graph(tgds);
    let mut nodes: Vec<PosNode> = Vec::new();
    for (a, b) in &edges {
        nodes.push(*a);
        nodes.push(*b);
    }
    nodes.sort();
    nodes.dedup();
    let index: FxHashMap<PosNode, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let n = nodes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indegree = vec![0usize; n];
    for (a, b) in &edges {
        adj[index[a]].push(index[b]);
        indegree[index[b]] += 1;
    }
    // Kahn's algorithm: the graph is acyclic iff all nodes can be removed.
    let mut queue: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
    let mut removed = 0;
    while let Some(v) = queue.pop() {
        removed += 1;
        for &w in &adj[v] {
            indegree[w] -= 1;
            if indegree[w] == 0 {
                queue.push(w);
            }
        }
    }
    removed == n
}

/// The maximum number of exported variables over `tgds` (their width).
pub fn max_width(tgds: &[Tgd]) -> usize {
    tgds.iter().map(|t| t.width()).max().unwrap_or(0)
}

/// A decomposition certifying bounded semi-width: indices of the dependencies
/// assigned to the bounded-width part `Σ1` and to the acyclic part `Σ2`.
#[derive(Debug, Clone)]
pub struct SemiWidthDecomposition {
    /// Indices (into the input slice) of dependencies with width ≤ w.
    pub bounded_part: Vec<usize>,
    /// Indices of the remaining dependencies, whose position graph is
    /// acyclic.
    pub acyclic_part: Vec<usize>,
    /// The width bound used.
    pub width: usize,
}

/// Attempts to certify that `tgds` have semi-width at most `w`, using the
/// natural greedy decomposition: `Σ1` is every dependency of width ≤ w and
/// `Σ2` is the rest, which must then have an acyclic position graph.
///
/// Returns `None` when the greedy split fails (the set may still have
/// bounded semi-width under a cleverer split; the greedy split is the one
/// used by the paper's constructions, where the wide dependencies are the
/// transfer axioms, which are acyclic by design).
pub fn semi_width_decomposition(tgds: &[Tgd], w: usize) -> Option<SemiWidthDecomposition> {
    let mut bounded = Vec::new();
    let mut rest = Vec::new();
    for (i, tgd) in tgds.iter().enumerate() {
        if tgd.width() <= w {
            bounded.push(i);
        } else {
            rest.push(i);
        }
    }
    let rest_tgds: Vec<Tgd> = rest.iter().map(|&i| tgds[i].clone()).collect();
    if position_graph_is_acyclic(&rest_tgds) {
        Some(SemiWidthDecomposition {
            bounded_part: bounded,
            acyclic_part: rest,
            width: w,
        })
    } else {
        None
    }
}

/// The smallest `w` for which [`semi_width_decomposition`] succeeds, if any
/// (bounded by the maximal width of the input).
pub fn semi_width(tgds: &[Tgd]) -> Option<usize> {
    let max = max_width(tgds);
    (0..=max).find(|&w| semi_width_decomposition(tgds, w).is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_common::Signature;
    use rbqa_logic::constraints::tgd::inclusion_dependency;

    fn sig() -> (Signature, RelationId, RelationId, RelationId) {
        let mut s = Signature::new();
        let r = s.add_relation("R", 2).unwrap();
        let t = s.add_relation("T", 2).unwrap();
        let u = s.add_relation("U", 3).unwrap();
        (s, r, t, u)
    }

    #[test]
    fn position_graph_edges() {
        let (sig, r, t, _u) = sig();
        let id = inclusion_dependency(&sig, r, &[0, 1], t, &[1, 0]);
        let edges = position_graph(&[id]);
        assert!(edges.contains(&((r, 0), (t, 1))));
        assert!(edges.contains(&((r, 1), (t, 0))));
        assert_eq!(edges.len(), 2);
    }

    #[test]
    fn acyclic_detection() {
        let (sig, r, t, u) = sig();
        let id1 = inclusion_dependency(&sig, r, &[0], t, &[0]);
        let id2 = inclusion_dependency(&sig, t, &[0], u, &[0]);
        assert!(position_graph_is_acyclic(&[id1.clone(), id2.clone()]));
        let back = inclusion_dependency(&sig, u, &[0], r, &[0]);
        assert!(!position_graph_is_acyclic(&[id1, id2, back]));
    }

    #[test]
    fn width_and_semi_width() {
        let (sig, r, t, u) = sig();
        // Width-1 cyclic UIDs plus one width-2 acyclic ID.
        let uid1 = inclusion_dependency(&sig, r, &[0], t, &[0]);
        let uid2 = inclusion_dependency(&sig, t, &[0], r, &[0]);
        let wide = inclusion_dependency(&sig, r, &[0, 1], u, &[0, 1]);
        let set = vec![uid1, uid2, wide];
        assert_eq!(max_width(&set), 2);
        // Semi-width 1: the width-2 ID goes to the acyclic part.
        let decomposition = semi_width_decomposition(&set, 1).unwrap();
        assert_eq!(decomposition.bounded_part.len(), 2);
        assert_eq!(decomposition.acyclic_part, vec![2]);
        assert_eq!(semi_width(&set), Some(1));
    }

    #[test]
    fn cyclic_wide_ids_have_no_small_semi_width() {
        let (sig, _r, _t, u) = sig();
        let mut s2 = sig.clone();
        let v = s2.add_relation("V", 3).unwrap();
        let wide1 = inclusion_dependency(&s2, u, &[0, 1], v, &[0, 1]);
        let wide2 = inclusion_dependency(&s2, v, &[0, 1], u, &[0, 1]);
        let set = vec![wide1, wide2];
        assert!(semi_width_decomposition(&set, 1).is_none());
        assert_eq!(semi_width(&set), Some(2));
    }

    #[test]
    fn empty_set_has_semi_width_zero() {
        assert_eq!(semi_width(&[]), Some(0));
        assert!(position_graph_is_acyclic(&[]));
    }
}
