//! Observability under concurrency and failure: `ServiceMetrics` and the
//! latency histograms must snapshot tear-free while scoped worker threads
//! hammer the service, and traces must stay balanced (every span closed)
//! when a request errors mid-pipeline.

use std::sync::atomic::{AtomicUsize, Ordering};

use rbqa_access::AccessMethod;
use rbqa_common::{Instance, Signature, Value, ValueFactory};
use rbqa_logic::constraints::tgd::inclusion_dependency;
use rbqa_logic::constraints::ConstraintSet;
use rbqa_logic::parser::parse_cq;
use rbqa_service::{
    AnswerRequest, BackendSpec, ExecOptions, QueryService, RequestMode, ServiceError,
};

/// The university scenario with a small dataset attached, so `Execute`
/// requests run real plans (and can fail in controlled ways).
fn university_service() -> (QueryService, rbqa_service::CatalogId) {
    let mut sig = Signature::new();
    let prof = sig.add_relation("Prof", 3).unwrap();
    let udir = sig.add_relation("Udirectory", 3).unwrap();
    let mut constraints = ConstraintSet::new();
    constraints.push_tgd(inclusion_dependency(&sig, prof, &[0], udir, &[0]));
    let mut schema = rbqa_access::Schema::with_parts(sig.clone(), constraints, vec![]).unwrap();
    schema
        .add_method(AccessMethod::unbounded("pr", prof, &[0]))
        .unwrap();
    schema
        .add_method(AccessMethod::unbounded("ud", udir, &[]))
        .unwrap();
    let mut values = ValueFactory::new();
    let mut data = Instance::new(sig);
    for (i, name) in [("7", "ada"), ("8", "alan"), ("9", "grace")] {
        let row: Vec<Value> = [i, name, "10000"]
            .iter()
            .map(|s| values.constant(s))
            .collect();
        data.insert(prof, row).unwrap();
        let row: Vec<Value> = [i, "mainst", "555"]
            .iter()
            .map(|s| values.constant(s))
            .collect();
        data.insert(udir, row).unwrap();
    }
    let service = QueryService::new();
    let id = service.register_catalog("uni", schema, values).unwrap();
    service.attach_dataset(id, data).unwrap();
    (service, id)
}

fn request(
    service: &QueryService,
    id: rbqa_service::CatalogId,
    mode: RequestMode,
) -> AnswerRequest {
    let mut vf = service.catalog_values(id).unwrap();
    let mut sig = service.catalog_signature(id).unwrap();
    let q = parse_cq("Q(n) :- Prof(i, n, '10000')", &mut sig, &mut vf).unwrap();
    let base = AnswerRequest::decide(id, q, vf);
    match mode {
        RequestMode::Decide => base,
        RequestMode::Synthesize => AnswerRequest {
            mode: RequestMode::Synthesize,
            ..base
        },
        RequestMode::Execute => AnswerRequest {
            mode: RequestMode::Execute,
            ..base
        },
    }
}

#[test]
fn metric_and_histogram_snapshots_are_tear_free_under_scoped_threads() {
    let (service, id) = university_service();
    const THREADS: usize = 4;
    const PER_THREAD: usize = 50;
    let failures = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let service = &service;
            let failures = &failures;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let mode = match (t + i) % 3 {
                        0 => RequestMode::Decide,
                        1 => RequestMode::Synthesize,
                        _ => RequestMode::Execute,
                    };
                    let mut req = request(service, id, mode);
                    // Every fourth execute trips the call budget, so the
                    // error path runs concurrently with the happy path.
                    if mode == RequestMode::Execute && i % 4 == 0 {
                        req = req.with_exec(ExecOptions {
                            call_budget: Some(1),
                            ..ExecOptions::default()
                        });
                        match service.submit(&req) {
                            Err(ServiceError::BudgetExhausted { .. }) => {}
                            other => panic!("expected BudgetExhausted, got {other:?}"),
                        }
                        failures.fetch_add(1, Ordering::Relaxed);
                    } else {
                        service.submit(&req).unwrap();
                    }
                }
            });
        }
        // Reader thread: snapshots taken mid-flight must be internally
        // coherent (no torn counter pairs, quantiles within recorded
        // min/max).
        let service = &service;
        scope.spawn(move || {
            for _ in 0..200 {
                let s = service.metrics();
                assert!(
                    s.decisions_computed <= s.cache_misses,
                    "decisions {} outran misses {}",
                    s.decisions_computed,
                    s.cache_misses
                );
                for mode in [
                    RequestMode::Decide,
                    RequestMode::Synthesize,
                    RequestMode::Execute,
                ] {
                    let h = service.latency_histogram(mode);
                    assert_eq!(
                        h.buckets.iter().sum::<u64>(),
                        h.count,
                        "bucket total tore away from count"
                    );
                    if h.count > 0 {
                        let p99 = h.p99();
                        assert!(h.min <= p99 && p99 <= h.max, "quantile outside min/max");
                    }
                }
                std::hint::spin_loop();
            }
        });
    });

    let total = THREADS * PER_THREAD;
    let failed = failures.load(Ordering::Relaxed);
    let s = service.metrics();
    // Failed executes error out *after* the decision but before
    // `record_latency`, so mode counts cover exactly the successes.
    assert_eq!(
        s.mode_counts.iter().sum::<u64>(),
        (total - failed) as u64,
        "every successful request recorded exactly one latency"
    );
    for mode in [
        RequestMode::Decide,
        RequestMode::Synthesize,
        RequestMode::Execute,
    ] {
        let h = service.latency_histogram(mode);
        assert!(h.count > 0, "{mode:?} histogram saw requests");
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
        assert!(h.p50() <= h.p99());
        assert!(s.p99_micros(mode) >= s.p50_micros(mode));
    }
    // One decision per distinct fingerprint (three modes, two exec
    // option sets — but Decide/Synthesize share one and executes split
    // on call budget): the cache coalesced everything else.
    assert_eq!(s.cache_misses + s.chase_invocations_saved(), total as u64);
}

/// A trace armed around a request that fails mid-pipeline must come back
/// balanced: the RAII span guards unwind with `?`, so no span or phase
/// stays open. Exercises both structured failure codes.
#[test]
fn traces_stay_balanced_when_requests_error_mid_pipeline() {
    let (service, id) = university_service();

    // Budget exhaustion: the executor aborts partway through the plan.
    let starved = request(&service, id, RequestMode::Execute).with_exec(ExecOptions {
        call_budget: Some(1),
        ..ExecOptions::default()
    });
    rbqa_obs::install(rbqa_obs::Tracer::new());
    let err = service.submit(&starved).unwrap_err();
    let trace = rbqa_obs::uninstall().expect("tracer still armed");
    assert!(matches!(err, ServiceError::BudgetExhausted { .. }));
    assert!(trace.balanced, "spans unbalanced after BudgetExhausted");
    assert!(
        trace.spans.iter().any(|s| s.name == "decide"),
        "the decision ran before the execution failed"
    );

    // Backend unavailability: the access itself fails.
    let flaky = request(&service, id, RequestMode::Execute).with_exec(ExecOptions {
        backend: BackendSpec::SimulatedRemote {
            seed: 7,
            latency_micros: 0,
            fault_rate_pct: 100,
            transient: false,
        },
        ..ExecOptions::default()
    });
    rbqa_obs::install(rbqa_obs::Tracer::new());
    let err = service.submit(&flaky).unwrap_err();
    let trace = rbqa_obs::uninstall().expect("tracer still armed");
    assert!(matches!(err, ServiceError::Unavailable { .. }), "{err:?}");
    assert!(trace.balanced, "spans unbalanced after Unavailable");

    // The built-in trace flag must not leak an armed tracer on error
    // either: the next (untraced) request starts from a clean thread.
    let traced = starved.with_trace(true);
    assert!(service.submit(&traced).is_err());
    assert!(!rbqa_obs::enabled(), "error path left a tracer armed");
    let ok = request(&service, id, RequestMode::Execute).with_trace(true);
    let response = service.submit(&ok).unwrap();
    let trace = response.trace.expect("traced response carries a trace");
    assert!(trace.balanced);
    assert!(trace.spans.iter().any(|s| s.name == "access"));
}
