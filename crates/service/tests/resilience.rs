//! Resilient execution at the service boundary: cooperative deadlines
//! (REQUEST_TIMEOUT, no cache poisoning) and degraded union Execute
//! (surviving disjuncts answer, failures are reported per-disjunct).

use std::time::Duration;

use rbqa_access::AccessMethod;
use rbqa_common::{Instance, Signature, Value, ValueFactory};
use rbqa_logic::constraints::tgd::inclusion_dependency;
use rbqa_logic::constraints::ConstraintSet;
use rbqa_logic::parser::parse_cq;
use rbqa_logic::UnionOfConjunctiveQueries;
use rbqa_service::{
    AnswerRequest, BackendSpec, ExecOptions, QueryService, RequestMode, ServiceError,
};

/// The university scenario with a dataset attached (mirrors the
/// `obs_concurrency` harness): `Prof` reachable through `pr` keyed by id,
/// `Udirectory` through the unbounded `ud`.
fn university_service() -> (QueryService, rbqa_service::CatalogId) {
    let mut sig = Signature::new();
    let prof = sig.add_relation("Prof", 3).unwrap();
    let udir = sig.add_relation("Udirectory", 3).unwrap();
    let mut constraints = ConstraintSet::new();
    constraints.push_tgd(inclusion_dependency(&sig, prof, &[0], udir, &[0]));
    let mut schema = rbqa_access::Schema::with_parts(sig.clone(), constraints, vec![]).unwrap();
    schema
        .add_method(AccessMethod::unbounded("pr", prof, &[0]))
        .unwrap();
    schema
        .add_method(AccessMethod::unbounded("ud", udir, &[]))
        .unwrap();
    let mut values = ValueFactory::new();
    let mut data = Instance::new(sig);
    for (i, name) in [("7", "ada"), ("8", "alan"), ("9", "grace")] {
        let row: Vec<Value> = [i, name, "10000"]
            .iter()
            .map(|s| values.constant(s))
            .collect();
        data.insert(prof, row).unwrap();
        let row: Vec<Value> = [i, "mainst", "555"]
            .iter()
            .map(|s| values.constant(s))
            .collect();
        data.insert(udir, row).unwrap();
    }
    let service = QueryService::new();
    let id = service.register_catalog("uni", schema, values).unwrap();
    service.attach_dataset(id, data).unwrap();
    (service, id)
}

fn union_execute(service: &QueryService, id: rbqa_service::CatalogId) -> AnswerRequest {
    let mut vf = service.catalog_values(id).unwrap();
    let mut sig = service.catalog_signature(id).unwrap();
    let q1 = parse_cq("Q(n) :- Prof(i, n, '10000')", &mut sig, &mut vf).unwrap();
    let q2 = parse_cq("Q(a) :- Udirectory(i, a, p)", &mut sig, &mut vf).unwrap();
    AnswerRequest {
        mode: RequestMode::Execute,
        ..AnswerRequest::decide_union(
            id,
            UnionOfConjunctiveQueries::from_disjuncts(vec![q1, q2]),
            vf,
        )
    }
}

#[test]
fn expired_deadline_times_out_without_poisoning_the_cache() {
    let (service, id) = university_service();
    let request = union_execute(&service, id);

    // An already-expired deadline: the chase aborts between rounds and
    // the compute is abandoned with the stable timeout code.
    let doomed = request.clone().with_deadline(Some(Duration::ZERO));
    let err = service.submit(&doomed).unwrap_err();
    assert_eq!(err, ServiceError::DeadlineExceeded);
    assert_eq!(err.code(), "REQUEST_TIMEOUT");
    assert_eq!(
        service.cache_len(),
        0,
        "an abandoned compute must cache nothing"
    );
    assert_eq!(service.metrics().deadline_timeouts, 1);

    // The vacated in-flight slot is free: the same request without a
    // deadline recomputes from scratch and then serves hits normally.
    let fresh = service.submit(&request).unwrap();
    assert!(!fresh.cache_hit, "slot was vacated, not poisoned");
    assert!(fresh.partial.is_none());
    let again = service.submit(&request).unwrap();
    assert!(again.cache_hit);

    // A generous deadline changes nothing (and is not fingerprinted:
    // it rides the same cache entry).
    let relaxed = request.with_deadline(Some(Duration::from_secs(30)));
    let response = service.submit(&relaxed).unwrap();
    assert!(response.cache_hit);
    assert_eq!(response.fingerprint, again.fingerprint);
}

#[test]
fn degraded_union_serves_surviving_disjuncts_and_reports_the_rest() {
    let (service, id) = university_service();

    // Find a fault seed that kills some — not all — disjuncts. The remote
    // backend is deterministic per (seed, access), so the scan is exact
    // and the chosen seed replays identically forever.
    let mut partial_seed = None;
    for seed in 0..256u64 {
        let exec = ExecOptions {
            backend: BackendSpec::SimulatedRemote {
                seed,
                latency_micros: 0,
                fault_rate_pct: 30,
                transient: false,
            },
            degraded: true,
            ..ExecOptions::default()
        };
        let request = union_execute(&service, id).with_exec(exec);
        match service.submit(&request) {
            Ok(response) if response.partial.is_some() => {
                let failures = response.partial.as_ref().unwrap();
                assert_eq!(failures.len(), 1, "one of two disjuncts failed");
                assert_eq!(failures[0].code, "BACKEND_UNAVAILABLE");
                assert!(failures[0].plan_index < 2);
                let rows = response.rows.as_ref().unwrap();
                assert!(!rows.is_empty(), "the surviving disjunct's rows are served");
                partial_seed = Some(seed);
                break;
            }
            Ok(_) | Err(_) => continue,
        }
    }
    let seed = partial_seed.expect("some seed in 0..256 degrades exactly one disjunct");
    assert_eq!(service.metrics().degraded_responses, 1);

    // The same faults with degraded mode off fail the whole request:
    // partial answers are strictly opt-in.
    let strict = ExecOptions {
        backend: BackendSpec::SimulatedRemote {
            seed,
            latency_micros: 0,
            fault_rate_pct: 30,
            transient: false,
        },
        ..ExecOptions::default()
    };
    let request = union_execute(&service, id).with_exec(strict);
    assert!(matches!(
        service.submit(&request),
        Err(ServiceError::Unavailable { .. })
    ));
}

#[test]
fn exec_retry_policy_rides_out_transient_faults() {
    let (service, id) = university_service();

    // Baseline rows from the deterministic in-memory backend.
    let clean = service.submit(&union_execute(&service, id)).unwrap();
    let clean_rows = clean.rows.clone().unwrap();
    assert!(!clean_rows.is_empty());

    // A heavily faulting transient remote, ridden out by the retry
    // wrapper: same rows, no partial block, retries accounted. The
    // remote's own internal retries absorb most transient faults, so
    // scan (deterministic) seeds for one where faults actually surface
    // to the wrapper.
    let mut exercised = false;
    for seed in 0..64u64 {
        let exec = ExecOptions {
            backend: BackendSpec::SimulatedRemote {
                seed,
                latency_micros: 10,
                fault_rate_pct: 70,
                transient: true,
            },
            retry: Some(rbqa_service::RetryPolicy {
                max_attempts: 10,
                retry_budget: 500,
                ..rbqa_service::RetryPolicy::default()
            }),
            ..ExecOptions::default()
        };
        let response = service
            .submit(&union_execute(&service, id).with_exec(exec))
            .unwrap();
        assert_eq!(response.rows.as_ref().unwrap(), &clean_rows);
        assert!(response.partial.is_none());
        let metrics = response.plan_metrics.as_ref().unwrap();
        if metrics.retries > 0 {
            exercised = true;
            assert!(service.metrics().retries >= metrics.retries);
            break;
        }
    }
    assert!(
        exercised,
        "some seed in 0..64 must surface a transient fault to the wrapper"
    );
}
