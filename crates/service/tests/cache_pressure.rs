//! Eviction racing coalescing: scoped threads hammer one service with a
//! Zipf-skewed 100-fingerprint keyset while the cache budget only holds
//! about ten entries, so every popular entry is repeatedly evicted,
//! recomputed, coalesced on, and evicted again.
//!
//! Must hold throughout: no deadlock (the test finishes), the occupancy
//! gauge never exceeds the budget (asserted by a concurrent reader, not
//! just at the end), the ledger balances — `hits + misses + coalesced +
//! warm == lookups == submits` — and no outcome is torn: every response
//! for a fingerprint carries the same decision summary.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use rbqa_access::AccessMethod;
use rbqa_common::{Signature, ValueFactory};
use rbqa_logic::constraints::tgd::inclusion_dependency;
use rbqa_logic::constraints::ConstraintSet;
use rbqa_logic::parser::parse_cq;
use rbqa_service::{AnswerRequest, QueryService};

const KEYS: usize = 100;
const THREADS: usize = 8;
const PER_THREAD: usize = 150;

fn university_service() -> (QueryService, rbqa_service::CatalogId) {
    let mut sig = Signature::new();
    let prof = sig.add_relation("Prof", 3).unwrap();
    let udir = sig.add_relation("Udirectory", 3).unwrap();
    let mut constraints = ConstraintSet::new();
    constraints.push_tgd(inclusion_dependency(&sig, prof, &[0], udir, &[0]));
    let mut schema = rbqa_access::Schema::with_parts(sig, constraints, vec![]).unwrap();
    schema
        .add_method(AccessMethod::unbounded("pr", prof, &[0]))
        .unwrap();
    schema
        .add_method(AccessMethod::bounded("ud", udir, &[], 100))
        .unwrap();
    let service = QueryService::new();
    let id = service
        .register_catalog("uni", schema, ValueFactory::new())
        .unwrap();
    (service, id)
}

/// Key `k`'s query: a distinct selecting constant per key gives 100
/// distinct fingerprints over one catalog.
fn decide_key(service: &QueryService, id: rbqa_service::CatalogId, k: usize) -> AnswerRequest {
    let mut vf = service.catalog_values(id).unwrap();
    let mut sig = service.catalog_signature(id).unwrap();
    let text = format!("Q(n) :- Prof(i, n, 'salary{k}'), Udirectory(i, a, p)");
    let q = parse_cq(&text, &mut sig, &mut vf).unwrap();
    AnswerRequest::decide(id, q, vf)
}

/// xorshift64* — deterministic per-thread request streams.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Zipf(1.2) over `0..KEYS` by inverse CDF.
fn zipf_table() -> Vec<f64> {
    let mut cdf = Vec::with_capacity(KEYS);
    let mut total = 0.0;
    for i in 0..KEYS {
        total += 1.0 / ((i + 1) as f64).powf(1.2);
        cdf.push(total);
    }
    for p in cdf.iter_mut() {
        *p /= total;
    }
    cdf
}

#[test]
fn eviction_and_coalescing_keep_the_ledger_balanced_under_zipf_load() {
    let (service, id) = university_service();

    // Size the budget off a real entry: room for ~10 of the 100 keys.
    let probe = service.submit(&decide_key(&service, id, 0)).unwrap();
    let entry_cost = service.cache_stats().occupancy_bytes;
    assert!(entry_cost > 0, "one resident entry must have a cost");
    let budget = entry_cost * 10;
    service.set_cache_budget(Some(budget));

    let zipf = zipf_table();
    let done = AtomicBool::new(false);
    // First-seen decision summary per key: any later disagreement means a
    // torn or cross-wired cache outcome.
    let summaries: Vec<Mutex<Option<rbqa_core::DecisionSummary>>> =
        (0..KEYS).map(|_| Mutex::new(None)).collect();
    summaries[0].lock().unwrap().replace(probe.summary);

    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for t in 0..THREADS {
            let (service, zipf, summaries) = (&service, &zipf, &summaries);
            workers.push(scope.spawn(move || {
                let mut state = 0x9E37_79B9_7F4A_7C15u64.wrapping_add(t as u64);
                for _ in 0..PER_THREAD {
                    let u = (next_rand(&mut state) >> 11) as f64 / (1u64 << 53) as f64;
                    let k = zipf.partition_point(|&p| p < u).min(KEYS - 1);
                    let response = service.submit(&decide_key(service, id, k)).unwrap();
                    let mut seen = summaries[k].lock().unwrap();
                    match &*seen {
                        None => *seen = Some(response.summary),
                        Some(summary) => assert_eq!(
                            *summary, response.summary,
                            "key {k} produced two different decisions"
                        ),
                    }
                }
            }));
        }
        // The budget must hold *during* the churn, not just afterwards.
        let (service, done) = (&service, &done);
        scope.spawn(move || {
            while !done.load(Ordering::Relaxed) {
                let stats = service.cache_stats();
                assert!(
                    stats.occupancy_bytes <= budget,
                    "occupancy {} exceeded budget {budget} mid-run",
                    stats.occupancy_bytes
                );
                assert_eq!(stats.budget_bytes, Some(budget));
                std::hint::spin_loop();
            }
        });
        // Keep the reader running for the whole churn: release it only
        // after every worker has finished.
        for worker in workers {
            worker.join().expect("worker panicked");
        }
        done.store(true, Ordering::Relaxed);
    });

    let metrics = service.metrics();
    let submits = (THREADS * PER_THREAD + 1) as u64; // +1 for the probe
    assert_eq!(
        metrics.cache_hits
            + metrics.cache_misses
            + metrics.cache_coalesced
            + metrics.cache_warm_hits,
        submits,
        "the hit/miss/coalesced/warm ledger must balance the submits"
    );
    assert_eq!(metrics.cache_lookups(), submits);
    assert_eq!(metrics.decisions_computed, metrics.cache_misses);

    let stats = service.cache_stats();
    assert!(stats.occupancy_bytes <= budget);
    assert!(
        stats.evictions > 0,
        "a 10-entry budget under 100 Zipf keys must evict"
    );
    assert!(
        metrics.cache_hits + metrics.cache_coalesced > 0,
        "popular keys must still hit despite the churn"
    );
    // Pressure implies recomputation: more decisions than distinct keys.
    assert!(
        metrics.decisions_computed > KEYS as u64 / 2,
        "eviction pressure should force recomputation (got {})",
        metrics.decisions_computed
    );
}
