//! Cache persistence: an append-only, corruption-tolerant snapshot log.
//!
//! Cached Decide is 58–438× faster than uncached (BENCH_service.json), so
//! a restart that forgets the cache throws away the service's whole value
//! proposition until the chase re-warms it. This module gives the cache a
//! disk form:
//!
//! ```text
//! file   := header record*
//! header := magic "RBQASNAP" (8 bytes) | version u32 LE | flags u32 LE
//! record := fingerprint u128 LE | payload_len u32 LE | crc32 u32 LE | payload
//! ```
//!
//! The payload is a self-contained binary encoding of one cached decision
//! (summary + synthesized plans), with interned constants spelled out as
//! strings so a fresh process — with a fresh [`ValueFactory`] — can
//! re-intern them. Durability rules, in the spirit of [`ExportStore`]
//! (`export.rs`):
//!
//! * **Atomic replace** — writes go to a `.tmp` sibling, are fsynced, and
//!   renamed into place; a crash mid-save leaves the previous snapshot.
//! * **Never fatal** — a load skips damage record-by-record: a flipped
//!   byte fails that record's CRC (skip, continue), a truncated tail ends
//!   the scan (keep the prefix), an alien magic/version drops the whole
//!   file (start cold). Every skip is counted, none is an `Err`.
//! * **Compacted on load** — records are keyed by fingerprint and later
//!   records win, so appending is always safe and the in-memory form is
//!   the compacted one.
//!
//! [`ExportStore`]: crate::ExportStore

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

use rustc_hash::FxHashMap;

use rbqa_access::{Command, Condition, Plan, RaExpr};
use rbqa_common::{NullId, Value, ValueFactory};
use rbqa_core::{Answerability, ConstraintClass, DecisionSummary, SimplificationKind, Strategy};

/// File magic: identifies a cache snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"RBQASNAP";
/// Current snapshot format version. A mismatch skips the whole file.
pub const SNAPSHOT_VERSION: u32 = 1;

/// What a snapshot load or save touched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Records surviving after compaction (load) or written (save).
    pub records: usize,
    /// Records (or, on a header mismatch, whole files) skipped as damaged.
    pub skipped: usize,
    /// Size of the snapshot file in bytes.
    pub bytes: u64,
}

// --- CRC-32 (IEEE) ------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC-32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// --- Snapshot file I/O --------------------------------------------------

/// Writes a complete snapshot atomically (temp file + rename), one record
/// per `(fingerprint, payload)` pair.
pub fn write_snapshot(path: &Path, records: &[(u128, &[u8])]) -> io::Result<SnapshotStats> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut body =
        Vec::with_capacity(16 + records.iter().map(|(_, p)| 28 + p.len()).sum::<usize>());
    body.extend_from_slice(SNAPSHOT_MAGIC);
    body.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    body.extend_from_slice(&0u32.to_le_bytes());
    for (fingerprint, payload) in records {
        body.extend_from_slice(&fingerprint.to_le_bytes());
        body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        body.extend_from_slice(&crc32(payload).to_le_bytes());
        body.extend_from_slice(payload);
    }
    let tmp = path.with_extension("snap.tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&body)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(SnapshotStats {
        records: records.len(),
        skipped: 0,
        bytes: body.len() as u64,
    })
}

/// Loads and compacts a snapshot. Damage is skipped, never fatal: the
/// result is whatever prefix/records survive, plus counts of what didn't.
/// Only a missing-file or read error is an `Err` (callers treat a missing
/// snapshot as a cold start).
pub fn read_snapshot(path: &Path) -> io::Result<(FxHashMap<u128, Vec<u8>>, SnapshotStats)> {
    let mut bytes = Vec::new();
    fs::File::open(path)?.read_to_end(&mut bytes)?;
    let total = bytes.len() as u64;
    let mut records = FxHashMap::default();
    let mut skipped = 0usize;
    if bytes.len() < 16 || &bytes[..8] != SNAPSHOT_MAGIC {
        return Ok((
            records,
            SnapshotStats {
                records: 0,
                skipped: 1,
                bytes: total,
            },
        ));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != SNAPSHOT_VERSION {
        return Ok((
            records,
            SnapshotStats {
                records: 0,
                skipped: 1,
                bytes: total,
            },
        ));
    }
    let mut at = 16usize;
    while at < bytes.len() {
        if bytes.len() - at < 24 {
            // Truncated record header: keep the prefix.
            skipped += 1;
            break;
        }
        let fingerprint = u128::from_le_bytes(bytes[at..at + 16].try_into().unwrap());
        let len = u32::from_le_bytes(bytes[at + 16..at + 20].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[at + 20..at + 24].try_into().unwrap());
        at += 24;
        if bytes.len() - at < len {
            // Truncated payload: keep the prefix.
            skipped += 1;
            break;
        }
        let payload = &bytes[at..at + len];
        at += len;
        if crc32(payload) != crc {
            // A flipped byte inside one record loses that record only —
            // the length field still frames the next one.
            skipped += 1;
            continue;
        }
        records.insert(fingerprint, payload.to_vec());
    }
    let surviving = records.len();
    Ok((
        records,
        SnapshotStats {
            records: surviving,
            skipped,
            bytes: total,
        },
    ))
}

// --- Decision payload encoding ------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_indices(out: &mut Vec<u8>, indices: &[usize]) {
    put_u32(out, indices.len() as u32);
    for &i in indices {
        put_u32(out, i as u32);
    }
}

fn put_value(out: &mut Vec<u8>, value: Value, display: &dyn Fn(Value) -> String) {
    match value {
        Value::Const(_) => {
            out.push(0);
            put_str(out, &display(value));
        }
        Value::Null(id) => {
            out.push(1);
            put_u64(out, id.raw());
        }
    }
}

fn put_condition(out: &mut Vec<u8>, condition: &Condition, display: &dyn Fn(Value) -> String) {
    match condition {
        Condition::True => out.push(0),
        Condition::EqColumns(a, b) => {
            out.push(1);
            put_u32(out, *a as u32);
            put_u32(out, *b as u32);
        }
        Condition::EqConst(column, value) => {
            out.push(2);
            put_u32(out, *column as u32);
            put_value(out, *value, display);
        }
        Condition::And(left, right) => {
            out.push(3);
            put_condition(out, left, display);
            put_condition(out, right, display);
        }
    }
}

fn put_expr(out: &mut Vec<u8>, expr: &RaExpr, display: &dyn Fn(Value) -> String) {
    match expr {
        RaExpr::Table(name) => {
            out.push(0);
            put_str(out, name);
        }
        RaExpr::Constant { arity, rows } => {
            out.push(1);
            put_u32(out, *arity as u32);
            put_u32(out, rows.len() as u32);
            for row in rows {
                for &value in row {
                    put_value(out, value, display);
                }
            }
        }
        RaExpr::Select { input, condition } => {
            out.push(2);
            put_expr(out, input, display);
            put_condition(out, condition, display);
        }
        RaExpr::Project { input, columns } => {
            out.push(3);
            put_expr(out, input, display);
            put_indices(out, columns);
        }
        RaExpr::Join { left, right, on } => {
            out.push(4);
            put_expr(out, left, display);
            put_expr(out, right, display);
            put_u32(out, on.len() as u32);
            for &(l, r) in on {
                put_u32(out, l as u32);
                put_u32(out, r as u32);
            }
        }
        RaExpr::Union { left, right } => {
            out.push(5);
            put_expr(out, left, display);
            put_expr(out, right, display);
        }
    }
}

fn class_tag(class: ConstraintClass) -> u8 {
    match class {
        ConstraintClass::NoConstraints => 0,
        ConstraintClass::FdsOnly => 1,
        ConstraintClass::IdsOnly { .. } => 2,
        ConstraintClass::UidsAndFds => 3,
        ConstraintClass::FrontierGuardedTgds => 4,
        ConstraintClass::ArbitraryTgds => 5,
        ConstraintClass::Mixed => 6,
    }
}

/// Serializes one cached decision — summary plus plans — into a snapshot
/// record payload. `display` resolves interned constants to their spelling
/// (must be the factory the plans were built against).
pub fn encode_decision(
    summary: &DecisionSummary,
    plans: &[Arc<Plan>],
    display: &dyn Fn(Value) -> String,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(match summary.answerability {
        Answerability::Answerable => 0,
        Answerability::NotAnswerable => 1,
        Answerability::Unknown => 2,
    });
    out.push(class_tag(summary.constraint_class));
    put_u64(
        &mut out,
        match summary.constraint_class {
            ConstraintClass::IdsOnly { max_width } => max_width as u64,
            _ => 0,
        },
    );
    out.push(match summary.simplification {
        SimplificationKind::None => 0,
        SimplificationKind::ExistenceCheck => 1,
        SimplificationKind::Fd => 2,
        SimplificationKind::Choice => 3,
    });
    out.push(match summary.strategy {
        Strategy::IdLinearization => 0,
        Strategy::FdSimplificationChase => 1,
        Strategy::ChoiceSeparabilityChase => 2,
        Strategy::ChoiceChase => 3,
        Strategy::ForcedAxiomStyle => 4,
    });
    out.push(summary.complete as u8);
    put_u64(&mut out, summary.chase_rounds as u64);
    put_u64(&mut out, summary.chased_facts as u64);
    out.push(summary.has_plan as u8);
    put_u32(&mut out, plans.len() as u32);
    for plan in plans {
        put_str(&mut out, plan.output_table());
        put_u32(&mut out, plan.commands().len() as u32);
        for command in plan.commands() {
            match command {
                Command::Middleware { output, expr } => {
                    out.push(0);
                    put_str(&mut out, output);
                    put_expr(&mut out, expr, display);
                }
                Command::Access {
                    output,
                    method,
                    input,
                    input_map,
                    output_map,
                } => {
                    out.push(1);
                    put_str(&mut out, output);
                    put_str(&mut out, method);
                    put_expr(&mut out, input, display);
                    put_indices(&mut out, input_map);
                    put_indices(&mut out, output_map);
                }
            }
        }
    }
    out
}

/// Bounds-checked cursor over a record payload. Every getter returns
/// `None` past the end, so damaged payloads decode to `None`, never panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.bytes.len() - self.at < n {
            return None;
        }
        let slice = &self.bytes[self.at..self.at + n];
        self.at += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn indices(&mut self) -> Option<Vec<usize>> {
        let len = self.u32()? as usize;
        if len > self.bytes.len() - self.at {
            return None;
        }
        (0..len).map(|_| self.u32().map(|v| v as usize)).collect()
    }

    fn value(&mut self, values: &mut ValueFactory) -> Option<Value> {
        match self.u8()? {
            0 => Some(values.constant(&self.str()?)),
            1 => Some(Value::Null(NullId::from_raw(self.u64()?))),
            _ => None,
        }
    }

    fn condition(&mut self, values: &mut ValueFactory, depth: usize) -> Option<Condition> {
        if depth == 0 {
            return None;
        }
        match self.u8()? {
            0 => Some(Condition::True),
            1 => Some(Condition::EqColumns(
                self.u32()? as usize,
                self.u32()? as usize,
            )),
            2 => Some(Condition::EqConst(
                self.u32()? as usize,
                self.value(values)?,
            )),
            3 => Some(Condition::And(
                Box::new(self.condition(values, depth - 1)?),
                Box::new(self.condition(values, depth - 1)?),
            )),
            _ => None,
        }
    }

    fn expr(&mut self, values: &mut ValueFactory, depth: usize) -> Option<RaExpr> {
        if depth == 0 {
            return None;
        }
        match self.u8()? {
            0 => Some(RaExpr::Table(self.str()?)),
            1 => {
                let arity = self.u32()? as usize;
                let n_rows = self.u32()? as usize;
                if arity.saturating_mul(n_rows) > self.bytes.len() - self.at {
                    return None;
                }
                let mut rows = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    let mut row = Vec::with_capacity(arity);
                    for _ in 0..arity {
                        row.push(self.value(values)?);
                    }
                    rows.push(row);
                }
                Some(RaExpr::Constant { arity, rows })
            }
            2 => Some(RaExpr::Select {
                input: Box::new(self.expr(values, depth - 1)?),
                condition: self.condition(values, depth - 1)?,
            }),
            3 => Some(RaExpr::Project {
                input: Box::new(self.expr(values, depth - 1)?),
                columns: self.indices()?,
            }),
            4 => {
                let left = Box::new(self.expr(values, depth - 1)?);
                let right = Box::new(self.expr(values, depth - 1)?);
                let n = self.u32()? as usize;
                if n > self.bytes.len() - self.at {
                    return None;
                }
                let on = (0..n)
                    .map(|_| Some((self.u32()? as usize, self.u32()? as usize)))
                    .collect::<Option<Vec<_>>>()?;
                Some(RaExpr::Join { left, right, on })
            }
            5 => Some(RaExpr::Union {
                left: Box::new(self.expr(values, depth - 1)?),
                right: Box::new(self.expr(values, depth - 1)?),
            }),
            _ => None,
        }
    }
}

/// Maximum nesting of RA expressions / conditions a record may carry.
/// Synthesized plans are shallow; this only guards the decoder's stack
/// against adversarial payloads.
const MAX_DEPTH: usize = 64;

/// Deserializes a snapshot record payload back into a decision summary
/// and its plans, re-interning constants into `values`. Returns `None`
/// on any structural damage (the caller falls back to computing).
pub fn decode_decision(
    bytes: &[u8],
    values: &mut ValueFactory,
) -> Option<(DecisionSummary, Vec<Arc<Plan>>)> {
    let mut c = Cursor { bytes, at: 0 };
    let answerability = match c.u8()? {
        0 => Answerability::Answerable,
        1 => Answerability::NotAnswerable,
        2 => Answerability::Unknown,
        _ => return None,
    };
    let class_tag = c.u8()?;
    let max_width = c.u64()? as usize;
    let constraint_class = match class_tag {
        0 => ConstraintClass::NoConstraints,
        1 => ConstraintClass::FdsOnly,
        2 => ConstraintClass::IdsOnly { max_width },
        3 => ConstraintClass::UidsAndFds,
        4 => ConstraintClass::FrontierGuardedTgds,
        5 => ConstraintClass::ArbitraryTgds,
        6 => ConstraintClass::Mixed,
        _ => return None,
    };
    let simplification = match c.u8()? {
        0 => SimplificationKind::None,
        1 => SimplificationKind::ExistenceCheck,
        2 => SimplificationKind::Fd,
        3 => SimplificationKind::Choice,
        _ => return None,
    };
    let strategy = match c.u8()? {
        0 => Strategy::IdLinearization,
        1 => Strategy::FdSimplificationChase,
        2 => Strategy::ChoiceSeparabilityChase,
        3 => Strategy::ChoiceChase,
        4 => Strategy::ForcedAxiomStyle,
        _ => return None,
    };
    let complete = c.u8()? != 0;
    let chase_rounds = c.u64()? as usize;
    let chased_facts = c.u64()? as usize;
    let has_plan = c.u8()? != 0;
    let n_plans = c.u32()? as usize;
    if n_plans > bytes.len() {
        return None;
    }
    let mut plans = Vec::with_capacity(n_plans);
    for _ in 0..n_plans {
        let output_table = c.str()?;
        let n_commands = c.u32()? as usize;
        if n_commands > bytes.len() {
            return None;
        }
        let mut commands = Vec::with_capacity(n_commands);
        for _ in 0..n_commands {
            let command = match c.u8()? {
                0 => Command::Middleware {
                    output: c.str()?,
                    expr: c.expr(values, MAX_DEPTH)?,
                },
                1 => Command::Access {
                    output: c.str()?,
                    method: c.str()?,
                    input: c.expr(values, MAX_DEPTH)?,
                    input_map: c.indices()?,
                    output_map: c.indices()?,
                },
                _ => return None,
            };
            commands.push(command);
        }
        plans.push(Arc::new(Plan::new(commands, output_table)));
    }
    if c.at != bytes.len() {
        // Trailing garbage means the record is not what we wrote.
        return None;
    }
    let summary = DecisionSummary {
        answerability,
        constraint_class,
        simplification,
        strategy,
        complete,
        chase_rounds,
        chased_facts,
        has_plan,
    };
    Some((summary, plans))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> DecisionSummary {
        DecisionSummary {
            answerability: Answerability::Answerable,
            constraint_class: ConstraintClass::IdsOnly { max_width: 2 },
            simplification: SimplificationKind::ExistenceCheck,
            strategy: Strategy::IdLinearization,
            complete: true,
            chase_rounds: 7,
            chased_facts: 123,
            has_plan: true,
        }
    }

    fn sample_plan(values: &mut ValueFactory) -> Arc<Plan> {
        let c = values.constant("ada");
        Arc::new(Plan::new(
            vec![
                Command::Middleware {
                    output: "t0".into(),
                    expr: RaExpr::Constant {
                        arity: 1,
                        rows: vec![vec![c]],
                    },
                },
                Command::Access {
                    output: "t1".into(),
                    method: "mt".into(),
                    input: RaExpr::Select {
                        input: Box::new(RaExpr::Table("t0".into())),
                        condition: Condition::And(
                            Box::new(Condition::EqConst(0, c)),
                            Box::new(Condition::True),
                        ),
                    },
                    input_map: vec![0],
                    output_map: vec![0, 2],
                },
                Command::Middleware {
                    output: "t2".into(),
                    expr: RaExpr::Union {
                        left: Box::new(RaExpr::Project {
                            input: Box::new(RaExpr::Table("t1".into())),
                            columns: vec![1],
                        }),
                        right: Box::new(RaExpr::Project {
                            input: Box::new(RaExpr::Join {
                                left: Box::new(RaExpr::Table("t1".into())),
                                right: Box::new(RaExpr::Table("t0".into())),
                                on: vec![(0, 0)],
                            }),
                            columns: vec![2],
                        }),
                    },
                },
            ],
            "t2".into(),
        ))
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn decision_roundtrips_through_fresh_factory() {
        let mut values = ValueFactory::new();
        let summary = sample_summary();
        let plans = vec![sample_plan(&mut values)];
        let encoded = encode_decision(&summary, &plans, &|v| values.display(v));
        let mut fresh = ValueFactory::new();
        // Different interner state so re-interning must go by spelling.
        fresh.constant("zzz");
        let (decoded_summary, decoded_plans) =
            decode_decision(&encoded, &mut fresh).expect("decodes");
        assert_eq!(decoded_summary, summary);
        assert_eq!(decoded_plans.len(), 1);
        assert_eq!(decoded_plans[0].output_table(), "t2");
        assert_eq!(decoded_plans[0].commands().len(), 3);
        // The constant decoded by spelling, not by raw id.
        match &decoded_plans[0].commands()[0] {
            Command::Middleware {
                expr: RaExpr::Constant { rows, .. },
                ..
            } => assert_eq!(fresh.display(rows[0][0]), "ada"),
            other => panic!("unexpected command {other:?}"),
        }
        // Re-encoding from the fresh factory is stable.
        let re = encode_decision(&decoded_summary, &decoded_plans, &|v| fresh.display(v));
        assert_eq!(re, encoded);
    }

    #[test]
    fn damaged_payloads_decode_to_none() {
        let mut values = ValueFactory::new();
        let encoded = encode_decision(&sample_summary(), &[sample_plan(&mut values)], &|v| {
            values.display(v)
        });
        for cut in [0, 1, 5, encoded.len() / 2, encoded.len() - 1] {
            let mut fresh = ValueFactory::new();
            assert!(
                decode_decision(&encoded[..cut], &mut fresh).is_none(),
                "truncation at {cut} must not decode"
            );
        }
        let mut trailing = encoded.clone();
        trailing.push(0);
        assert!(decode_decision(&trailing, &mut ValueFactory::new()).is_none());
        let mut bad_tag = encoded.clone();
        bad_tag[0] = 9;
        assert!(decode_decision(&bad_tag, &mut ValueFactory::new()).is_none());
    }

    #[test]
    fn snapshot_file_roundtrip_compacts_last_record() {
        let dir = std::env::temp_dir().join(format!("rbqa-snap-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("cache.snap");
        let records: Vec<(u128, &[u8])> = vec![
            (1, b"one".as_slice()),
            (2, b"two".as_slice()),
            (1, b"one-newer".as_slice()),
        ];
        let written = write_snapshot(&path, &records).unwrap();
        assert_eq!(written.records, 3);
        let (loaded, stats) = read_snapshot(&path).unwrap();
        assert_eq!(stats.skipped, 0);
        assert_eq!(stats.records, 2, "compaction keeps one record per key");
        assert_eq!(loaded[&1], b"one-newer");
        assert_eq!(loaded[&2], b"two");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_skipped_never_fatal() {
        let dir = std::env::temp_dir().join(format!("rbqa-snap-corrupt-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.snap");
        let records: Vec<(u128, &[u8])> = vec![
            (10, b"alpha".as_slice()),
            (11, b"beta".as_slice()),
            (12, b"gamma".as_slice()),
        ];
        write_snapshot(&path, &records).unwrap();
        let pristine = fs::read(&path).unwrap();

        // Flip one payload byte of the middle record: that record fails
        // its CRC, the other two survive.
        let mut flipped = pristine.clone();
        let beta_at = flipped.windows(4).position(|w| w == b"beta").unwrap();
        flipped[beta_at] ^= 0xFF;
        fs::write(&path, &flipped).unwrap();
        let (loaded, stats) = read_snapshot(&path).unwrap();
        assert_eq!(stats.skipped, 1);
        assert_eq!(loaded.len(), 2);
        assert!(loaded.contains_key(&10) && loaded.contains_key(&12));

        // Truncate mid-way through the last record: the prefix survives.
        let truncated = &pristine[..pristine.len() - 3];
        fs::write(&path, truncated).unwrap();
        let (loaded, stats) = read_snapshot(&path).unwrap();
        assert_eq!(stats.skipped, 1);
        assert_eq!(loaded.len(), 2);

        // Bump the version header: the whole file is politely ignored.
        let mut versioned = pristine.clone();
        versioned[8] = versioned[8].wrapping_add(1);
        fs::write(&path, &versioned).unwrap();
        let (loaded, stats) = read_snapshot(&path).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(stats.skipped, 1);

        // Alien magic: same story.
        fs::write(&path, b"NOTASNAPshouldbeskipped").unwrap();
        let (loaded, stats) = read_snapshot(&path).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(stats.skipped, 1);

        // Missing file is the caller's cold-start signal.
        let _ = fs::remove_dir_all(&dir);
        assert!(read_snapshot(&path).is_err());
    }
}
