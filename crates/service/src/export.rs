//! File-backed result exports (the "object store" of the Query Service
//! contract).
//!
//! Interactive responses inline small row sets; anything over the
//! session's `inline_row_limit`/`inline_byte_limit` is written to an
//! [`ExportStore`] directory instead and the wire response carries an
//! `output_location` handle. The store is deliberately dumb: a
//! directory, a monotone sequence number, and atomic single-file writes
//! (temp file + rename), so a reader never observes a half-written
//! export. Garbage collection is the operator's business — exports are
//! the *large* results, and when to delete them is a retention policy,
//! not a protocol concern.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A directory of exported result files plus the counters the server
/// reports about it.
#[derive(Debug)]
pub struct ExportStore {
    dir: PathBuf,
    seq: AtomicU64,
    exports_written: AtomicU64,
    bytes_written: AtomicU64,
}

/// Receipt for one export: where it went and how big it was.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportHandle {
    /// Absolute path of the export file — the wire `output_location`.
    pub location: String,
    /// Number of result rows in the file.
    pub rows: usize,
    /// Size of the file in bytes.
    pub bytes: usize,
}

impl ExportStore {
    /// Opens (creating if needed) an export store rooted at `dir`.
    pub fn create(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ExportStore {
            dir,
            seq: AtomicU64::new(0),
            exports_written: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes one exported result document and returns its handle.
    ///
    /// `tag` distinguishes the producer (e.g. `res` for interactive
    /// overflows, `q17` for batch query 17) and may only contain
    /// `[A-Za-z0-9_-]`; `body` is the complete file content (the wire
    /// layer renders the export document, the store only persists it).
    /// The write is atomic: content goes to a `.tmp` sibling first and is
    /// renamed into place.
    pub fn write_export(&self, tag: &str, body: &str, rows: usize) -> io::Result<ExportHandle> {
        if tag.is_empty()
            || !tag
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("invalid export tag `{tag}`"),
            ));
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let name = format!("{tag}-{seq:06}.json");
        let path = self.dir.join(&name);
        let tmp = self.dir.join(format!("{name}.tmp"));
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(body.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        self.exports_written.fetch_add(1, Ordering::Relaxed);
        self.bytes_written
            .fetch_add(body.len() as u64, Ordering::Relaxed);
        Ok(ExportHandle {
            location: path.to_string_lossy().into_owned(),
            rows,
            bytes: body.len(),
        })
    }

    /// Reads back the content of an export by its `output_location`.
    /// A convenience for clients and tests; any file reader works — the
    /// location is a plain path.
    pub fn read_location(location: &str) -> io::Result<String> {
        fs::read_to_string(location)
    }

    /// Exports written over the store's lifetime.
    pub fn exports_written(&self) -> u64 {
        self.exports_written.load(Ordering::Relaxed)
    }

    /// Total bytes written over the store's lifetime.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(label: &str) -> ExportStore {
        let dir =
            std::env::temp_dir().join(format!("rbqa-export-test-{}-{label}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ExportStore::create(&dir).expect("create store")
    }

    #[test]
    fn exports_are_sequenced_and_readable() {
        let store = temp_store("seq");
        let a = store.write_export("res", "{\"rows\":[[1]]}", 1).unwrap();
        let b = store.write_export("q7", "{\"rows\":[[2],[3]]}", 2).unwrap();
        assert!(a.location.ends_with("res-000000.json"), "{}", a.location);
        assert!(b.location.ends_with("q7-000001.json"), "{}", b.location);
        assert_eq!(
            ExportStore::read_location(&a.location).unwrap(),
            "{\"rows\":[[1]]}"
        );
        assert_eq!(b.rows, 2);
        assert_eq!(b.bytes, "{\"rows\":[[2],[3]]}".len());
        assert_eq!(store.exports_written(), 2);
        assert_eq!(store.bytes_written(), (a.bytes + b.bytes) as u64);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn no_tmp_files_survive_a_write() {
        let store = temp_store("tmp");
        store.write_export("res", "{}", 0).unwrap();
        let leftovers: Vec<_> = fs::read_dir(store.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn bad_tags_are_rejected() {
        let store = temp_store("tag");
        assert!(store.write_export("", "{}", 0).is_err());
        assert!(store.write_export("../evil", "{}", 0).is_err());
        assert!(store.write_export("a/b", "{}", 0).is_err());
        let _ = fs::remove_dir_all(store.dir());
    }
}
