//! A sharded, single-flight decision cache.
//!
//! The cache maps [`Fingerprint`]s to `Arc`-shared values. Two properties
//! matter for the service (DESIGN.md §6):
//!
//! * **Sharding** — the key space is split across `N` independent locks so
//!   concurrent requests for *different* fingerprints never contend on one
//!   mutex. The shard index is taken from the fingerprint's high bits
//!   (FNV output is well mixed).
//! * **Single-flight** — when several threads miss on the *same*
//!   fingerprint simultaneously, exactly one runs the (expensive, chase-
//!   driving) compute closure; the rest block on the shard's condvar and
//!   receive the same `Arc`. This is what makes "a concurrent batch of
//!   identical requests performs exactly one chase" a guarantee rather
//!   than a likelihood.

use std::sync::{Arc, Condvar, Mutex};

use rustc_hash::FxHashMap;

use crate::fingerprint::Fingerprint;

/// How a lookup was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The value was already cached.
    Hit,
    /// This caller computed the value.
    Miss,
    /// Another caller was computing the value; this caller waited for it.
    Coalesced,
}

enum Entry<V> {
    /// Some thread is computing the value.
    InFlight,
    /// The value is available.
    Ready(Arc<V>),
}

struct Shard<V> {
    map: Mutex<FxHashMap<u128, Entry<V>>>,
    cond: Condvar,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            map: Mutex::new(FxHashMap::default()),
            cond: Condvar::new(),
        }
    }
}

/// Removes the in-flight marker if the compute closure panics, so waiters
/// retry instead of blocking forever.
struct InFlightGuard<'a, V> {
    shard: &'a Shard<V>,
    key: u128,
    done: bool,
}

impl<V> Drop for InFlightGuard<'_, V> {
    fn drop(&mut self) {
        if !self.done {
            let mut map = self.shard.map.lock().expect("cache shard poisoned");
            if matches!(map.get(&self.key), Some(Entry::InFlight)) {
                map.remove(&self.key);
            }
            self.shard.cond.notify_all();
        }
    }
}

/// Sharded single-flight cache keyed by [`Fingerprint`].
pub struct ShardedCache<V> {
    shards: Vec<Shard<V>>,
}

impl<V> ShardedCache<V> {
    /// A cache with `shards` independent lock domains (minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        ShardedCache {
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
        }
    }

    /// A cache with the default shard count (16).
    pub fn new() -> Self {
        Self::with_shards(16)
    }

    fn shard(&self, key: Fingerprint) -> &Shard<V> {
        let index = (key.0 >> 64) as usize % self.shards.len();
        &self.shards[index]
    }

    /// Number of cached (ready) entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.map
                    .lock()
                    .expect("cache shard poisoned")
                    .values()
                    .filter(|e| matches!(e, Entry::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// Whether no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Looks up `key` without computing.
    pub fn get(&self, key: Fingerprint) -> Option<Arc<V>> {
        let shard = self.shard(key);
        let map = shard.map.lock().expect("cache shard poisoned");
        match map.get(&key.0) {
            Some(Entry::Ready(v)) => Some(Arc::clone(v)),
            _ => None,
        }
    }

    /// Returns the cached value for `key`, or computes it with `compute`.
    ///
    /// The closure runs **without** any shard lock held, so long decisions
    /// never block unrelated lookups; the in-flight marker keeps duplicate
    /// work out.
    pub fn get_or_compute<F: FnOnce() -> V>(
        &self,
        key: Fingerprint,
        compute: F,
    ) -> (Arc<V>, CacheOutcome) {
        let shard = self.shard(key);
        {
            let mut map = shard.map.lock().expect("cache shard poisoned");
            loop {
                match map.get(&key.0) {
                    Some(Entry::Ready(v)) => return (Arc::clone(v), CacheOutcome::Hit),
                    Some(Entry::InFlight) => {
                        map = shard.cond.wait(map).expect("cache shard poisoned");
                        // On wake the entry is Ready, or was removed by a
                        // panicking computer — in the latter case fall
                        // through and compute here.
                        if let std::collections::hash_map::Entry::Vacant(e) = map.entry(key.0) {
                            e.insert(Entry::InFlight);
                            break;
                        }
                        match map.get(&key.0) {
                            Some(Entry::Ready(v)) => {
                                return (Arc::clone(v), CacheOutcome::Coalesced)
                            }
                            _ => continue,
                        }
                    }
                    None => {
                        map.insert(key.0, Entry::InFlight);
                        break;
                    }
                }
            }
        }
        // This thread owns the computation.
        let mut guard = InFlightGuard {
            shard,
            key: key.0,
            done: false,
        };
        let value = Arc::new(compute());
        guard.done = true;
        let mut map = shard.map.lock().expect("cache shard poisoned");
        map.insert(key.0, Entry::Ready(Arc::clone(&value)));
        shard.cond.notify_all();
        drop(map);
        (value, CacheOutcome::Miss)
    }

    /// Drops every cached entry (in-flight computations are unaffected:
    /// their results are re-inserted when they finish).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard
                .map
                .lock()
                .expect("cache shard poisoned")
                .retain(|_, e| matches!(e, Entry::InFlight));
        }
    }
}

impl<V> Default for ShardedCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn fp(n: u128) -> Fingerprint {
        Fingerprint(n << 64 | n)
    }

    #[test]
    fn miss_then_hit() {
        let cache: ShardedCache<String> = ShardedCache::new();
        let (v, outcome) = cache.get_or_compute(fp(1), || "x".to_owned());
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(*v, "x");
        let (v2, outcome2) = cache.get_or_compute(fp(1), || unreachable!("must be cached"));
        assert_eq!(outcome2, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&v, &v2));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(fp(1)).is_some());
        assert!(cache.get(fp(2)).is_none());
    }

    #[test]
    fn concurrent_identical_keys_compute_once() {
        let cache: Arc<ShardedCache<u64>> = Arc::new(ShardedCache::new());
        let computations = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..16)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let computations = Arc::clone(&computations);
                std::thread::spawn(move || {
                    let (v, _) = cache.get_or_compute(fp(7), || {
                        computations.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        42
                    });
                    *v
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), 42);
        }
        assert_eq!(computations.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_land_in_shards() {
        let cache: ShardedCache<u128> = ShardedCache::with_shards(4);
        for i in 0..64u128 {
            cache.get_or_compute(Fingerprint(i << 64), || i);
        }
        assert_eq!(cache.len(), 64);
        assert_eq!(cache.shard_count(), 4);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn panicking_compute_releases_waiters() {
        let cache: Arc<ShardedCache<u64>> = Arc::new(ShardedCache::new());
        let c1 = Arc::clone(&cache);
        let panicker = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c1.get_or_compute(fp(9), || panic!("boom"));
            }));
            assert!(result.is_err());
        });
        panicker.join().unwrap();
        // The key is free again: a later caller computes normally.
        let (v, outcome) = cache.get_or_compute(fp(9), || 5);
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(*v, 5);
    }
}
