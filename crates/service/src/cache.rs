//! A sharded, single-flight decision cache with a byte budget.
//!
//! The cache maps [`Fingerprint`]s to `Arc`-shared values. Three properties
//! matter for the service (DESIGN.md §6, ARCHITECTURE.md "Cache
//! discipline"):
//!
//! * **Sharding** — the key space is split across `N` independent locks so
//!   concurrent requests for *different* fingerprints never contend on one
//!   mutex. The shard index is taken from the fingerprint's high bits
//!   (FNV output is well mixed).
//! * **Single-flight** — when several threads miss on the *same*
//!   fingerprint simultaneously, exactly one runs the (expensive, chase-
//!   driving) compute closure; the rest block on the shard's condvar and
//!   receive the same `Arc`. This is what makes "a concurrent batch of
//!   identical requests performs exactly one chase" a guarantee rather
//!   than a likelihood.
//! * **Bounded residency** — every resident entry carries an approximate
//!   byte cost (from a pluggable cost function) and the sum is capped by a
//!   runtime-adjustable budget. Residency is claimed through a
//!   reservation ([`rbqa_obs::Gauge::try_add_within`]) *before* the entry
//!   is inserted, so occupancy provably never exceeds the budget — there
//!   is no window where the cache is over budget and "catching up".
//!   Eviction is size-weighted LRU: the globally least-recently-touched
//!   `Ready` entry goes first; `InFlight` markers are never evictable
//!   (evicting one would strand its condvar waiters). A value that cannot
//!   fit even after eviction is served to the caller but not kept
//!   (counted as `uncacheable`), so a tiny budget degrades to a
//!   pass-through cache instead of deadlocking or thrashing.
//!
//! Eviction takes one shard lock at a time (scan, then re-lock the
//! victim's shard and re-check its stamp), so it can never deadlock with
//! lookups or with itself.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use rbqa_obs::Gauge;
use rustc_hash::FxHashMap;

use crate::fingerprint::Fingerprint;

/// How a lookup was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The value was already cached.
    Hit,
    /// This caller computed the value.
    Miss,
    /// Another caller was computing the value; this caller waited for it.
    Coalesced,
}

enum Entry<V> {
    /// Some thread is computing the value. Never evicted.
    InFlight,
    /// The value is resident: its reserved byte cost and last-touch stamp.
    Ready {
        value: Arc<V>,
        cost: u64,
        stamp: u64,
    },
}

struct Shard<V> {
    map: Mutex<FxHashMap<u128, Entry<V>>>,
    cond: Condvar,
}

impl<V> Default for Shard<V> {
    fn default() -> Self {
        Shard {
            map: Mutex::new(FxHashMap::default()),
            cond: Condvar::new(),
        }
    }
}

/// Removes the in-flight marker if the compute closure panics, so waiters
/// retry instead of blocking forever.
struct InFlightGuard<'a, V> {
    shard: &'a Shard<V>,
    key: u128,
    done: bool,
}

impl<V> Drop for InFlightGuard<'_, V> {
    fn drop(&mut self) {
        if !self.done {
            let mut map = self.shard.map.lock().expect("cache shard poisoned");
            if matches!(map.get(&self.key), Some(Entry::InFlight)) {
                map.remove(&self.key);
            }
            self.shard.cond.notify_all();
        }
    }
}

/// Approximates the resident byte cost of a value.
pub type CostFn<V> = Box<dyn Fn(&V) -> usize + Send + Sync>;

/// Point-in-time view of the cache's budget discipline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Configured byte budget; `None` means unbounded.
    pub budget_bytes: Option<u64>,
    /// Bytes currently reserved by resident entries.
    pub occupancy_bytes: u64,
    /// Resident (`Ready`) entries.
    pub entries: u64,
    /// Entries evicted to make room since startup.
    pub evictions: u64,
    /// Bytes released by those evictions.
    pub bytes_evicted: u64,
    /// Computed values served but not kept (no room even after eviction).
    pub uncacheable: u64,
}

/// Sharded single-flight cache keyed by [`Fingerprint`], with size-weighted
/// LRU eviction against a runtime-adjustable byte budget.
pub struct ShardedCache<V> {
    shards: Vec<Shard<V>>,
    /// Byte budget; `u64::MAX` means unbounded.
    budget: AtomicU64,
    /// Bytes reserved by resident entries (the eviction invariant:
    /// `occupancy <= budget`, enforced by reservation before insert).
    occupancy: Gauge,
    /// Resident entry count.
    entries: Gauge,
    /// Monotone LRU clock; every touch stamps the entry with a fresh tick.
    tick: AtomicU64,
    evictions: AtomicU64,
    bytes_evicted: AtomicU64,
    uncacheable: AtomicU64,
    cost_fn: CostFn<V>,
}

impl<V> std::fmt::Debug for ShardedCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl<V> ShardedCache<V> {
    /// A cache with `shards` independent lock domains (minimum 1),
    /// unbounded, with the default (size-of) cost function.
    pub fn with_shards(shards: usize) -> Self {
        ShardedCache {
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
            budget: AtomicU64::new(u64::MAX),
            occupancy: Gauge::new(),
            entries: Gauge::new(),
            tick: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            bytes_evicted: AtomicU64::new(0),
            uncacheable: AtomicU64::new(0),
            cost_fn: Box::new(|_| std::mem::size_of::<V>().max(1)),
        }
    }

    /// A cache with the default shard count (16).
    pub fn new() -> Self {
        Self::with_shards(16)
    }

    /// Replaces the per-entry cost function. Builder-style: call before
    /// the cache holds entries, or occupancy accounting goes stale.
    pub fn with_cost_fn(mut self, cost_fn: CostFn<V>) -> Self {
        self.cost_fn = cost_fn;
        self
    }

    /// Sets the initial byte budget (`None` = unbounded). Builder-style.
    pub fn with_budget(self, budget: Option<u64>) -> Self {
        self.set_budget(budget);
        self
    }

    fn shard(&self, key: Fingerprint) -> &Shard<V> {
        let index = (key.0 >> 64) as usize % self.shards.len();
        &self.shards[index]
    }

    fn next_stamp(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of cached (ready) entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.map
                    .lock()
                    .expect("cache shard poisoned")
                    .values()
                    .filter(|e| matches!(e, Entry::Ready { .. }))
                    .count()
            })
            .sum()
    }

    /// Whether no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured byte budget; `None` means unbounded.
    pub fn budget(&self) -> Option<u64> {
        match self.budget.load(Ordering::Relaxed) {
            u64::MAX => None,
            bytes => Some(bytes),
        }
    }

    /// Re-points the byte budget at runtime. Shrinking below current
    /// occupancy evicts (LRU-first) until the cache fits again.
    pub fn set_budget(&self, budget: Option<u64>) {
        let cap = budget.unwrap_or(u64::MAX);
        self.budget.store(cap, Ordering::Relaxed);
        while self.occupancy.value() > cap {
            if !self.evict_one() {
                break;
            }
        }
    }

    /// Budget-discipline counters at a point in time.
    pub fn stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            budget_bytes: self.budget(),
            occupancy_bytes: self.occupancy.value(),
            entries: self.entries.value(),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_evicted: self.bytes_evicted.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
        }
    }

    /// Looks up `key` without computing. A hit refreshes the entry's LRU
    /// stamp, same as [`Self::get_or_compute`].
    pub fn get(&self, key: Fingerprint) -> Option<Arc<V>> {
        let shard = self.shard(key);
        let mut map = shard.map.lock().expect("cache shard poisoned");
        match map.get_mut(&key.0) {
            Some(Entry::Ready { value, stamp, .. }) => {
                *stamp = self.next_stamp();
                Some(Arc::clone(value))
            }
            _ => None,
        }
    }

    /// Copies out every resident entry — the persistence layer's view of
    /// what is worth snapshotting. In-flight computations are skipped.
    pub fn ready_entries(&self) -> Vec<(Fingerprint, Arc<V>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let map = shard.map.lock().expect("cache shard poisoned");
            for (&key, entry) in map.iter() {
                if let Entry::Ready { value, .. } = entry {
                    out.push((Fingerprint(key), Arc::clone(value)));
                }
            }
        }
        out
    }

    /// Returns the cached value for `key`, or computes it with `compute`.
    ///
    /// The closure runs **without** any shard lock held, so long decisions
    /// never block unrelated lookups; the in-flight marker keeps duplicate
    /// work out. The computed value is returned to the caller even when
    /// the budget has no room for it — residency is best-effort, the
    /// answer is not.
    pub fn get_or_compute<F: FnOnce() -> V>(
        &self,
        key: Fingerprint,
        compute: F,
    ) -> (Arc<V>, CacheOutcome) {
        let shard = self.shard(key);
        {
            let mut map = shard.map.lock().expect("cache shard poisoned");
            loop {
                match map.get_mut(&key.0) {
                    Some(Entry::Ready { value, stamp, .. }) => {
                        *stamp = self.next_stamp();
                        return (Arc::clone(value), CacheOutcome::Hit);
                    }
                    Some(Entry::InFlight) => {
                        map = shard.cond.wait(map).expect("cache shard poisoned");
                        // On wake the entry is Ready, or was removed by a
                        // panicking (or budget-starved) computer — in the
                        // latter case fall through and compute here.
                        if let std::collections::hash_map::Entry::Vacant(e) = map.entry(key.0) {
                            e.insert(Entry::InFlight);
                            break;
                        }
                        match map.get_mut(&key.0) {
                            Some(Entry::Ready { value, stamp, .. }) => {
                                *stamp = self.next_stamp();
                                return (Arc::clone(value), CacheOutcome::Coalesced);
                            }
                            _ => continue,
                        }
                    }
                    None => {
                        map.insert(key.0, Entry::InFlight);
                        break;
                    }
                }
            }
        }
        // This thread owns the computation.
        let mut guard = InFlightGuard {
            shard,
            key: key.0,
            done: false,
        };
        let value = Arc::new(compute());
        guard.done = true;
        self.finish(shard, key.0, &value);
        (value, CacheOutcome::Miss)
    }

    /// Fallible twin of [`Self::get_or_compute`]: the closure may fail,
    /// and a failed computation **vacates** the in-flight slot instead of
    /// caching anything — the error goes to this caller, waiters wake and
    /// retry (or take over), and the next identical request starts fresh.
    /// This is the cache-slot cancellation rule: a deadline-aborted or
    /// otherwise failed compute behaves exactly like a panicking one
    /// (whose slot the internal in-flight guard already vacates), so
    /// errors can
    /// never poison the slot or get cached as answers.
    ///
    /// Waiters additionally bound their condvar wait by the ambient
    /// request deadline ([`rbqa_obs::deadline_remaining`]): a waiter
    /// whose own deadline expires while another caller's computation is
    /// still running gives up with `on_timeout()` instead of blocking to
    /// completion — an un-deadlined computer cannot starve a deadlined
    /// waiter.
    pub fn get_or_try_compute<E>(
        &self,
        key: Fingerprint,
        compute: impl FnOnce() -> Result<V, E>,
        on_timeout: impl Fn() -> E,
    ) -> Result<(Arc<V>, CacheOutcome), E> {
        let shard = self.shard(key);
        {
            let mut map = shard.map.lock().expect("cache shard poisoned");
            loop {
                match map.get_mut(&key.0) {
                    Some(Entry::Ready { value, stamp, .. }) => {
                        *stamp = self.next_stamp();
                        return Ok((Arc::clone(value), CacheOutcome::Hit));
                    }
                    Some(Entry::InFlight) => {
                        match rbqa_obs::deadline_remaining() {
                            None => {
                                map = shard.cond.wait(map).expect("cache shard poisoned");
                            }
                            Some(remaining) if remaining.is_zero() => {
                                rbqa_obs::counters::add_deadline_expiry();
                                return Err(on_timeout());
                            }
                            Some(remaining) => {
                                let (m, _timeout) = shard
                                    .cond
                                    .wait_timeout(map, remaining)
                                    .expect("cache shard poisoned");
                                map = m;
                                // Expired while waiting and the slot is
                                // still in flight: give up. (A Ready or
                                // vacated slot is still taken below even
                                // at the deadline — the value is free.)
                                if rbqa_obs::deadline_expired()
                                    && matches!(map.get(&key.0), Some(Entry::InFlight))
                                {
                                    rbqa_obs::counters::add_deadline_expiry();
                                    return Err(on_timeout());
                                }
                            }
                        }
                        // On wake the entry is Ready, or was removed by a
                        // failing/panicking computer — then take over.
                        if let std::collections::hash_map::Entry::Vacant(e) = map.entry(key.0) {
                            e.insert(Entry::InFlight);
                            break;
                        }
                        match map.get_mut(&key.0) {
                            Some(Entry::Ready { value, stamp, .. }) => {
                                *stamp = self.next_stamp();
                                return Ok((Arc::clone(value), CacheOutcome::Coalesced));
                            }
                            _ => continue,
                        }
                    }
                    None => {
                        map.insert(key.0, Entry::InFlight);
                        break;
                    }
                }
            }
        }
        // This thread owns the computation. On `Err` the guard's Drop
        // removes the in-flight marker and wakes every waiter.
        let mut guard = InFlightGuard {
            shard,
            key: key.0,
            done: false,
        };
        match compute() {
            Ok(value) => {
                let value = Arc::new(value);
                guard.done = true;
                self.finish(shard, key.0, &value);
                Ok((value, CacheOutcome::Miss))
            }
            Err(err) => Err(err),
        }
    }

    /// Installs a freshly computed value (or releases its in-flight marker
    /// when the budget refuses it), waking all waiters either way.
    fn finish(&self, shard: &Shard<V>, key: u128, value: &Arc<V>) {
        let cost = (self.cost_fn)(value) as u64;
        if self.reserve(cost) {
            let stamp = self.next_stamp();
            let mut map = shard.map.lock().expect("cache shard poisoned");
            let old = map.insert(
                key,
                Entry::Ready {
                    value: Arc::clone(value),
                    cost,
                    stamp,
                },
            );
            self.entries.inc();
            if let Some(Entry::Ready { cost: old_cost, .. }) = old {
                // Defensive: an owner replacing a Ready entry cannot happen
                // under the in-flight protocol, but keep accounting honest.
                self.occupancy.sub(old_cost);
                self.entries.dec();
            }
            shard.cond.notify_all();
        } else {
            // No room even after eviction (or the value alone exceeds the
            // budget): serve it uncached. Waiters waking to a vacant slot
            // take over the computation themselves, so this terminates
            // even at budget zero.
            self.uncacheable.fetch_add(1, Ordering::Relaxed);
            let mut map = shard.map.lock().expect("cache shard poisoned");
            if matches!(map.get(&key), Some(Entry::InFlight)) {
                map.remove(&key);
            }
            shard.cond.notify_all();
        }
    }

    /// Claims `cost` bytes of residency, evicting LRU entries until the
    /// reservation fits. Returns `false` if it can never fit (the value is
    /// larger than the whole budget, or eviction ran out of victims).
    fn reserve(&self, cost: u64) -> bool {
        loop {
            let budget = self.budget.load(Ordering::Relaxed);
            if cost > budget {
                // Oversized for the whole budget: refuse before evicting
                // everything else in a doomed attempt to make room.
                return false;
            }
            if self.occupancy.try_add_within(cost, budget) {
                return true;
            }
            if !self.evict_one() {
                return false;
            }
        }
    }

    /// Evicts the least-recently-touched `Ready` entry across all shards.
    /// Locks one shard at a time: scan for the global minimum stamp, then
    /// re-lock the victim's shard and remove it only if its stamp is
    /// unchanged (a concurrent touch revokes the candidacy). Returns
    /// `false` only when no `Ready` entry exists anywhere.
    fn evict_one(&self) -> bool {
        let mut victim: Option<(usize, u128, u64)> = None;
        for (index, shard) in self.shards.iter().enumerate() {
            let map = shard.map.lock().expect("cache shard poisoned");
            for (&key, entry) in map.iter() {
                if let Entry::Ready { stamp, .. } = entry {
                    if victim.is_none_or(|(_, _, best)| *stamp < best) {
                        victim = Some((index, key, *stamp));
                    }
                }
            }
        }
        let Some((index, key, stamp)) = victim else {
            return false;
        };
        let shard = &self.shards[index];
        let mut map = shard.map.lock().expect("cache shard poisoned");
        match map.get(&key) {
            Some(Entry::Ready {
                stamp: current,
                cost,
                ..
            }) if *current == stamp => {
                let cost = *cost;
                map.remove(&key);
                self.occupancy.sub(cost);
                self.entries.dec();
                self.evictions.fetch_add(1, Ordering::Relaxed);
                self.bytes_evicted.fetch_add(cost, Ordering::Relaxed);
                true
            }
            // Touched or removed between scan and re-lock; report progress
            // so the caller rescans with fresh stamps.
            _ => true,
        }
    }

    /// Drops every cached entry (in-flight computations are unaffected:
    /// their results are re-inserted when they finish).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard
                .map
                .lock()
                .expect("cache shard poisoned")
                .retain(|_, e| match e {
                    Entry::InFlight => true,
                    Entry::Ready { cost, .. } => {
                        self.occupancy.sub(*cost);
                        self.entries.dec();
                        false
                    }
                });
        }
    }
}

impl<V> Default for ShardedCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn fp(n: u128) -> Fingerprint {
        Fingerprint(n << 64 | n)
    }

    /// A cache where each `Vec<u8>` costs its length in bytes.
    fn sized_cache(shards: usize, budget: u64) -> ShardedCache<Vec<u8>> {
        ShardedCache::with_shards(shards)
            .with_cost_fn(Box::new(|v: &Vec<u8>| v.len()))
            .with_budget(Some(budget))
    }

    #[test]
    fn miss_then_hit() {
        let cache: ShardedCache<String> = ShardedCache::new();
        let (v, outcome) = cache.get_or_compute(fp(1), || "x".to_owned());
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(*v, "x");
        let (v2, outcome2) = cache.get_or_compute(fp(1), || unreachable!("must be cached"));
        assert_eq!(outcome2, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&v, &v2));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(fp(1)).is_some());
        assert!(cache.get(fp(2)).is_none());
    }

    #[test]
    fn concurrent_identical_keys_compute_once() {
        let cache: Arc<ShardedCache<u64>> = Arc::new(ShardedCache::new());
        let computations = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..16)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let computations = Arc::clone(&computations);
                std::thread::spawn(move || {
                    let (v, _) = cache.get_or_compute(fp(7), || {
                        computations.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        42
                    });
                    *v
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), 42);
        }
        assert_eq!(computations.load(Ordering::SeqCst), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_land_in_shards() {
        let cache: ShardedCache<u128> = ShardedCache::with_shards(4);
        for i in 0..64u128 {
            cache.get_or_compute(Fingerprint(i << 64), || i);
        }
        assert_eq!(cache.len(), 64);
        assert_eq!(cache.shard_count(), 4);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().occupancy_bytes, 0);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn panicking_compute_releases_waiters() {
        let cache: Arc<ShardedCache<u64>> = Arc::new(ShardedCache::new());
        let c1 = Arc::clone(&cache);
        let panicker = std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                c1.get_or_compute(fp(9), || panic!("boom"));
            }));
            assert!(result.is_err());
        });
        panicker.join().unwrap();
        // The key is free again: a later caller computes normally.
        let (v, outcome) = cache.get_or_compute(fp(9), || 5);
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(*v, 5);
    }

    #[test]
    fn failed_compute_vacates_the_slot() {
        let cache: ShardedCache<u64> = ShardedCache::new();
        let err = cache
            .get_or_try_compute(fp(11), || Err::<u64, &str>("boom"), || "timeout")
            .unwrap_err();
        assert_eq!(err, "boom");
        assert!(cache.get(fp(11)).is_none(), "no poisoned slot");
        // The key is free: a later caller computes and caches normally.
        let (v, outcome) = cache
            .get_or_try_compute(fp(11), || Ok::<u64, &str>(5), || "timeout")
            .unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(*v, 5);
        assert!(cache.get(fp(11)).is_some());
    }

    #[test]
    fn failing_compute_releases_waiters_to_take_over() {
        let cache: Arc<ShardedCache<u64>> = Arc::new(ShardedCache::new());
        let c1 = Arc::clone(&cache);
        let failer = std::thread::spawn(move || {
            c1.get_or_try_compute(
                fp(12),
                || {
                    std::thread::sleep(std::time::Duration::from_millis(40));
                    Err::<u64, &str>("flaky")
                },
                || "timeout",
            )
            .unwrap_err()
        });
        // Give the failer time to claim the slot, then pile on waiters.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    let (v, _) = cache
                        .get_or_try_compute(fp(12), || Ok::<u64, &str>(77), || "timeout")
                        .unwrap();
                    *v
                })
            })
            .collect();
        assert_eq!(failer.join().unwrap(), "flaky");
        for w in waiters {
            assert_eq!(w.join().unwrap(), 77, "waiters recover after the failure");
        }
    }

    #[test]
    fn deadlined_waiter_gives_up_while_compute_runs() {
        let cache: Arc<ShardedCache<u64>> = Arc::new(ShardedCache::new());
        let c1 = Arc::clone(&cache);
        let computer = std::thread::spawn(move || {
            c1.get_or_try_compute(
                fp(13),
                || {
                    std::thread::sleep(std::time::Duration::from_millis(150));
                    Ok::<u64, &str>(1)
                },
                || "timeout",
            )
            .unwrap()
            .1
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        // A waiter with a 20ms deadline must not block the full 150ms.
        let _guard = rbqa_obs::arm_deadline(std::time::Duration::from_millis(20));
        let started = std::time::Instant::now();
        let err = cache
            .get_or_try_compute(fp(13), || Ok::<u64, &str>(2), || "timeout")
            .unwrap_err();
        assert_eq!(err, "timeout");
        assert!(
            started.elapsed() < std::time::Duration::from_millis(120),
            "the waiter must give up at its deadline, not at compute completion"
        );
        assert_eq!(computer.join().unwrap(), CacheOutcome::Miss);
        drop(_guard);
        assert!(cache.get(fp(13)).is_some(), "the computer still caches");
    }

    #[test]
    fn unbounded_by_default() {
        let cache: ShardedCache<Vec<u8>> = ShardedCache::new();
        assert_eq!(cache.budget(), None);
        assert_eq!(cache.stats().budget_bytes, None);
    }

    #[test]
    fn eviction_holds_budget_and_prefers_lru() {
        let cache = sized_cache(1, 100);
        for i in 0..10u128 {
            cache.get_or_compute(fp(i), || vec![0u8; 20]);
        }
        let stats = cache.stats();
        assert!(stats.occupancy_bytes <= 100, "{stats:?}");
        assert_eq!(stats.entries, 5);
        assert_eq!(stats.evictions, 5);
        assert_eq!(stats.bytes_evicted, 100);
        // The five oldest (0..5) were evicted; 5..10 survive.
        for i in 0..5u128 {
            assert!(cache.get(fp(i)).is_none(), "key {i} should be evicted");
        }
        for i in 5..10u128 {
            assert!(cache.get(fp(i)).is_some(), "key {i} should survive");
        }
        // Touch key 5 so key 6 becomes the LRU victim of the next insert.
        assert!(cache.get(fp(5)).is_some());
        cache.get_or_compute(fp(100), || vec![0u8; 20]);
        assert!(cache.get(fp(5)).is_some(), "recently touched survives");
        assert!(cache.get(fp(6)).is_none(), "true LRU entry evicted");
    }

    #[test]
    fn oversized_value_served_but_not_resident() {
        let cache = sized_cache(2, 16);
        cache.get_or_compute(fp(1), || vec![0u8; 8]);
        let (v, outcome) = cache.get_or_compute(fp(2), || vec![0u8; 64]);
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(v.len(), 64);
        let stats = cache.stats();
        assert_eq!(stats.uncacheable, 1);
        assert_eq!(
            stats.evictions, 0,
            "an oversized value must not flush the cache"
        );
        assert!(cache.get(fp(1)).is_some(), "existing entry untouched");
        assert!(cache.get(fp(2)).is_none());
        // The key is free: a later caller computes again.
        let (_, outcome) = cache.get_or_compute(fp(2), || vec![0u8; 64]);
        assert_eq!(outcome, CacheOutcome::Miss);
    }

    #[test]
    fn shrinking_budget_evicts_down() {
        let cache = sized_cache(4, 1000);
        for i in 0..10u128 {
            cache.get_or_compute(fp(i), || vec![0u8; 50]);
        }
        assert_eq!(cache.stats().occupancy_bytes, 500);
        cache.set_budget(Some(120));
        let stats = cache.stats();
        assert!(stats.occupancy_bytes <= 120, "{stats:?}");
        assert_eq!(stats.entries, 2);
        cache.set_budget(None);
        assert_eq!(cache.budget(), None);
        // Unbounded again: inserts stick without eviction.
        let before = cache.stats().evictions;
        cache.get_or_compute(fp(200), || vec![0u8; 5000]);
        assert_eq!(cache.stats().evictions, before);
    }

    #[test]
    fn ready_entries_reports_residents() {
        let cache = sized_cache(4, 1000);
        cache.get_or_compute(fp(1), || vec![1u8]);
        cache.get_or_compute(fp(2), || vec![2u8, 2]);
        let mut entries = cache.ready_entries();
        entries.sort_by_key(|(k, _)| k.0);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, fp(1));
        assert_eq!(*entries[0].1, vec![1u8]);
        assert_eq!(*entries[1].1, vec![2u8, 2]);
    }
}
