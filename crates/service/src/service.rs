//! The query-answering service facade.
//!
//! [`QueryService`] ties the pieces together: catalogs register schemas
//! once; requests are fingerprinted, looked up in the sharded decision
//! cache, and only on a miss is the full Table-1 decision pipeline
//! (classification → simplification → AMonDet containment → chase) run.
//! `Execute` requests additionally run the cached crawling plan against
//! the catalog's simulated services.
//!
//! Batches fan out over a scoped thread pool with work stealing; results
//! come back **in submission order** regardless of which worker finished
//! first, so batch responses are deterministic and positionally matched
//! to their requests.

use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use rbqa_common::{Instance, ValueFactory};
use rbqa_core::{decide_monotone_answerability, AnswerabilityResult};
use rbqa_logic::{Atom, ConjunctiveQuery, Term};

use crate::cache::{CacheOutcome, ShardedCache};
use crate::catalog::{CatalogEntry, CatalogId, CatalogRegistry};
use crate::fingerprint::{request_fingerprint, Fingerprint};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::request::{AnswerRequest, AnswerResponse, RequestMode, ServiceError};

/// Re-expresses a query's constants in another value space: every constant
/// is resolved to its string form in `from` and re-interned in `to`.
/// Variables are untouched. This is how the service keeps cached decisions
/// valid for every requester whose fingerprint matches, no matter which
/// factory built the request.
fn rebase_constants(
    query: &ConjunctiveQuery,
    from: &ValueFactory,
    to: &mut ValueFactory,
) -> ConjunctiveQuery {
    let atoms = query
        .atoms()
        .iter()
        .map(|atom| {
            let args = atom
                .args()
                .iter()
                .map(|term| match term {
                    Term::Const(v) => Term::Const(to.constant(&from.display(*v))),
                    Term::Var(v) => Term::Var(*v),
                })
                .collect();
            Atom::new(atom.relation(), args)
        })
        .collect();
    ConjunctiveQuery::new(query.vars().clone(), query.free_vars().to_vec(), atoms)
}

/// A cached decision: the full result of one pipeline run, shared by every
/// request whose fingerprint matches.
#[derive(Debug)]
pub struct CachedDecision {
    /// The decision result (verdict, diagnostics, optional plan).
    pub result: AnswerabilityResult,
    /// The plan lifted out behind its own `Arc` so responses can share it
    /// without touching the rest of the result.
    pub plan: Option<Arc<rbqa_access::Plan>>,
}

/// Tuning knobs for [`QueryService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of cache shards (lock domains).
    pub cache_shards: usize,
    /// Maximum worker threads a batch may fan out over.
    pub max_batch_threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_shards: 16,
            max_batch_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
        }
    }
}

/// The concurrent, caching query-answering service (DESIGN.md §6).
pub struct QueryService {
    catalogs: RwLock<CatalogRegistry>,
    cache: ShardedCache<CachedDecision>,
    metrics: ServiceMetrics,
    config: ServiceConfig,
}

impl Default for QueryService {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryService {
    /// A service with default configuration.
    pub fn new() -> Self {
        Self::with_config(ServiceConfig::default())
    }

    /// A service with explicit configuration.
    pub fn with_config(config: ServiceConfig) -> Self {
        QueryService {
            catalogs: RwLock::new(CatalogRegistry::new()),
            cache: ShardedCache::with_shards(config.cache_shards),
            metrics: ServiceMetrics::new(),
            config,
        }
    }

    /// Registers a schema (with its constraints and the factory that
    /// interned its constants) under a unique name.
    pub fn register_catalog(
        &self,
        name: &str,
        schema: rbqa_access::Schema,
        values: ValueFactory,
    ) -> Result<CatalogId, ServiceError> {
        let entry = CatalogEntry::new(name, schema, values);
        self.catalogs
            .write()
            .expect("catalog registry poisoned")
            .register(entry)
            .map_err(ServiceError::DuplicateCatalog)
    }

    /// Attaches (or replaces) the dataset served by a catalog's simulated
    /// services, enabling `Execute`-mode requests.
    pub fn attach_dataset(&self, id: CatalogId, data: Instance) -> Result<(), ServiceError> {
        let mut registry = self.catalogs.write().expect("catalog registry poisoned");
        let entry = registry.get(id).ok_or(ServiceError::UnknownCatalog(id))?;
        let replaced = registry.replace(id, entry.with_dataset(data));
        debug_assert!(replaced);
        Ok(())
    }

    /// Looks a catalog up by name.
    pub fn catalog_by_name(&self, name: &str) -> Option<CatalogId> {
        self.catalogs
            .read()
            .expect("catalog registry poisoned")
            .by_name(name)
            .map(|(id, _)| id)
    }

    /// A clone of the catalog's value factory. Build request queries on
    /// top of this so constants shared with the catalog keep their ids.
    pub fn catalog_values(&self, id: CatalogId) -> Result<ValueFactory, ServiceError> {
        Ok(self.entry(id)?.values.clone())
    }

    /// A clone of the catalog's schema signature, for parsing queries.
    pub fn catalog_signature(&self, id: CatalogId) -> Result<rbqa_common::Signature, ServiceError> {
        Ok(self.entry(id)?.schema.signature().clone())
    }

    fn entry(&self, id: CatalogId) -> Result<Arc<CatalogEntry>, ServiceError> {
        self.catalogs
            .read()
            .expect("catalog registry poisoned")
            .get(id)
            .ok_or(ServiceError::UnknownCatalog(id))
    }

    /// Current metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Number of distinct cached decisions.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drops all cached decisions (catalogs stay registered).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// The cache key of a request against a resolved catalog entry: the
    /// single place fingerprints are computed, shared by
    /// [`QueryService::fingerprint_of`] and [`QueryService::submit`].
    fn fingerprint_for(
        entry: &CatalogEntry,
        request: &AnswerRequest,
        options: &rbqa_core::AnswerabilityOptions,
    ) -> Fingerprint {
        let resolve = {
            let values = request.values.clone();
            move |v| values.display(v)
        };
        request_fingerprint(
            entry.fingerprint,
            &request.query,
            entry.schema.signature(),
            &resolve,
            options,
        )
    }

    /// Computes the fingerprint a request would be cached under (exposed
    /// for tests and observability; `submit` uses the same computation).
    pub fn fingerprint_of(&self, request: &AnswerRequest) -> Result<Fingerprint, ServiceError> {
        let entry = self.entry(request.catalog)?;
        Ok(Self::fingerprint_for(
            &entry,
            request,
            &request.effective_options(),
        ))
    }

    /// Serves one request.
    pub fn submit(&self, request: &AnswerRequest) -> Result<AnswerResponse, ServiceError> {
        let start = Instant::now();
        let entry = self.entry(request.catalog)?;
        let options = request.effective_options();
        let fingerprint = Self::fingerprint_for(&entry, request, &options);

        let (decision, outcome) = self.cache.get_or_compute(fingerprint, || {
            // Miss path: the only place the decision pipeline (and hence
            // the chase) runs. Fingerprints are deliberately independent
            // of the requester's ValueFactory (constants are resolved to
            // strings), so the cached artifact must be too: rebase the
            // query's constants onto the *catalog's* value space before
            // deciding. Otherwise the first requester's interner ids
            // would be baked into a result served to every α-equivalent
            // requester — wrong whenever the factories disagree (e.g.
            // Execute against catalog data, or constraints with
            // constants).
            let mut values = entry.values.clone();
            let query = rebase_constants(&request.query, &request.values, &mut values);
            let result =
                decide_monotone_answerability(&entry.schema, &query, &mut values, &options);
            let plan = result.plan.clone().map(Arc::new);
            CachedDecision { result, plan }
        });
        match outcome {
            CacheOutcome::Miss => self.metrics.record_miss(),
            CacheOutcome::Hit => self
                .metrics
                .record_hit(false, decision.result.containment.chase_stats.rounds),
            CacheOutcome::Coalesced => self
                .metrics
                .record_hit(true, decision.result.containment.chase_stats.rounds),
        }

        let summary = decision.result.summary();
        let plan = match request.mode {
            RequestMode::Decide => None,
            RequestMode::Synthesize | RequestMode::Execute => decision.plan.clone(),
        };

        let (rows, plan_metrics) = if request.mode == RequestMode::Execute {
            let plan = plan.as_ref().ok_or(ServiceError::NoPlan)?;
            let simulator = entry
                .simulator
                .as_ref()
                .ok_or_else(|| ServiceError::NoDataset(entry.name.clone()))?;
            let (rows, metrics) = simulator
                .run_plan_deterministic(plan)
                .map_err(|e| ServiceError::Execution(e.to_string()))?;
            self.metrics.record_execution();
            (Some(rows), Some(metrics))
        } else {
            (None, None)
        };

        let micros = start.elapsed().as_micros();
        self.metrics.record_latency(request.mode, micros);
        Ok(AnswerResponse {
            fingerprint,
            cache_hit: outcome != CacheOutcome::Miss,
            summary,
            plan,
            rows,
            plan_metrics,
            micros,
        })
    }

    /// Serves a batch of requests concurrently.
    ///
    /// Requests fan out over `min(batch_len, max_batch_threads)` scoped
    /// worker threads with atomic work stealing; the returned vector is
    /// index-aligned with the input (`responses[i]` answers
    /// `requests[i]`), so ordering is deterministic even though execution
    /// order is not. Identical or α-equivalent requests inside one batch
    /// are coalesced by the cache: the decision pipeline runs once.
    pub fn submit_batch(
        &self,
        requests: &[AnswerRequest],
    ) -> Vec<Result<AnswerResponse, ServiceError>> {
        if requests.is_empty() {
            return Vec::new();
        }
        let workers = self.config.max_batch_threads.max(1).min(requests.len());
        if workers == 1 {
            return requests.iter().map(|r| self.submit(r)).collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results: Mutex<Vec<Option<Result<AnswerResponse, ServiceError>>>> =
            Mutex::new((0..requests.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Each worker drains its answers into a local buffer
                    // first, taking the shared results lock once.
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= requests.len() {
                            break;
                        }
                        local.push((i, self.submit(&requests[i])));
                    }
                    let mut results = results.lock().expect("batch results poisoned");
                    for (i, response) in local {
                        results[i] = Some(response);
                    }
                });
            }
        });
        results
            .into_inner()
            .expect("batch results poisoned")
            .into_iter()
            .map(|slot| slot.expect("every request index was claimed by a worker"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_access::AccessMethod;
    use rbqa_common::Signature;
    use rbqa_logic::constraints::tgd::inclusion_dependency;
    use rbqa_logic::constraints::ConstraintSet;
    use rbqa_logic::parser::parse_cq;

    fn university(bound: Option<usize>) -> (rbqa_access::Schema, ValueFactory) {
        let mut sig = Signature::new();
        let prof = sig.add_relation("Prof", 3).unwrap();
        let udir = sig.add_relation("Udirectory", 3).unwrap();
        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(inclusion_dependency(&sig, prof, &[0], udir, &[0]));
        let mut schema = rbqa_access::Schema::with_parts(sig, constraints, vec![]).unwrap();
        schema
            .add_method(AccessMethod::unbounded("pr", prof, &[0]))
            .unwrap();
        let ud = match bound {
            None => AccessMethod::unbounded("ud", udir, &[]),
            Some(k) => AccessMethod::bounded("ud", udir, &[], k),
        };
        schema.add_method(ud).unwrap();
        (schema, ValueFactory::new())
    }

    #[test]
    fn decide_and_cache_roundtrip() {
        let service = QueryService::new();
        let (schema, values) = university(Some(100));
        let id = service.register_catalog("uni", schema, values).unwrap();

        let mut vf = service.catalog_values(id).unwrap();
        let mut sig = service.catalog_signature(id).unwrap();
        let q = parse_cq("Q() :- Udirectory(i, a, p)", &mut sig, &mut vf).unwrap();
        let request = AnswerRequest::decide(id, q, vf);

        let first = service.submit(&request).unwrap();
        assert!(first.is_answerable());
        assert!(!first.cache_hit);
        let second = service.submit(&request).unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.fingerprint, second.fingerprint);
        assert_eq!(service.cache_len(), 1);
        let m = service.metrics();
        assert_eq!(m.cache_misses, 1);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.decisions_computed, 1);
    }

    #[test]
    fn unknown_catalog_is_an_error() {
        let service = QueryService::new();
        let mut b = rbqa_logic::CqBuilder::new();
        let x = b.var("x");
        let q = b
            .atom(rbqa_common::RelationId::from_index(0), vec![x.into()])
            .build();
        let request = AnswerRequest::decide(CatalogId::from_index(3), q, ValueFactory::new());
        assert!(matches!(
            service.submit(&request),
            Err(ServiceError::UnknownCatalog(_))
        ));
    }

    #[test]
    fn duplicate_catalog_names_rejected() {
        let service = QueryService::new();
        let (schema, values) = university(None);
        service
            .register_catalog("uni", schema.clone(), values.clone())
            .unwrap();
        assert!(matches!(
            service.register_catalog("uni", schema, values),
            Err(ServiceError::DuplicateCatalog(_))
        ));
        assert!(service.catalog_by_name("uni").is_some());
        assert!(service.catalog_by_name("other").is_none());
    }

    #[test]
    fn execute_without_dataset_fails_cleanly() {
        let service = QueryService::new();
        let (schema, values) = university(None);
        let id = service.register_catalog("uni", schema, values).unwrap();
        let mut vf = service.catalog_values(id).unwrap();
        let mut sig = service.catalog_signature(id).unwrap();
        let q = parse_cq("Q() :- Udirectory(i, a, p)", &mut sig, &mut vf).unwrap();
        let request = AnswerRequest::execute(id, q, vf);
        assert!(matches!(
            service.submit(&request),
            Err(ServiceError::NoDataset(_))
        ));
    }

    #[test]
    fn clear_cache_forces_recompute() {
        let service = QueryService::new();
        let (schema, values) = university(Some(100));
        let id = service.register_catalog("uni", schema, values).unwrap();
        let mut vf = service.catalog_values(id).unwrap();
        let mut sig = service.catalog_signature(id).unwrap();
        let q = parse_cq("Q() :- Udirectory(i, a, p)", &mut sig, &mut vf).unwrap();
        let request = AnswerRequest::decide(id, q, vf);
        service.submit(&request).unwrap();
        service.clear_cache();
        assert_eq!(service.cache_len(), 0);
        let again = service.submit(&request).unwrap();
        assert!(!again.cache_hit);
        assert_eq!(service.metrics().decisions_computed, 2);
    }

    #[test]
    fn batch_preserves_order() {
        let service = QueryService::new();
        let (schema, values) = university(Some(100));
        let id = service.register_catalog("uni", schema, values).unwrap();
        let mut vf = service.catalog_values(id).unwrap();
        let mut sig = service.catalog_signature(id).unwrap();
        let answerable = parse_cq("Q() :- Udirectory(i, a, p)", &mut sig, &mut vf).unwrap();
        let not_answerable = parse_cq("Q(n) :- Prof(i, n, '10000')", &mut sig, &mut vf).unwrap();
        let mut requests = Vec::new();
        for k in 0..12 {
            let q = if k % 2 == 0 {
                answerable.clone()
            } else {
                not_answerable.clone()
            };
            requests.push(AnswerRequest::decide(id, q, vf.clone()));
        }
        let responses = service.submit_batch(&requests);
        assert_eq!(responses.len(), 12);
        for (k, response) in responses.iter().enumerate() {
            let response = response.as_ref().unwrap();
            assert_eq!(response.is_answerable(), k % 2 == 0, "slot {k}");
        }
        // Two distinct decision shapes → exactly two pipeline runs.
        assert_eq!(service.metrics().decisions_computed, 2);
    }
}
