//! The query-answering service facade.
//!
//! [`QueryService`] ties the pieces together: catalogs register schemas
//! once; requests are fingerprinted, looked up in the sharded decision
//! cache, and only on a miss is the full Table-1 decision pipeline
//! (classification → simplification → AMonDet containment → chase) run.
//! `Execute` requests additionally run the cached crawling plan against
//! the catalog's simulated services.
//!
//! Batches fan out over a scoped thread pool with work stealing; results
//! come back **in submission order** regardless of which worker finished
//! first, so batch responses are deterministic and positionally matched
//! to their requests.

use std::cell::Cell;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use rbqa_common::{Instance, ValueFactory};
use rbqa_core::{decide_monotone_answerability_union, DecisionSummary};
use rbqa_engine::PlanMetrics;
use rbqa_logic::{Atom, ConjunctiveQuery, Term, UnionOfConjunctiveQueries};
use rustc_hash::FxHashMap;

use crate::cache::{CacheOutcome, CacheStatsSnapshot, ShardedCache};
use crate::catalog::{CatalogEntry, CatalogId, CatalogRegistry};
use crate::fingerprint::{request_fingerprint, Fingerprint};
use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::request::{AnswerRequest, AnswerResponse, DisjunctFailure, RequestMode, ServiceError};
use crate::snapshot::{self, SnapshotStats};

/// Re-expresses a CQ's constants in another value space: every constant is
/// resolved to its string form in `from` and re-interned in `to`.
/// Variables are untouched. This is how the service keeps cached decisions
/// valid for every requester whose fingerprint matches, no matter which
/// factory built the request — and how any cross-factory component can
/// establish constant identity before comparing or evaluating queries.
pub fn rebase_cq_constants(
    query: &ConjunctiveQuery,
    from: &ValueFactory,
    to: &mut ValueFactory,
) -> ConjunctiveQuery {
    let atoms = query
        .atoms()
        .iter()
        .map(|atom| {
            let args = atom
                .args()
                .iter()
                .map(|term| match term {
                    Term::Const(v) => Term::Const(to.constant(&from.display(*v))),
                    Term::Var(v) => Term::Var(*v),
                })
                .collect();
            Atom::new(atom.relation(), args)
        })
        .collect();
    ConjunctiveQuery::new(query.vars().clone(), query.free_vars().to_vec(), atoms)
}

/// [`rebase_cq_constants`] lifted to a union: every disjunct is rebased
/// into the target value space, preserving disjunct order.
pub fn rebase_constants(
    union: &UnionOfConjunctiveQueries,
    from: &ValueFactory,
    to: &mut ValueFactory,
) -> UnionOfConjunctiveQueries {
    UnionOfConjunctiveQueries::from_disjuncts(
        union
            .disjuncts()
            .iter()
            .map(|q| rebase_cq_constants(q, from, to))
            .collect(),
    )
}

/// Drops α-equivalent duplicate disjuncts (keeping first occurrences), by
/// the same canonical codes the fingerprint hashes. The fingerprint
/// already identifies `Q ∨ Q'` with `Q` (for α-variants `Q'`), so the
/// *decision* must be computed over the deduplicated union too — otherwise
/// whichever spelling populates the shared cache entry dictates how many
/// times the pipeline runs, how many plans the entry carries, and how much
/// simulator work every later Execute performs.
fn dedup_disjuncts(
    union: UnionOfConjunctiveQueries,
    signature: &rbqa_common::Signature,
    values: &ValueFactory,
) -> UnionOfConjunctiveQueries {
    if union.len() <= 1 {
        return union;
    }
    let resolve = {
        let values = values.clone();
        move |v| values.display(v)
    };
    let mut seen = std::collections::HashSet::new();
    UnionOfConjunctiveQueries::from_disjuncts(
        union
            .disjuncts()
            .iter()
            .filter(|q| seen.insert(rbqa_logic::canonical_query_code(q, signature, &resolve)))
            .cloned()
            .collect(),
    )
}

/// Sums two per-run plan metrics: union execution runs one plan per
/// disjunct and the response reports the aggregate (calls and tuples are
/// additive; the rate-limit flag is conjunctive).
fn merge_plan_metrics(mut acc: PlanMetrics, other: PlanMetrics) -> PlanMetrics {
    for (method, calls) in other.calls_per_method {
        *acc.calls_per_method.entry(method).or_insert(0) += calls;
    }
    acc.total_calls += other.total_calls;
    acc.tuples_fetched += other.tuples_fetched;
    acc.tuples_matched += other.tuples_matched;
    acc.truncated_accesses += other.truncated_accesses;
    acc.latency_micros += other.latency_micros;
    acc.wall_micros += other.wall_micros;
    acc.output_size += other.output_size;
    acc.within_rate_limit &= other.within_rate_limit;
    acc.retries += other.retries;
    acc.breaker_rejections += other.breaker_rejections;
    acc.accesses_skipped += other.accesses_skipped;
    acc.disjuncts_short_circuited += other.disjuncts_short_circuited;
    acc
}

/// Maps a plan-execution failure onto the service taxonomy: structured
/// backend errors (quota exhaustion, unavailability) keep their own stable
/// codes so clients can fail fast / retry appropriately; everything else
/// is a generic execution failure.
fn plan_error_to_service_error(e: rbqa_access::plan::PlanError) -> ServiceError {
    use rbqa_access::AccessError;
    match e {
        rbqa_access::plan::PlanError::Access(AccessError::BudgetExhausted { budget, calls }) => {
            ServiceError::BudgetExhausted { budget, calls }
        }
        rbqa_access::plan::PlanError::Access(AccessError::Unavailable { retryable, detail }) => {
            ServiceError::Unavailable { retryable, detail }
        }
        rbqa_access::plan::PlanError::DeadlineExceeded => ServiceError::DeadlineExceeded,
        other => ServiceError::Execution(other.to_string()),
    }
}

/// A cached decision: what one pipeline run leaves behind, shared by every
/// request whose fingerprint matches. Deliberately flat — the summary
/// carries everything the hit path serves (including the union's total
/// chase rounds), and `encoded` is the decision's snapshot form, built at
/// compute time while the constants' spellings are still at hand, so
/// persistence never needs the pipeline's intermediate state.
#[derive(Debug)]
pub struct CachedDecision {
    /// The flat decision summary served on hits.
    pub summary: DecisionSummary,
    /// The executable plan set — one plan per disjunct, in disjunct order —
    /// lifted out behind `Arc`s so responses can share it without touching
    /// the rest of the result. Empty when no complete plan set exists
    /// (plans not requested, some disjunct unanswerable alone, or a
    /// disjunct only rescued by the union).
    pub plans: Vec<Arc<rbqa_access::Plan>>,
    /// The snapshot-record payload for this decision
    /// ([`crate::snapshot::encode_decision`]).
    pub encoded: Vec<u8>,
}

/// Approximate resident bytes of one cached decision, for the cache's
/// byte budget. The encoded snapshot payload is an honest proxy for the
/// heap data (the same strings and vectors dominate both forms); the
/// multiplier covers the in-memory `Vec`/`Arc`/enum overhead.
fn decision_cost(decision: &CachedDecision) -> usize {
    std::mem::size_of::<CachedDecision>() + decision.encoded.len() * 4
}

/// Tuning knobs for [`QueryService`].
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of cache shards (lock domains).
    pub cache_shards: usize,
    /// Maximum worker threads a batch may fan out over.
    pub max_batch_threads: usize,
    /// Decision-cache byte budget (`None` = unbounded). Adjustable later
    /// via [`QueryService::set_cache_budget`] / `option cache.bytes`.
    pub cache_bytes: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_shards: 16,
            max_batch_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            cache_bytes: None,
        }
    }
}

/// The concurrent, caching query-answering service (DESIGN.md §6).
pub struct QueryService {
    catalogs: RwLock<CatalogRegistry>,
    cache: ShardedCache<CachedDecision>,
    /// Snapshot records loaded at startup but not yet claimed by a
    /// request. Records stay encoded (catalogs may not exist yet when the
    /// snapshot loads); the first miss on a matching fingerprint decodes
    /// its record instead of running the pipeline — a *warm hit*.
    warm: Mutex<FxHashMap<u128, Vec<u8>>>,
    metrics: ServiceMetrics,
    config: ServiceConfig,
}

impl Default for QueryService {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryService {
    /// A service with default configuration.
    pub fn new() -> Self {
        Self::with_config(ServiceConfig::default())
    }

    /// A service with explicit configuration.
    pub fn with_config(config: ServiceConfig) -> Self {
        QueryService {
            catalogs: RwLock::new(CatalogRegistry::new()),
            cache: ShardedCache::with_shards(config.cache_shards)
                .with_cost_fn(Box::new(decision_cost))
                .with_budget(config.cache_bytes),
            warm: Mutex::new(FxHashMap::default()),
            metrics: ServiceMetrics::new(),
            config,
        }
    }

    /// Registers a schema (with its constraints and the factory that
    /// interned its constants) under a unique name.
    pub fn register_catalog(
        &self,
        name: &str,
        schema: rbqa_access::Schema,
        values: ValueFactory,
    ) -> Result<CatalogId, ServiceError> {
        let entry = CatalogEntry::new(name, schema, values);
        self.catalogs
            .write()
            .expect("catalog registry poisoned")
            .register(entry)
            .map_err(ServiceError::DuplicateCatalog)
    }

    /// Attaches (or replaces) the dataset served by a catalog's simulated
    /// services, enabling `Execute`-mode requests.
    pub fn attach_dataset(&self, id: CatalogId, data: Instance) -> Result<(), ServiceError> {
        let mut registry = self.catalogs.write().expect("catalog registry poisoned");
        let entry = registry.get(id).ok_or(ServiceError::UnknownCatalog(id))?;
        let replaced = registry.replace(id, entry.with_dataset(data));
        debug_assert!(replaced);
        Ok(())
    }

    /// Looks a catalog up by name.
    pub fn catalog_by_name(&self, name: &str) -> Option<CatalogId> {
        self.catalogs
            .read()
            .expect("catalog registry poisoned")
            .by_name(name)
            .map(|(id, _)| id)
    }

    /// A clone of the catalog's value factory. Build request queries on
    /// top of this so constants shared with the catalog keep their ids.
    pub fn catalog_values(&self, id: CatalogId) -> Result<ValueFactory, ServiceError> {
        Ok(self.entry(id)?.values.clone())
    }

    /// A clone of the catalog's schema signature, for parsing queries.
    pub fn catalog_signature(&self, id: CatalogId) -> Result<rbqa_common::Signature, ServiceError> {
        Ok(self.entry(id)?.schema.signature().clone())
    }

    fn entry(&self, id: CatalogId) -> Result<Arc<CatalogEntry>, ServiceError> {
        self.catalogs
            .read()
            .expect("catalog registry poisoned")
            .get(id)
            .ok_or(ServiceError::UnknownCatalog(id))
    }

    /// Current metrics, with the cache's budget-discipline block filled
    /// in from the live cache counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let cache = self.cache.stats();
        snap.cache_budget_bytes = cache.budget_bytes;
        snap.cache_occupancy_bytes = cache.occupancy_bytes;
        snap.cache_entries = cache.entries;
        snap.cache_evictions = cache.evictions;
        snap.cache_bytes_evicted = cache.bytes_evicted;
        snap.cache_uncacheable = cache.uncacheable;
        snap
    }

    /// The full latency distribution of one request mode (microseconds).
    /// The Copy-friendly [`MetricsSnapshot`] carries only the p50/p95/p99
    /// summaries; this exposes the whole histogram for reports.
    pub fn latency_histogram(&self, mode: RequestMode) -> rbqa_obs::HistogramSnapshot {
        self.metrics.latency_histogram(mode)
    }

    /// Number of distinct cached decisions.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drops all cached decisions (catalogs stay registered).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Re-points the decision cache's byte budget (`None` = unbounded).
    /// Shrinking below current occupancy evicts LRU-first until it fits.
    pub fn set_cache_budget(&self, bytes: Option<u64>) {
        self.cache.set_budget(bytes);
    }

    /// The decision cache's configured byte budget.
    pub fn cache_budget(&self) -> Option<u64> {
        self.cache.budget()
    }

    /// The decision cache's budget-discipline counters.
    pub fn cache_stats(&self) -> CacheStatsSnapshot {
        self.cache.stats()
    }

    /// Snapshot records loaded from disk but not yet claimed by a request.
    pub fn warm_pending(&self) -> usize {
        self.warm.lock().expect("warm store poisoned").len()
    }

    /// Loads a cache snapshot into the warm store. Records stay encoded
    /// until a request with a matching fingerprint claims one (catalogs
    /// need not be registered yet). Damaged records were already skipped
    /// by the reader; an undecodable payload is quietly recomputed later.
    /// The only `Err` is file-level I/O (missing file = cold start).
    pub fn load_snapshot(&self, path: &Path) -> std::io::Result<SnapshotStats> {
        let (records, stats) = snapshot::read_snapshot(path)?;
        let mut warm = self.warm.lock().expect("warm store poisoned");
        warm.extend(records);
        Ok(stats)
    }

    /// Writes the cache to a snapshot file (atomic temp + rename): every
    /// resident decision plus any still-unclaimed warm records, so a short
    /// session never throws away warmth it didn't happen to touch.
    pub fn save_snapshot(&self, path: &Path) -> std::io::Result<SnapshotStats> {
        let resident = self.cache.ready_entries();
        let warm = self.warm.lock().expect("warm store poisoned");
        let mut records: Vec<(u128, &[u8])> = Vec::with_capacity(warm.len() + resident.len());
        // Unclaimed warm records first, live entries after: on load,
        // later records win compaction.
        for (fingerprint, payload) in warm.iter() {
            records.push((*fingerprint, payload.as_slice()));
        }
        for (fingerprint, decision) in &resident {
            records.push((fingerprint.0, decision.encoded.as_slice()));
        }
        snapshot::write_snapshot(path, &records)
    }

    /// The cache key of a request against a resolved catalog entry: the
    /// single place fingerprints are computed, shared by
    /// [`QueryService::fingerprint_of`] and [`QueryService::submit`].
    fn fingerprint_for(
        entry: &CatalogEntry,
        request: &AnswerRequest,
        options: &rbqa_core::AnswerabilityOptions,
    ) -> Fingerprint {
        let resolve = {
            let values = request.values.clone();
            move |v| values.display(v)
        };
        request_fingerprint(
            entry.fingerprint,
            &request.query,
            entry.schema.signature(),
            &resolve,
            options,
            &request.effective_exec(),
        )
    }

    /// Computes the fingerprint a request would be cached under (exposed
    /// for tests and observability; `submit` uses the same computation).
    pub fn fingerprint_of(&self, request: &AnswerRequest) -> Result<Fingerprint, ServiceError> {
        let entry = self.entry(request.catalog)?;
        Ok(Self::fingerprint_for(
            &entry,
            request,
            &request.effective_options(),
        ))
    }

    /// Serves one request.
    ///
    /// When [`AnswerRequest::trace`] is set, the whole pipeline runs
    /// under a per-thread [`rbqa_obs::Tracer`] and the harvested
    /// [`rbqa_obs::Trace`] is attached to the response. The tracer is
    /// uninstalled on *every* exit path (including mid-pipeline errors
    /// such as `BudgetExhausted`), so a failing traced request never
    /// leaks an armed tracer into the next request served by this
    /// thread.
    pub fn submit(&self, request: &AnswerRequest) -> Result<AnswerResponse, ServiceError> {
        // Arm the cooperative deadline for the whole request, on *this*
        // thread (batch workers each arm their own). The guard restores
        // any enclosing deadline on every exit path; nested arms keep
        // whichever deadline is tighter.
        let _deadline = request.deadline.map(rbqa_obs::arm_deadline);
        let result = if !request.trace {
            self.submit_inner(request)
        } else {
            rbqa_obs::install(rbqa_obs::Tracer::new());
            let result = self.submit_inner(request);
            let trace = rbqa_obs::uninstall();
            result.map(|mut response| {
                response.trace = trace;
                response
            })
        };
        if matches!(result, Err(ServiceError::DeadlineExceeded)) {
            self.metrics.record_timeout();
        }
        result
    }

    /// Claims (removes) the warm snapshot record for a fingerprint, if
    /// one was loaded.
    fn take_warm(&self, fingerprint: Fingerprint) -> Option<Vec<u8>> {
        self.warm
            .lock()
            .expect("warm store poisoned")
            .remove(&fingerprint.0)
    }

    fn submit_inner(&self, request: &AnswerRequest) -> Result<AnswerResponse, ServiceError> {
        let start = Instant::now();
        request.validate_shape()?;
        let entry = self.entry(request.catalog)?;
        let options = request.effective_options();
        let fingerprint = Self::fingerprint_for(&entry, request, &options);

        let warm = Cell::new(false);
        let (decision, outcome) = self.cache.get_or_try_compute(
            fingerprint,
            || {
                // Miss path: the only place the decision pipeline (and hence
                // the chase) runs. Fingerprints are deliberately independent
                // of the requester's ValueFactory (constants are resolved to
                // strings), so the cached artifact must be too: rebase the
                // query's constants onto the *catalog's* value space before
                // deciding. Otherwise the first requester's interner ids
                // would be baked into a result served to every α-equivalent
                // requester — wrong whenever the factories disagree (e.g.
                // Execute against catalog data, or constraints with
                // constants).
                let mut values = entry.values.clone();
                // Warm path: a snapshot record with this fingerprint replaces
                // the pipeline run entirely — decode (re-interning constants
                // into the catalog's value space, exactly like the rebase
                // below) and serve. An undecodable record falls through to a
                // genuine compute.
                if let Some(encoded) = self.take_warm(fingerprint) {
                    if let Some((summary, plans)) = snapshot::decode_decision(&encoded, &mut values)
                    {
                        warm.set(true);
                        return Ok(CachedDecision {
                            summary,
                            plans,
                            encoded,
                        });
                    }
                }
                let query = rebase_constants(&request.query, &request.values, &mut values);
                // Canonical-dedup before deciding, mirroring the fingerprint:
                // the cached artifact for `Q ∨ Qα` must be the artifact for `Q`.
                let query = dedup_disjuncts(query, entry.schema.signature(), &values);
                let result = decide_monotone_answerability_union(
                    &entry.schema,
                    &query,
                    &mut values,
                    &options,
                );
                // A deadline that expired mid-pipeline truncated the chase
                // (the engines abort cooperatively between rounds), so the
                // summary may claim exhaustion it never proved. Abandon it:
                // the `Err` vacates the in-flight slot — nothing partial is
                // ever cached — and a waiter or retry recomputes from
                // scratch.
                if rbqa_obs::deadline_expired() {
                    return Err(ServiceError::DeadlineExceeded);
                }
                let plans: Vec<Arc<rbqa_access::Plan>> = result
                    .union_plans()
                    .map(|plans| plans.into_iter().cloned().map(Arc::new).collect())
                    .unwrap_or_default();
                // `summary()` folds the union's total chase rounds in, so the
                // flat summary is all the hit path (and the snapshot) needs.
                let summary = result.summary();
                let encoded = snapshot::encode_decision(&summary, &plans, &|v| values.display(v));
                Ok(CachedDecision {
                    summary,
                    plans,
                    encoded,
                })
            },
            // Waiters that run out of deadline while an unrelated thread
            // computes give up with the same timeout error.
            || ServiceError::DeadlineExceeded,
        )?;
        let rounds_skipped = decision.summary.chase_rounds;
        match outcome {
            CacheOutcome::Miss if warm.get() => self.metrics.record_warm_hit(rounds_skipped),
            CacheOutcome::Miss => self.metrics.record_miss(),
            CacheOutcome::Hit => self.metrics.record_hit(false, rounds_skipped),
            CacheOutcome::Coalesced => self.metrics.record_hit(true, rounds_skipped),
        }

        let summary = decision.summary;
        let plans = match request.mode {
            RequestMode::Decide => Vec::new(),
            RequestMode::Synthesize | RequestMode::Execute => decision.plans.clone(),
        };

        let (rows, plan_metrics, partial) = if request.mode == RequestMode::Execute {
            if plans.is_empty() {
                return Err(ServiceError::NoPlan);
            }
            let simulator = entry
                .simulator
                .as_ref()
                .ok_or_else(|| ServiceError::NoDataset(entry.name.clone()))?;
            let mut rows: Vec<Vec<rbqa_common::Value>> = Vec::new();
            let mut metrics: Option<PlanMetrics> = None;
            let mut failures: Vec<DisjunctFailure> = Vec::new();
            let mut first_error: Option<ServiceError> = None;
            // One backend + one call-budget window serves every disjunct
            // plan: `call_budget` caps the request's total accesses, not
            // each plan's.
            let plan_refs: Vec<&rbqa_access::Plan> = plans.iter().map(|p| p.as_ref()).collect();
            let runs = simulator
                .run_plans_exec_results(&plan_refs, &request.exec)
                .map_err(plan_error_to_service_error)?;
            for (index, run) in runs.into_iter().enumerate() {
                match run {
                    Ok((plan_rows, plan_metrics)) => {
                        rows.extend(plan_rows);
                        metrics = Some(match metrics {
                            None => plan_metrics,
                            Some(acc) => merge_plan_metrics(acc, plan_metrics),
                        });
                    }
                    Err(e) => {
                        let error = plan_error_to_service_error(e);
                        // A deadline abort is request-global, never a
                        // per-disjunct degradation: partial rows from a
                        // timed-out request would be indistinguishable
                        // from a complete answer that happens to be small.
                        if error == ServiceError::DeadlineExceeded || !request.exec.degraded {
                            return Err(error);
                        }
                        failures.push(DisjunctFailure {
                            plan_index: index,
                            code: error.code(),
                            detail: error.to_string(),
                        });
                        first_error.get_or_insert(error);
                    }
                }
            }
            // Degraded mode rescues a union only when something survived:
            // if every disjunct faulted there are no rows to serve and the
            // first failure is the honest answer.
            let Some(merged) = metrics else {
                return Err(first_error.expect("a failed Execute run recorded its error"));
            };
            // Union semantics: deduplicated, sorted answers (matching
            // `UnionOfConjunctiveQueries::evaluate`). Applied even for a
            // single plan so that the rows of a cached entry never depend
            // on which α-equivalent spelling populated it (the cached plan
            // set mirrors the *first* requester's disjunct list — e.g.
            // `Q ∨ Q` and `Q` share one fingerprint but synthesise
            // different plan counts).
            rows.sort();
            rows.dedup();
            self.metrics.record_execution();
            self.metrics
                .record_resilience(merged.retries, merged.breaker_rejections);
            let partial = if failures.is_empty() {
                None
            } else {
                self.metrics.record_degraded();
                Some(failures)
            };
            (Some(rows), Some(merged), partial)
        } else {
            (None, None, None)
        };

        let micros = start.elapsed().as_micros();
        self.metrics.record_latency(request.mode, micros);
        Ok(AnswerResponse {
            fingerprint,
            // A warm-store decode skipped the pipeline just like a
            // resident hit did; clients (and the load harness) read
            // `cache_hit` as "no chase ran for this request".
            cache_hit: outcome != CacheOutcome::Miss || warm.get(),
            summary,
            plans,
            rows,
            plan_metrics,
            micros,
            trace: None,
            partial,
        })
    }

    /// Serves a batch of requests concurrently.
    ///
    /// Requests fan out over `min(batch_len, max_batch_threads)` scoped
    /// worker threads with atomic work stealing; the returned vector is
    /// index-aligned with the input (`responses[i]` answers
    /// `requests[i]`), so ordering is deterministic even though execution
    /// order is not. Identical or α-equivalent requests inside one batch
    /// are coalesced by the cache: the decision pipeline runs once.
    pub fn submit_batch(
        &self,
        requests: &[AnswerRequest],
    ) -> Vec<Result<AnswerResponse, ServiceError>> {
        if requests.is_empty() {
            return Vec::new();
        }
        let workers = self.config.max_batch_threads.max(1).min(requests.len());
        if workers == 1 {
            return requests.iter().map(|r| self.submit(r)).collect();
        }
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results: Mutex<Vec<Option<Result<AnswerResponse, ServiceError>>>> =
            Mutex::new((0..requests.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    // Each worker drains its answers into a local buffer
                    // first, taking the shared results lock once.
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= requests.len() {
                            break;
                        }
                        local.push((i, self.submit(&requests[i])));
                    }
                    let mut results = results.lock().expect("batch results poisoned");
                    for (i, response) in local {
                        results[i] = Some(response);
                    }
                });
            }
        });
        results
            .into_inner()
            .expect("batch results poisoned")
            .into_iter()
            .map(|slot| slot.expect("every request index was claimed by a worker"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_access::AccessMethod;
    use rbqa_common::Signature;
    use rbqa_logic::constraints::tgd::inclusion_dependency;
    use rbqa_logic::constraints::ConstraintSet;
    use rbqa_logic::parser::parse_cq;

    fn university(bound: Option<usize>) -> (rbqa_access::Schema, ValueFactory) {
        let mut sig = Signature::new();
        let prof = sig.add_relation("Prof", 3).unwrap();
        let udir = sig.add_relation("Udirectory", 3).unwrap();
        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(inclusion_dependency(&sig, prof, &[0], udir, &[0]));
        let mut schema = rbqa_access::Schema::with_parts(sig, constraints, vec![]).unwrap();
        schema
            .add_method(AccessMethod::unbounded("pr", prof, &[0]))
            .unwrap();
        let ud = match bound {
            None => AccessMethod::unbounded("ud", udir, &[]),
            Some(k) => AccessMethod::bounded("ud", udir, &[], k),
        };
        schema.add_method(ud).unwrap();
        (schema, ValueFactory::new())
    }

    #[test]
    fn rebase_constants_establishes_cross_factory_identity() {
        // Two factories intern the same constant names at different ids;
        // after rebasing, the query's constants are *identical* (same
        // `Value`) to the target factory's, so instance evaluation and
        // chase seeding work unchanged.
        let mut sig = Signature::new();
        let mut foreign = ValueFactory::new();
        foreign.constant("padding0");
        foreign.constant("padding1");
        let q1 = parse_cq("Q(n) :- Prof(i, n, '10000')", &mut sig, &mut foreign).unwrap();
        let q2 = parse_cq(
            "Q() :- Udirectory('10000', a, '555')",
            &mut sig,
            &mut foreign,
        )
        .unwrap();

        let mut catalog = ValueFactory::new();
        let ten_k = catalog.constant("10000");
        let union = UnionOfConjunctiveQueries::from_disjuncts(vec![q1.clone(), q2.clone()]);
        let rebased = rebase_constants(&union, &foreign, &mut catalog);

        assert_eq!(rebased.len(), 2);
        // Both disjuncts now reference the catalog's '10000'.
        assert_eq!(rebased.disjuncts()[0].constants(), vec![ten_k]);
        assert!(rebased.disjuncts()[1].constants().contains(&ten_k));
        // The original ids disagreed (padding shifted them).
        assert_ne!(q1.constants(), rebased.disjuncts()[0].constants());
        // Structure (relations, variables, free vars) is untouched.
        assert_eq!(
            rebased.disjuncts()[0].free_vars(),
            q1.free_vars(),
            "only constants are rewritten"
        );
        // Every constant resolves to the same string in the new space.
        assert_eq!(catalog.display(ten_k), "10000");
    }

    #[test]
    fn union_requests_share_cache_entries_and_execute_unions() {
        let service = QueryService::new();
        let (schema, values) = university(None);
        let id = service.register_catalog("uni", schema, values).unwrap();
        let make_union = |texts: [&str; 2]| {
            let mut vf = service.catalog_values(id).unwrap();
            let mut sig = service.catalog_signature(id).unwrap();
            let disjuncts = texts
                .iter()
                .map(|t| parse_cq(t, &mut sig, &mut vf).unwrap())
                .collect();
            (UnionOfConjunctiveQueries::from_disjuncts(disjuncts), vf)
        };
        let (u1, vf1) = make_union(["Q(n) :- Prof(i, n, '10000')", "Q(a) :- Udirectory(i, a, p)"]);
        // α-renamed and disjunct-permuted.
        let (u2, vf2) = make_union([
            "Q(ad) :- Udirectory(row, ad, ph)",
            "Q(nm) :- Prof(pid, nm, '10000')",
        ]);
        let first = service
            .submit(&AnswerRequest::decide_union(id, u1, vf1))
            .unwrap();
        let second = service
            .submit(&AnswerRequest::decide_union(id, u2, vf2))
            .unwrap();
        assert!(first.is_answerable());
        assert!(!first.cache_hit);
        assert!(second.cache_hit, "permuted α-variant union is a hit");
        assert_eq!(first.fingerprint, second.fingerprint);
        assert_eq!(service.metrics().decisions_computed, 1);
    }

    #[test]
    fn duplicate_disjuncts_decide_and_cache_as_the_single_query() {
        // `Q ∨ Qα` fingerprints as `Q` — and must also *decide* as `Q`:
        // one pipeline run, one plan, so a later plain-`Q` requester
        // hitting the shared entry sees a single-disjunct artifact.
        let service = QueryService::new();
        let (schema, values) = university(None);
        let id = service.register_catalog("uni", schema, values).unwrap();
        let mut vf = service.catalog_values(id).unwrap();
        let mut sig = service.catalog_signature(id).unwrap();
        let q = parse_cq("Q(n) :- Prof(i, n, '10000')", &mut sig, &mut vf).unwrap();
        let q_alpha = parse_cq("Q(nm) :- Prof(pid, nm, '10000')", &mut sig, &mut vf).unwrap();

        let doubled = service
            .submit(&AnswerRequest::synthesize_union(
                id,
                UnionOfConjunctiveQueries::from_disjuncts(vec![q.clone(), q_alpha]),
                vf.clone(),
            ))
            .unwrap();
        assert!(doubled.is_answerable());
        assert_eq!(
            doubled.plans.len(),
            1,
            "duplicates collapse before synthesis"
        );

        let single = service
            .submit(&AnswerRequest::synthesize(id, q, vf))
            .unwrap();
        assert!(single.cache_hit, "Q rides the Q ∨ Qα entry");
        assert_eq!(single.fingerprint, doubled.fingerprint);
        assert!(single.plan().is_some(), "single-plan accessor works");
        assert_eq!(service.metrics().decisions_computed, 1);
    }

    #[test]
    fn degenerate_unions_are_rejected() {
        let service = QueryService::new();
        let (schema, values) = university(None);
        let id = service.register_catalog("uni", schema, values).unwrap();
        let vf = service.catalog_values(id).unwrap();
        let empty = AnswerRequest::decide_union(id, UnionOfConjunctiveQueries::new(), vf.clone());
        assert!(matches!(
            service.submit(&empty),
            Err(ServiceError::EmptyUnion)
        ));
        let mut sig = service.catalog_signature(id).unwrap();
        let mut vf2 = vf.clone();
        let q1 = parse_cq("Q(n) :- Prof(i, n, s)", &mut sig, &mut vf2).unwrap();
        let q2 = parse_cq("Q() :- Udirectory(i, a, p)", &mut sig, &mut vf2).unwrap();
        let mixed = AnswerRequest::decide_union(
            id,
            UnionOfConjunctiveQueries::from_disjuncts(vec![q1, q2]),
            vf2,
        );
        assert!(matches!(
            service.submit(&mixed),
            Err(ServiceError::UnionArityMismatch)
        ));
    }

    #[test]
    fn decide_and_cache_roundtrip() {
        let service = QueryService::new();
        let (schema, values) = university(Some(100));
        let id = service.register_catalog("uni", schema, values).unwrap();

        let mut vf = service.catalog_values(id).unwrap();
        let mut sig = service.catalog_signature(id).unwrap();
        let q = parse_cq("Q() :- Udirectory(i, a, p)", &mut sig, &mut vf).unwrap();
        let request = AnswerRequest::decide(id, q, vf);

        let first = service.submit(&request).unwrap();
        assert!(first.is_answerable());
        assert!(!first.cache_hit);
        let second = service.submit(&request).unwrap();
        assert!(second.cache_hit);
        assert_eq!(first.fingerprint, second.fingerprint);
        assert_eq!(service.cache_len(), 1);
        let m = service.metrics();
        assert_eq!(m.cache_misses, 1);
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.decisions_computed, 1);
    }

    #[test]
    fn unknown_catalog_is_an_error() {
        let service = QueryService::new();
        let mut b = rbqa_logic::CqBuilder::new();
        let x = b.var("x");
        let q = b
            .atom(rbqa_common::RelationId::from_index(0), vec![x.into()])
            .build();
        let request = AnswerRequest::decide(CatalogId::from_index(3), q, ValueFactory::new());
        assert!(matches!(
            service.submit(&request),
            Err(ServiceError::UnknownCatalog(_))
        ));
    }

    #[test]
    fn duplicate_catalog_names_rejected() {
        let service = QueryService::new();
        let (schema, values) = university(None);
        service
            .register_catalog("uni", schema.clone(), values.clone())
            .unwrap();
        assert!(matches!(
            service.register_catalog("uni", schema, values),
            Err(ServiceError::DuplicateCatalog(_))
        ));
        assert!(service.catalog_by_name("uni").is_some());
        assert!(service.catalog_by_name("other").is_none());
    }

    #[test]
    fn execute_without_dataset_fails_cleanly() {
        let service = QueryService::new();
        let (schema, values) = university(None);
        let id = service.register_catalog("uni", schema, values).unwrap();
        let mut vf = service.catalog_values(id).unwrap();
        let mut sig = service.catalog_signature(id).unwrap();
        let q = parse_cq("Q() :- Udirectory(i, a, p)", &mut sig, &mut vf).unwrap();
        let request = AnswerRequest::execute(id, q, vf);
        assert!(matches!(
            service.submit(&request),
            Err(ServiceError::NoDataset(_))
        ));
    }

    #[test]
    fn clear_cache_forces_recompute() {
        let service = QueryService::new();
        let (schema, values) = university(Some(100));
        let id = service.register_catalog("uni", schema, values).unwrap();
        let mut vf = service.catalog_values(id).unwrap();
        let mut sig = service.catalog_signature(id).unwrap();
        let q = parse_cq("Q() :- Udirectory(i, a, p)", &mut sig, &mut vf).unwrap();
        let request = AnswerRequest::decide(id, q, vf);
        service.submit(&request).unwrap();
        service.clear_cache();
        assert_eq!(service.cache_len(), 0);
        let again = service.submit(&request).unwrap();
        assert!(!again.cache_hit);
        assert_eq!(service.metrics().decisions_computed, 2);
    }

    #[test]
    fn batch_preserves_order() {
        let service = QueryService::new();
        let (schema, values) = university(Some(100));
        let id = service.register_catalog("uni", schema, values).unwrap();
        let mut vf = service.catalog_values(id).unwrap();
        let mut sig = service.catalog_signature(id).unwrap();
        let answerable = parse_cq("Q() :- Udirectory(i, a, p)", &mut sig, &mut vf).unwrap();
        let not_answerable = parse_cq("Q(n) :- Prof(i, n, '10000')", &mut sig, &mut vf).unwrap();
        let mut requests = Vec::new();
        for k in 0..12 {
            let q = if k % 2 == 0 {
                answerable.clone()
            } else {
                not_answerable.clone()
            };
            requests.push(AnswerRequest::decide(id, q, vf.clone()));
        }
        let responses = service.submit_batch(&requests);
        assert_eq!(responses.len(), 12);
        for (k, response) in responses.iter().enumerate() {
            let response = response.as_ref().unwrap();
            assert_eq!(response.is_answerable(), k % 2 == 0, "slot {k}");
        }
        // Two distinct decision shapes → exactly two pipeline runs.
        assert_eq!(service.metrics().decisions_computed, 2);
    }
}
