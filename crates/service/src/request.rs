//! The request/response vocabulary of the service.
//!
//! Requests carry a **union of conjunctive queries** (the paper states its
//! results for UCQs throughout); a plain CQ is the one-disjunct special
//! case and the [`AnswerRequest::decide`]/[`AnswerRequest::synthesize`]/
//! [`AnswerRequest::execute`] constructors wrap it for you. Prefer building
//! requests through `rbqa_api::RequestBuilder`, which validates the query
//! against the catalog before a request ever reaches the service.

use std::sync::Arc;

use rbqa_access::Plan;
use rbqa_common::{Value, ValueFactory};
use rbqa_core::{AnswerabilityOptions, DecisionSummary};
use rbqa_engine::{ExecOptions, PlanMetrics};
use rbqa_logic::{ConjunctiveQuery, UnionOfConjunctiveQueries};

use crate::catalog::CatalogId;
use crate::fingerprint::Fingerprint;

/// What the client wants done with the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestMode {
    /// Decide monotone answerability only.
    Decide,
    /// Decide and synthesise crawling plans when answerable.
    Synthesize,
    /// Decide, synthesise, and execute the plans against the catalog's
    /// registered dataset through the simulated services.
    Execute,
}

impl RequestMode {
    /// The wire name of the mode (also the request verb of the v1
    /// protocol).
    pub fn as_str(self) -> &'static str {
        match self {
            RequestMode::Decide => "decide",
            RequestMode::Synthesize => "synthesize",
            RequestMode::Execute => "execute",
        }
    }
}

/// One query-answering request against a registered catalog.
///
/// Build queries with a [`ValueFactory`] derived from
/// [`crate::QueryService::catalog_values`] so that constants shared with
/// the catalog (instance data, constraint constants) keep their identity;
/// the *fingerprint* is factory-independent either way (constants are
/// resolved to strings), so α-equivalent requests from independent
/// factories still share a cache entry.
#[derive(Debug, Clone)]
pub struct AnswerRequest {
    /// The catalog to answer against.
    pub catalog: CatalogId,
    /// The query: a union of conjunctive queries (one disjunct for a plain
    /// CQ). All disjuncts must have the same number of free variables.
    pub query: UnionOfConjunctiveQueries,
    /// The factory that interned the query's constants.
    pub values: ValueFactory,
    /// What to do.
    pub mode: RequestMode,
    /// Decision options (budget etc.). `synthesize_plan` is forced on for
    /// [`RequestMode::Synthesize`] and [`RequestMode::Execute`].
    pub options: AnswerabilityOptions,
    /// Execution options for `Execute` requests: which
    /// [`rbqa_engine::BackendSpec`] runs the plans and an optional
    /// per-request call budget (spanning all disjunct plans). Part of the
    /// fingerprint of `Execute` requests, so executes with different
    /// backends/budgets never share a cache entry; `Decide`/`Synthesize`
    /// ignore it (see [`AnswerRequest::effective_exec`]).
    pub exec: ExecOptions,
    /// Whether to record a per-request [`rbqa_obs::Trace`] and return it
    /// in [`AnswerResponse::trace`]. Deliberately **not** part of the
    /// fingerprint: tracing observes a request, it never changes its
    /// answer, so a traced and an untraced spelling share a cache entry
    /// (a traced cache *hit* therefore yields a short trace covering
    /// only the lookup, not the original decision work).
    pub trace: bool,
    /// Cooperative deadline for the whole request: when set, the chase
    /// (per round), plan execution (per access) and cache waits abort
    /// with [`ServiceError::DeadlineExceeded`] once this much time has
    /// elapsed since `submit` began. Like `trace` it is deliberately
    /// **not** part of the fingerprint — a deadline changes how long we
    /// try, never what the answer is — so deadlined and undeadlined
    /// spellings share a cache entry, and an aborted computation caches
    /// nothing (the single-flight slot is vacated, not poisoned).
    pub deadline: Option<std::time::Duration>,
}

impl AnswerRequest {
    /// A `Decide` request for a single CQ with default options.
    pub fn decide(catalog: CatalogId, query: ConjunctiveQuery, values: ValueFactory) -> Self {
        Self::decide_union(catalog, UnionOfConjunctiveQueries::single(query), values)
    }

    /// A `Synthesize` request for a single CQ with default options.
    pub fn synthesize(catalog: CatalogId, query: ConjunctiveQuery, values: ValueFactory) -> Self {
        Self::synthesize_union(catalog, UnionOfConjunctiveQueries::single(query), values)
    }

    /// An `Execute` request for a single CQ with default options.
    pub fn execute(catalog: CatalogId, query: ConjunctiveQuery, values: ValueFactory) -> Self {
        Self::execute_union(catalog, UnionOfConjunctiveQueries::single(query), values)
    }

    /// A `Decide` request for a union with default options.
    pub fn decide_union(
        catalog: CatalogId,
        query: UnionOfConjunctiveQueries,
        values: ValueFactory,
    ) -> Self {
        AnswerRequest {
            catalog,
            query,
            values,
            mode: RequestMode::Decide,
            options: AnswerabilityOptions::default(),
            exec: ExecOptions::default(),
            trace: false,
            deadline: None,
        }
    }

    /// Returns the request with its execution options replaced.
    pub fn with_exec(mut self, exec: ExecOptions) -> Self {
        self.exec = exec;
        self
    }

    /// Returns the request with per-request tracing switched on or off.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Returns the request with a cooperative deadline (`None` clears it).
    pub fn with_deadline(mut self, deadline: Option<std::time::Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// A `Synthesize` request for a union with default options.
    pub fn synthesize_union(
        catalog: CatalogId,
        query: UnionOfConjunctiveQueries,
        values: ValueFactory,
    ) -> Self {
        AnswerRequest {
            mode: RequestMode::Synthesize,
            ..Self::decide_union(catalog, query, values)
        }
    }

    /// An `Execute` request for a union with default options.
    pub fn execute_union(
        catalog: CatalogId,
        query: UnionOfConjunctiveQueries,
        values: ValueFactory,
    ) -> Self {
        AnswerRequest {
            mode: RequestMode::Execute,
            ..Self::decide_union(catalog, query, values)
        }
    }

    /// The options the decision actually runs with: `Synthesize` and
    /// `Execute` imply plan synthesis (this normalisation happens *before*
    /// fingerprinting, so a `Synthesize` and an `Execute` request for the
    /// same query share one cache entry).
    pub fn effective_options(&self) -> AnswerabilityOptions {
        let mut options = self.options;
        if matches!(self.mode, RequestMode::Synthesize | RequestMode::Execute) {
            options.synthesize_plan = true;
        }
        options
    }

    /// The execution options that actually matter for this request: only
    /// `Execute` runs plans, so for `Decide`/`Synthesize` the exec options
    /// normalise to the default. Like [`AnswerRequest::effective_options`]
    /// this happens *before* fingerprinting — a stream-scoped
    /// `option exec.*` directive (or a builder `.backend(..)` left on a
    /// non-Execute request) must not fragment the decision cache for
    /// requests whose outcome cannot depend on it.
    pub fn effective_exec(&self) -> ExecOptions {
        match self.mode {
            RequestMode::Execute => self.exec,
            RequestMode::Decide | RequestMode::Synthesize => ExecOptions::default(),
        }
    }

    /// Structural sanity of the request itself (before any catalog is
    /// consulted): the union must be non-empty, its disjuncts must agree
    /// on answer arity, and the exec options must be well-formed.
    pub fn validate_shape(&self) -> Result<(), ServiceError> {
        if self.query.is_empty() {
            return Err(ServiceError::EmptyUnion);
        }
        if self.query.uniform_free_arity().is_none() {
            return Err(ServiceError::UnionArityMismatch);
        }
        if let rbqa_engine::BackendSpec::Sharded { shards } = self.exec.backend {
            if shards == 0 || shards > rbqa_engine::MAX_SHARDS {
                return Err(ServiceError::Invalid(format!(
                    "shard count {shards} outside 1..={}",
                    rbqa_engine::MAX_SHARDS
                )));
            }
        }
        Ok(())
    }
}

/// The service's answer to one [`AnswerRequest`].
#[derive(Debug, Clone)]
pub struct AnswerResponse {
    /// The request fingerprint (cache key); equal fingerprints mean the
    /// requests were semantically identical.
    pub fingerprint: Fingerprint,
    /// Whether the decision came from the cache (hit or coalesced wait)
    /// rather than a fresh run of the decision procedure.
    pub cache_hit: bool,
    /// Flat summary of the decision.
    pub summary: DecisionSummary,
    /// The synthesised plans, one per disjunct, when plans were requested
    /// and *every* disjunct has one (executing all of them and unioning
    /// rows computes the union). Shared, not cloned: many responses point
    /// at one cached plan set.
    ///
    /// Ordering caveat: plans follow the disjunct order of the request
    /// that **populated the cache entry** — fingerprints are invariant
    /// under disjunct reordering and duplication, so on a cache hit the
    /// order (and, for duplicated disjuncts, the count) may differ from
    /// this request's own disjunct list. Treat `plans` as an unordered
    /// executable set for the union, not as positionally matched to your
    /// disjuncts.
    pub plans: Vec<Arc<Plan>>,
    /// `Execute` only: the union of the plans' output rows, always sorted
    /// and deduplicated (exactly
    /// [`rbqa_logic::UnionOfConjunctiveQueries::evaluate`] semantics), so
    /// α-equivalent requests observe identical rows no matter which
    /// spelling populated the cache.
    pub rows: Option<Vec<Vec<Value>>>,
    /// `Execute` only: aggregated plan metrics from the simulator (summed
    /// across disjunct plans).
    pub plan_metrics: Option<PlanMetrics>,
    /// Wall-clock time the service spent on this request, in microseconds.
    pub micros: u128,
    /// The request trace, when [`AnswerRequest::trace`] was set: spans,
    /// kernel counters, and exclusive per-phase timings covering this
    /// request's own work (cache hits trace only the lookup). `None`
    /// when tracing was off.
    pub trace: Option<rbqa_obs::Trace>,
    /// `Execute` with `exec.degraded` only: when some union disjuncts
    /// faulted but others succeeded, this lists the failed disjuncts and
    /// [`AnswerResponse::rows`] holds the union of the *surviving*
    /// disjuncts' rows. `None` means the response is complete (or
    /// degraded mode was off — then any disjunct failure fails the whole
    /// request). Partial rows are per-response only; nothing partial is
    /// ever cached (the decision cache stores decisions and plans, and a
    /// degraded run changes neither).
    pub partial: Option<Vec<DisjunctFailure>>,
}

/// One failed disjunct of a degraded (partial) union Execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisjunctFailure {
    /// Index of the failed plan in [`AnswerResponse::plans`].
    pub plan_index: usize,
    /// The stable [`ServiceError::code`] of the failure.
    pub code: &'static str,
    /// Human-readable detail (not part of the stable contract).
    pub detail: String,
}

impl AnswerResponse {
    /// Whether the verdict certified answerability.
    pub fn is_answerable(&self) -> bool {
        matches!(
            self.summary.answerability,
            rbqa_core::Answerability::Answerable
        )
    }

    /// Whether the verdict was `Unknown` (budget exhausted, or no complete
    /// procedure for the class).
    pub fn is_unknown(&self) -> bool {
        matches!(
            self.summary.answerability,
            rbqa_core::Answerability::Unknown
        )
    }

    /// The single plan of a one-disjunct request, when present.
    pub fn plan(&self) -> Option<&Arc<Plan>> {
        match self.plans.as_slice() {
            [p] => Some(p),
            _ => None,
        }
    }
}

/// Errors surfaced by the service facade.
///
/// Every variant has a stable machine-readable code ([`ServiceError::code`])
/// that the wire layer (`rbqa-api`) ships in error responses; match on the
/// code, not the `Display` text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The request referenced an unregistered catalog.
    UnknownCatalog(CatalogId),
    /// A catalog with this name is already registered.
    DuplicateCatalog(String),
    /// `Execute` was requested but the catalog has no dataset attached.
    NoDataset(String),
    /// `Execute` was requested but no executable plan set is available
    /// (query not answerable, a disjunct only answerable via the union, or
    /// synthesis found no crawling plan).
    NoPlan,
    /// Plan execution failed inside the simulator.
    Execution(String),
    /// The request's union has no disjuncts.
    EmptyUnion,
    /// The request's disjuncts disagree on answer arity.
    UnionArityMismatch,
    /// Plan execution exceeded its call budget (a simulator rate limit or
    /// the request's own `call_budget`): the over-quota run fails fast
    /// instead of returning (partial) rows.
    BudgetExhausted {
        /// The quota in force.
        budget: usize,
        /// The 1-based number of the call that violated it.
        calls: usize,
    },
    /// The execution backend (or the simulated service behind it) was
    /// unavailable.
    Unavailable {
        /// Whether retrying the request may succeed.
        retryable: bool,
        /// Human-readable context (not part of the stable contract).
        detail: String,
    },
    /// The request's cooperative deadline expired mid-flight (chase
    /// round, plan access, or cache wait); the work was abandoned and
    /// nothing was cached.
    DeadlineExceeded,
    /// Invalid registration input.
    Invalid(String),
}

impl ServiceError {
    /// The stable machine-readable code of this error.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::UnknownCatalog(_) => "UNKNOWN_CATALOG",
            ServiceError::DuplicateCatalog(_) => "DUPLICATE_CATALOG",
            ServiceError::NoDataset(_) => "NO_DATASET",
            ServiceError::NoPlan => "NO_PLAN",
            ServiceError::Execution(_) => "EXECUTION_FAILED",
            ServiceError::EmptyUnion => "EMPTY_UNION",
            ServiceError::UnionArityMismatch => "UNION_ARITY_MISMATCH",
            ServiceError::BudgetExhausted { .. } => "BUDGET_EXHAUSTED",
            ServiceError::Unavailable { .. } => "BACKEND_UNAVAILABLE",
            ServiceError::DeadlineExceeded => "REQUEST_TIMEOUT",
            ServiceError::Invalid(_) => "INVALID_REQUEST",
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownCatalog(id) => write!(f, "unknown catalog id {}", id.index()),
            ServiceError::DuplicateCatalog(name) => {
                write!(f, "catalog `{name}` is already registered")
            }
            ServiceError::NoDataset(name) => {
                write!(f, "catalog `{name}` has no dataset attached for Execute")
            }
            ServiceError::NoPlan => write!(f, "no executable plan set available"),
            ServiceError::Execution(e) => write!(f, "plan execution failed: {e}"),
            ServiceError::EmptyUnion => write!(f, "the request's union has no disjuncts"),
            ServiceError::UnionArityMismatch => {
                write!(f, "the request's disjuncts disagree on answer arity")
            }
            ServiceError::BudgetExhausted { budget, calls } => write!(
                f,
                "plan execution exhausted its call budget: call {calls} exceeds budget {budget}"
            ),
            ServiceError::Unavailable { retryable, detail } => write!(
                f,
                "execution backend unavailable ({}): {detail}",
                if *retryable { "retryable" } else { "permanent" }
            ),
            ServiceError::DeadlineExceeded => {
                write!(f, "request deadline expired before the work completed")
            }
            ServiceError::Invalid(e) => write!(f, "invalid request: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_logic::CqBuilder;

    fn unary_query(free: bool) -> ConjunctiveQuery {
        let mut b = CqBuilder::new();
        let x = b.var("x");
        if free {
            b.free(x);
        }
        b.atom(rbqa_common::RelationId::from_index(0), vec![x.into()])
            .build()
    }

    #[test]
    fn modes_normalise_options() {
        let q = unary_query(false);
        let vf = ValueFactory::new();
        let d = AnswerRequest::decide(CatalogId::from_index(0), q.clone(), vf.clone());
        assert!(!d.effective_options().synthesize_plan);
        assert_eq!(d.query.len(), 1);
        let s = AnswerRequest::synthesize(CatalogId::from_index(0), q.clone(), vf.clone());
        assert!(s.effective_options().synthesize_plan);
        let e = AnswerRequest::execute(CatalogId::from_index(0), q, vf);
        assert!(e.effective_options().synthesize_plan);
        assert_eq!(e.mode, RequestMode::Execute);
        assert_eq!(e.mode.as_str(), "execute");
    }

    #[test]
    fn shape_validation_rejects_degenerate_unions() {
        let vf = ValueFactory::new();
        let empty = AnswerRequest::decide_union(
            CatalogId::from_index(0),
            UnionOfConjunctiveQueries::new(),
            vf.clone(),
        );
        assert_eq!(
            empty.validate_shape(),
            Err(ServiceError::EmptyUnion),
            "empty unions are rejected before fingerprinting"
        );
        let mixed = AnswerRequest::decide_union(
            CatalogId::from_index(0),
            UnionOfConjunctiveQueries::from_disjuncts(vec![unary_query(true), unary_query(false)]),
            vf.clone(),
        );
        assert_eq!(
            mixed.validate_shape(),
            Err(ServiceError::UnionArityMismatch)
        );
        let ok = AnswerRequest::decide(CatalogId::from_index(0), unary_query(true), vf);
        assert!(ok.validate_shape().is_ok());
    }

    #[test]
    fn errors_render_with_stable_codes() {
        let e = ServiceError::DuplicateCatalog("uni".into());
        assert!(e.to_string().contains("uni"));
        assert_eq!(e.code(), "DUPLICATE_CATALOG");
        assert!(ServiceError::NoPlan.to_string().contains("plan"));
        assert_eq!(ServiceError::NoPlan.code(), "NO_PLAN");
        assert_eq!(ServiceError::EmptyUnion.code(), "EMPTY_UNION");
        // `ServiceError` is a real `std::error::Error`.
        let boxed: Box<dyn std::error::Error> = Box::new(ServiceError::NoPlan);
        assert!(boxed.source().is_none());
    }
}
