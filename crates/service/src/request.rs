//! The request/response vocabulary of the service.

use std::sync::Arc;

use rbqa_access::Plan;
use rbqa_common::{Value, ValueFactory};
use rbqa_core::{AnswerabilityOptions, DecisionSummary};
use rbqa_engine::PlanMetrics;
use rbqa_logic::ConjunctiveQuery;

use crate::catalog::CatalogId;
use crate::fingerprint::Fingerprint;

/// What the client wants done with the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestMode {
    /// Decide monotone answerability only.
    Decide,
    /// Decide and synthesise a crawling plan when answerable.
    Synthesize,
    /// Decide, synthesise, and execute the plan against the catalog's
    /// registered dataset through the simulated services.
    Execute,
}

/// One query-answering request against a registered catalog.
///
/// Build queries with a [`ValueFactory`] derived from
/// [`crate::QueryService::catalog_values`] so that constants shared with
/// the catalog (instance data, constraint constants) keep their identity;
/// the *fingerprint* is factory-independent either way (constants are
/// resolved to strings), so α-equivalent requests from independent
/// factories still share a cache entry.
#[derive(Debug, Clone)]
pub struct AnswerRequest {
    /// The catalog to answer against.
    pub catalog: CatalogId,
    /// The conjunctive query.
    pub query: ConjunctiveQuery,
    /// The factory that interned the query's constants.
    pub values: ValueFactory,
    /// What to do.
    pub mode: RequestMode,
    /// Decision options (budget etc.). `synthesize_plan` is forced on for
    /// [`RequestMode::Synthesize`] and [`RequestMode::Execute`].
    pub options: AnswerabilityOptions,
}

impl AnswerRequest {
    /// A `Decide` request with default options.
    pub fn decide(catalog: CatalogId, query: ConjunctiveQuery, values: ValueFactory) -> Self {
        AnswerRequest {
            catalog,
            query,
            values,
            mode: RequestMode::Decide,
            options: AnswerabilityOptions::default(),
        }
    }

    /// A `Synthesize` request with default options.
    pub fn synthesize(catalog: CatalogId, query: ConjunctiveQuery, values: ValueFactory) -> Self {
        AnswerRequest {
            mode: RequestMode::Synthesize,
            ..Self::decide(catalog, query, values)
        }
    }

    /// An `Execute` request with default options.
    pub fn execute(catalog: CatalogId, query: ConjunctiveQuery, values: ValueFactory) -> Self {
        AnswerRequest {
            mode: RequestMode::Execute,
            ..Self::decide(catalog, query, values)
        }
    }

    /// The options the decision actually runs with: `Synthesize` and
    /// `Execute` imply plan synthesis (this normalisation happens *before*
    /// fingerprinting, so a `Synthesize` and an `Execute` request for the
    /// same query share one cache entry).
    pub fn effective_options(&self) -> AnswerabilityOptions {
        let mut options = self.options;
        if matches!(self.mode, RequestMode::Synthesize | RequestMode::Execute) {
            options.synthesize_plan = true;
        }
        options
    }
}

/// The service's answer to one [`AnswerRequest`].
#[derive(Debug, Clone)]
pub struct AnswerResponse {
    /// The request fingerprint (cache key); equal fingerprints mean the
    /// requests were semantically identical.
    pub fingerprint: Fingerprint,
    /// Whether the decision came from the cache (hit or coalesced wait)
    /// rather than a fresh run of the decision procedure.
    pub cache_hit: bool,
    /// Flat summary of the decision.
    pub summary: DecisionSummary,
    /// The synthesised plan, when one was requested and exists. Shared,
    /// not cloned: many responses point at one cached plan.
    pub plan: Option<Arc<Plan>>,
    /// `Execute` only: the plan's output rows (deterministic selection).
    pub rows: Option<Vec<Vec<Value>>>,
    /// `Execute` only: per-run plan metrics from the simulator.
    pub plan_metrics: Option<PlanMetrics>,
    /// Wall-clock time the service spent on this request, in microseconds.
    pub micros: u128,
}

impl AnswerResponse {
    /// Whether the verdict certified answerability.
    pub fn is_answerable(&self) -> bool {
        matches!(
            self.summary.answerability,
            rbqa_core::Answerability::Answerable
        )
    }
}

/// Errors surfaced by the service facade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The request referenced an unregistered catalog.
    UnknownCatalog(CatalogId),
    /// A catalog with this name is already registered.
    DuplicateCatalog(String),
    /// `Execute` was requested but the catalog has no dataset attached.
    NoDataset(String),
    /// `Execute` was requested but no plan is available (query not
    /// answerable, or synthesis found no crawling plan).
    NoPlan,
    /// Plan execution failed inside the simulator.
    Execution(String),
    /// Invalid registration input.
    Invalid(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownCatalog(id) => write!(f, "unknown catalog id {}", id.index()),
            ServiceError::DuplicateCatalog(name) => {
                write!(f, "catalog `{name}` is already registered")
            }
            ServiceError::NoDataset(name) => {
                write!(f, "catalog `{name}` has no dataset attached for Execute")
            }
            ServiceError::NoPlan => write!(f, "no plan available to execute"),
            ServiceError::Execution(e) => write!(f, "plan execution failed: {e}"),
            ServiceError::Invalid(e) => write!(f, "invalid request: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_logic::CqBuilder;

    #[test]
    fn modes_normalise_options() {
        let mut b = CqBuilder::new();
        let x = b.var("x");
        let q = b
            .atom(rbqa_common::RelationId::from_index(0), vec![x.into()])
            .build();
        let vf = ValueFactory::new();
        let d = AnswerRequest::decide(CatalogId::from_index(0), q.clone(), vf.clone());
        assert!(!d.effective_options().synthesize_plan);
        let s = AnswerRequest::synthesize(CatalogId::from_index(0), q.clone(), vf.clone());
        assert!(s.effective_options().synthesize_plan);
        let e = AnswerRequest::execute(CatalogId::from_index(0), q, vf);
        assert!(e.effective_options().synthesize_plan);
        assert_eq!(e.mode, RequestMode::Execute);
    }

    #[test]
    fn errors_render() {
        let e = ServiceError::DuplicateCatalog("uni".into());
        assert!(e.to_string().contains("uni"));
        assert!(ServiceError::NoPlan.to_string().contains("plan"));
    }
}
