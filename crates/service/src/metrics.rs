//! Service-level metrics.
//!
//! Complements the per-plan-run [`rbqa_engine::PlanMetrics`]: where plan
//! metrics describe one execution (calls per method, tuples over the
//! wire), `ServiceMetrics` aggregates across the whole service lifetime —
//! cache effectiveness, chase work avoided, and per-mode latency.
//!
//! All counters are relaxed atomics: they are monotone event counts read
//! only through [`ServiceMetrics::snapshot`], so no ordering is required.

use std::sync::atomic::{AtomicU64, Ordering};

use rbqa_obs::{Histogram, HistogramSnapshot};

use crate::request::RequestMode;

/// Aggregated counters for one [`crate::QueryService`].
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_coalesced: AtomicU64,
    cache_warm_hits: AtomicU64,
    decisions_computed: AtomicU64,
    chase_rounds_saved: AtomicU64,
    executions: AtomicU64,
    degraded_responses: AtomicU64,
    deadline_timeouts: AtomicU64,
    retries: AtomicU64,
    breaker_rejections: AtomicU64,
    mode_counts: [AtomicU64; 3],
    mode_micros: [AtomicU64; 3],
    /// Per-mode latency distributions (microseconds). The running
    /// sums in `mode_micros` give means; the histograms add tail
    /// quantiles (p50/p95/p99) at a fixed ≤ 25 % relative error.
    mode_hist: [Histogram; 3],
}

fn mode_index(mode: RequestMode) -> usize {
    match mode {
        RequestMode::Decide => 0,
        RequestMode::Synthesize => 1,
        RequestMode::Execute => 2,
    }
}

impl ServiceMetrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_hit(&self, coalesced: bool, rounds_saved: usize) {
        if coalesced {
            self.cache_coalesced.fetch_add(1, Ordering::Relaxed);
        } else {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        self.chase_rounds_saved
            .fetch_add(rounds_saved as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        self.decisions_computed.fetch_add(1, Ordering::Relaxed);
    }

    /// A miss served by decoding a persisted snapshot record instead of
    /// running the pipeline: `decisions_computed` stays untouched — that
    /// is the whole point of warm starts.
    pub(crate) fn record_warm_hit(&self, rounds_saved: usize) {
        self.cache_warm_hits.fetch_add(1, Ordering::Relaxed);
        self.chase_rounds_saved
            .fetch_add(rounds_saved as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_execution(&self) {
        self.executions.fetch_add(1, Ordering::Relaxed);
    }

    /// An `Execute` that returned partial rows under `exec.degraded`
    /// (some disjuncts faulted, the rest were served).
    pub(crate) fn record_degraded(&self) {
        self.degraded_responses.fetch_add(1, Ordering::Relaxed);
    }

    /// A request abandoned because its cooperative deadline expired.
    pub(crate) fn record_timeout(&self) {
        self.deadline_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Resilience work one Execute window performed (no-op when zero, the
    /// overwhelmingly common case).
    pub(crate) fn record_resilience(&self, retries: u64, breaker_rejections: u64) {
        if retries > 0 {
            self.retries.fetch_add(retries, Ordering::Relaxed);
        }
        if breaker_rejections > 0 {
            self.breaker_rejections
                .fetch_add(breaker_rejections, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_latency(&self, mode: RequestMode, micros: u128) {
        let i = mode_index(mode);
        self.mode_counts[i].fetch_add(1, Ordering::Relaxed);
        self.mode_micros[i].fetch_add(micros as u64, Ordering::Relaxed);
        self.mode_hist[i].record(micros as u64);
    }

    /// The full latency distribution of one request mode, in
    /// microseconds. Snapshots are internally consistent per bucket
    /// (each bucket is one atomic) but, like [`ServiceMetrics::snapshot`],
    /// only consistent-enough across buckets under concurrent writes.
    pub fn latency_histogram(&self, mode: RequestMode) -> HistogramSnapshot {
        self.mode_hist[mode_index(mode)].snapshot()
    }

    /// A consistent-enough copy of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            cache_hits: load(&self.cache_hits),
            cache_misses: load(&self.cache_misses),
            cache_coalesced: load(&self.cache_coalesced),
            cache_warm_hits: load(&self.cache_warm_hits),
            decisions_computed: load(&self.decisions_computed),
            chase_rounds_saved: load(&self.chase_rounds_saved),
            executions: load(&self.executions),
            degraded_responses: load(&self.degraded_responses),
            deadline_timeouts: load(&self.deadline_timeouts),
            retries: load(&self.retries),
            breaker_rejections: load(&self.breaker_rejections),
            mode_counts: [
                load(&self.mode_counts[0]),
                load(&self.mode_counts[1]),
                load(&self.mode_counts[2]),
            ],
            mode_micros: [
                load(&self.mode_micros[0]),
                load(&self.mode_micros[1]),
                load(&self.mode_micros[2]),
            ],
            mode_p50: self.quantiles(0.50),
            mode_p95: self.quantiles(0.95),
            mode_p99: self.quantiles(0.99),
            // The cache-discipline block lives on the cache itself;
            // `QueryService::metrics` overlays it on this snapshot.
            ..MetricsSnapshot::default()
        }
    }

    fn quantiles(&self, q: f64) -> [u64; 3] {
        let at = |i: usize| self.mode_hist[i].snapshot().quantile(q);
        [at(0), at(1), at(2)]
    }
}

/// Point-in-time copy of [`ServiceMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests served from a ready cache entry.
    pub cache_hits: u64,
    /// Requests that computed a fresh decision.
    pub cache_misses: u64,
    /// Requests that waited for another in-flight identical request.
    pub cache_coalesced: u64,
    /// Misses served by decoding a persisted snapshot record (warm
    /// starts) — the pipeline did not run.
    pub cache_warm_hits: u64,
    /// Decision-procedure invocations actually run (== cold misses).
    pub decisions_computed: u64,
    /// Total chase rounds that cache hits avoided re-running.
    pub chase_rounds_saved: u64,
    /// `Execute`-mode plan runs performed.
    pub executions: u64,
    /// `Execute` responses served partial under `exec.degraded` (some
    /// disjuncts faulted, the surviving rows were returned anyway).
    pub degraded_responses: u64,
    /// Requests abandoned because their cooperative deadline expired
    /// (`REQUEST_TIMEOUT` responses).
    pub deadline_timeouts: u64,
    /// Retry attempts spent by `Execute` resilience wrappers.
    pub retries: u64,
    /// Accesses rejected by open circuit breakers.
    pub breaker_rejections: u64,
    /// Request counts per mode (`Decide`, `Synthesize`, `Execute`).
    pub mode_counts: [u64; 3],
    /// Cumulative latency per mode, in microseconds.
    pub mode_micros: [u64; 3],
    /// Median latency per mode in microseconds (log-bucket estimate,
    /// ≤ 25 % relative error; 0 when the mode is unused).
    pub mode_p50: [u64; 3],
    /// 95th-percentile latency per mode in microseconds.
    pub mode_p95: [u64; 3],
    /// 99th-percentile latency per mode in microseconds.
    pub mode_p99: [u64; 3],
    /// Decision-cache byte budget (`None` = unbounded).
    pub cache_budget_bytes: Option<u64>,
    /// Bytes currently reserved by resident cache entries (provably
    /// `<= cache_budget_bytes` at every instant).
    pub cache_occupancy_bytes: u64,
    /// Resident cache entries.
    pub cache_entries: u64,
    /// Entries evicted to stay within budget.
    pub cache_evictions: u64,
    /// Bytes those evictions released.
    pub cache_bytes_evicted: u64,
    /// Computed values served but refused residency (no room even after
    /// eviction).
    pub cache_uncacheable: u64,
}

impl MetricsSnapshot {
    /// Requests that skipped the decision procedure entirely (hits,
    /// coalesced waiters, and warm-snapshot decodes): the "chase
    /// invocations saved" of DESIGN.md §6.
    pub fn chase_invocations_saved(&self) -> u64 {
        self.cache_hits + self.cache_coalesced + self.cache_warm_hits
    }

    /// Total cache lookups (every submit consults the cache exactly once).
    pub fn cache_lookups(&self) -> u64 {
        self.cache_hits + self.cache_misses + self.cache_coalesced + self.cache_warm_hits
    }

    /// Fraction of lookups that skipped the pipeline (0.0 when unused).
    pub fn cache_hit_ratio(&self) -> f64 {
        let lookups = self.cache_lookups();
        if lookups == 0 {
            0.0
        } else {
            self.chase_invocations_saved() as f64 / lookups as f64
        }
    }

    /// Mean latency of one mode in microseconds (0 when unused).
    pub fn mean_micros(&self, mode: RequestMode) -> u64 {
        let i = mode_index(mode);
        self.mode_micros[i]
            .checked_div(self.mode_counts[i])
            .unwrap_or(0)
    }

    /// Median latency of one mode in microseconds (0 when unused).
    pub fn p50_micros(&self, mode: RequestMode) -> u64 {
        self.mode_p50[mode_index(mode)]
    }

    /// 95th-percentile latency of one mode in microseconds.
    pub fn p95_micros(&self, mode: RequestMode) -> u64 {
        self.mode_p95[mode_index(mode)]
    }

    /// 99th-percentile latency of one mode in microseconds.
    pub fn p99_micros(&self, mode: RequestMode) -> u64 {
        self.mode_p99[mode_index(mode)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = ServiceMetrics::new();
        m.record_miss();
        m.record_hit(false, 7);
        m.record_hit(true, 7);
        m.record_execution();
        m.record_latency(RequestMode::Decide, 100);
        m.record_latency(RequestMode::Decide, 300);
        m.record_latency(RequestMode::Execute, 50);
        let s = m.snapshot();
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_coalesced, 1);
        assert_eq!(s.decisions_computed, 1);
        assert_eq!(s.chase_rounds_saved, 14);
        assert_eq!(s.chase_invocations_saved(), 2);
        assert_eq!(s.executions, 1);
        assert_eq!(s.mean_micros(RequestMode::Decide), 200);
        assert_eq!(s.mean_micros(RequestMode::Execute), 50);
        assert_eq!(s.mean_micros(RequestMode::Synthesize), 0);
    }

    #[test]
    fn latency_histograms_track_quantiles() {
        let m = ServiceMetrics::new();
        // 95 fast decides and 5 slow outliers: the p99 must see the
        // tail that the mean smears out.
        for _ in 0..95 {
            m.record_latency(RequestMode::Decide, 100);
        }
        for _ in 0..5 {
            m.record_latency(RequestMode::Decide, 100_000);
        }
        let s = m.snapshot();
        let p50 = s.p50_micros(RequestMode::Decide);
        let p99 = s.p99_micros(RequestMode::Decide);
        assert!((75..=125).contains(&p50), "p50 {p50} should be ~100");
        assert!(p99 >= 75_000, "p99 {p99} should see the 100ms outlier");
        assert!(s.p95_micros(RequestMode::Decide) <= p99);
        // Unused modes report empty distributions.
        assert_eq!(s.p99_micros(RequestMode::Synthesize), 0);
        let h = m.latency_histogram(RequestMode::Decide);
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 100);
        assert!(h.max >= 75_000);
    }
}
