//! # rbqa-service
//!
//! A thread-safe, in-process query-answering daemon over the `rbqa`
//! stack (DESIGN.md §6). The library layers below decide monotone
//! answerability one call at a time; this crate turns them into a
//! *service* suitable for heavy traffic over many schemas:
//!
//! * [`catalog`] — a **catalog registry**: clients register named
//!   (schema, constraints) bundles once and refer to them by
//!   [`CatalogId`] afterwards; a catalog may carry a dataset behind a
//!   [`rbqa_engine::ServiceSimulator`] for `Execute` requests;
//! * [`fingerprint`] — **canonical fingerprints**: a 128-bit stable hash
//!   of (schema, constraints, query, result bounds, options) that is
//!   invariant under variable renaming and atom reordering (built on
//!   [`rbqa_logic::canonical`]), so α-equivalent requests are one cache
//!   key;
//! * [`cache`] — a **sharded, single-flight decision cache** with
//!   size-weighted LRU eviction against a byte budget: repeated requests
//!   skip the chase entirely, concurrent identical misses run the
//!   decision pipeline exactly once, and occupancy provably never
//!   exceeds the configured bytes;
//! * [`snapshot`] — **cache persistence**: a CRC-framed, versioned,
//!   corruption-tolerant snapshot log written on graceful shutdown and
//!   compacted on load, so restarts start warm instead of re-chasing;
//! * [`request`] / [`service`] — the **request API**:
//!   [`AnswerRequest`] → [`AnswerResponse`] in `Decide`, `Synthesize`
//!   and `Execute` modes, plus [`QueryService::submit_batch`] fanning a
//!   batch across scoped worker threads with deterministic result
//!   ordering;
//! * [`metrics`] — **service metrics** (cache hits/misses, chase
//!   invocations saved, per-mode latencies) complementing the
//!   per-execution [`rbqa_engine::PlanMetrics`];
//! * [`batch`] / [`export`] — the **deferred-result machinery** behind
//!   the network tier: [`BatchRegistry`] materialises `mode batch`
//!   requests on background workers behind poll-able query ids, and
//!   [`ExportStore`] persists large result sets to a file-backed object
//!   store referenced by `output_location` handles.
//!
//! The cacheability argument: an answerability verdict (and its
//! synthesised plan) is a pure function of the schema, the constraints,
//! the query and the decision options — the paper's decision procedures
//! consult no instance data. Fingerprinting that tuple canonically
//! therefore lets one chase serve arbitrarily many requests, in the
//! spirit of the runtime/static split of Benedikt–Gottlob–Senellart's
//! "Determining Relevance of Accesses at Runtime".

pub mod batch;
pub mod cache;
pub mod catalog;
pub mod export;
pub mod fingerprint;
pub mod metrics;
pub mod request;
pub mod service;
pub mod snapshot;

pub use batch::{BatchRegistry, BatchState, BatchStats, BatchView};
pub use cache::{CacheOutcome, CacheStatsSnapshot, ShardedCache};
pub use catalog::{CatalogEntry, CatalogId, CatalogRegistry};
pub use export::{ExportHandle, ExportStore};
pub use fingerprint::{request_fingerprint, schema_fingerprint, Fingerprint};
// Execution options are part of the request vocabulary; re-export them so
// API layers need not depend on `rbqa-engine` directly.
pub use metrics::{MetricsSnapshot, ServiceMetrics};
pub use rbqa_access::{BreakerPolicy, RetryPolicy};
pub use rbqa_engine::{AdaptiveMode, BackendSpec, ExecOptions, MAX_SHARDS};
pub use request::{AnswerRequest, AnswerResponse, DisjunctFailure, RequestMode, ServiceError};
pub use service::{
    rebase_constants, rebase_cq_constants, CachedDecision, QueryService, ServiceConfig,
};
pub use snapshot::{SnapshotStats, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
