//! The catalog registry: named schemas registered once, fingerprinted once.
//!
//! Clients register a (schema, constraints, value-factory) bundle under a
//! name and get back a [`CatalogId`]; every subsequent request references
//! the catalog by id, so the schema is never re-shipped, re-validated or
//! re-fingerprinted on the hot path. A catalog may also carry a *dataset*
//! (a [`rbqa_engine::ServiceSimulator`] over a hidden instance) enabling
//! `Execute`-mode requests.

use std::sync::Arc;

use rbqa_access::Schema;
use rbqa_common::{Instance, Value, ValueFactory};
use rbqa_engine::ServiceSimulator;

use crate::fingerprint::{schema_fingerprint, Fingerprint};

/// Identifier of a registered catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CatalogId(u32);

impl CatalogId {
    /// Builds a `CatalogId` from a dense index.
    pub fn from_index(index: usize) -> Self {
        CatalogId(u32::try_from(index).expect("more than u32::MAX catalogs"))
    }

    /// The dense index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One registered catalog. Immutable after registration (attach a dataset
/// by replacing the entry, see [`crate::QueryService::attach_dataset`]),
/// so worker threads share it through a plain `Arc` without locking.
#[derive(Debug)]
pub struct CatalogEntry {
    /// Registration name.
    pub name: String,
    /// The schema (signature, constraints, access methods).
    pub schema: Schema,
    /// Factory that interned the schema's constants; clients derive their
    /// query factories from clones of this.
    pub values: ValueFactory,
    /// Fingerprint of the schema, mixed into every request fingerprint.
    pub fingerprint: Fingerprint,
    /// Simulated services over a registered dataset, for `Execute`.
    pub simulator: Option<ServiceSimulator>,
}

impl CatalogEntry {
    /// Creates an entry, computing the schema fingerprint.
    pub fn new(name: &str, schema: Schema, values: ValueFactory) -> Self {
        let resolver = {
            let values = values.clone();
            move |v: Value| values.display(v)
        };
        let fingerprint = schema_fingerprint(&schema, &resolver);
        CatalogEntry {
            name: name.to_owned(),
            schema,
            values,
            fingerprint,
            simulator: None,
        }
    }

    /// Returns a copy of the entry with a dataset attached.
    pub fn with_dataset(&self, data: Instance) -> Self {
        CatalogEntry {
            name: self.name.clone(),
            schema: self.schema.clone(),
            values: self.values.clone(),
            fingerprint: self.fingerprint,
            simulator: Some(ServiceSimulator::new(self.schema.clone(), data)),
        }
    }
}

/// The registry: append-only list of catalogs plus a name index.
#[derive(Debug, Default)]
pub struct CatalogRegistry {
    entries: Vec<Arc<CatalogEntry>>,
}

impl CatalogRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a catalog; names must be unique.
    pub fn register(&mut self, entry: CatalogEntry) -> Result<CatalogId, String> {
        if self.entries.iter().any(|e| e.name == entry.name) {
            return Err(entry.name);
        }
        let id = CatalogId::from_index(self.entries.len());
        self.entries.push(Arc::new(entry));
        Ok(id)
    }

    /// Replaces the entry at `id` (used to attach datasets).
    pub fn replace(&mut self, id: CatalogId, entry: CatalogEntry) -> bool {
        match self.entries.get_mut(id.index()) {
            Some(slot) => {
                *slot = Arc::new(entry);
                true
            }
            None => false,
        }
    }

    /// The entry for `id`.
    pub fn get(&self, id: CatalogId) -> Option<Arc<CatalogEntry>> {
        self.entries.get(id.index()).map(Arc::clone)
    }

    /// Looks a catalog up by name.
    pub fn by_name(&self, name: &str) -> Option<(CatalogId, Arc<CatalogEntry>)> {
        self.entries
            .iter()
            .position(|e| e.name == name)
            .map(|i| (CatalogId::from_index(i), Arc::clone(&self.entries[i])))
    }

    /// Number of registered catalogs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_common::Signature;

    fn schema() -> Schema {
        let mut sig = Signature::new();
        sig.add_relation("R", 2).unwrap();
        Schema::new(sig)
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = CatalogRegistry::new();
        let id = reg
            .register(CatalogEntry::new("a", schema(), ValueFactory::new()))
            .unwrap();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get(id).unwrap().name, "a");
        let (found, entry) = reg.by_name("a").unwrap();
        assert_eq!(found, id);
        assert_eq!(entry.fingerprint, reg.get(id).unwrap().fingerprint);
        assert!(reg.by_name("b").is_none());
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut reg = CatalogRegistry::new();
        reg.register(CatalogEntry::new("a", schema(), ValueFactory::new()))
            .unwrap();
        let err = reg.register(CatalogEntry::new("a", schema(), ValueFactory::new()));
        assert_eq!(err.unwrap_err(), "a");
    }

    #[test]
    fn attach_dataset_via_replace() {
        let mut reg = CatalogRegistry::new();
        let entry = CatalogEntry::new("a", schema(), ValueFactory::new());
        let id = reg.register(entry).unwrap();
        let base = reg.get(id).unwrap();
        let sig = base.schema.signature().clone();
        let with_data = base.with_dataset(Instance::new(sig));
        assert!(reg.replace(id, with_data));
        assert!(reg.get(id).unwrap().simulator.is_some());
        assert!(!reg.replace(
            CatalogId::from_index(9),
            CatalogEntry::new("x", schema(), ValueFactory::new())
        ));
    }
}
