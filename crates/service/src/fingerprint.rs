//! Canonical request fingerprints.
//!
//! A fingerprint is a 128-bit hash of the *semantic content* of an
//! answerability request: the schema (signature, constraints, access
//! methods with their result bounds), the query in canonical α-invariant
//! form (see [`rbqa_logic::canonical`]), and the decision options. Two
//! requests that differ only by variable names, atom order, or the
//! [`rbqa_common::ValueFactory`] that interned their constants produce the
//! same fingerprint and therefore share one cache entry.
//!
//! Hashing is a hand-rolled FNV-1a/128 over the canonical encoding —
//! deterministic across processes and platforms (no `RandomState`, no
//! pointer identity), so fingerprints could be persisted or shipped
//! between nodes.

use rbqa_access::Schema;
use rbqa_common::Value;
use rbqa_core::{AnswerabilityOptions, AxiomStyle};
use rbqa_engine::ExecOptions;
use rbqa_logic::canonical::{canonical_atoms_code, canonical_ucq_code, TaggedAtom};
use rbqa_logic::UnionOfConjunctiveQueries;

/// A 128-bit content fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

/// Incremental FNV-1a/128 hasher over byte strings.
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    state: u128,
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        FingerprintHasher { state: FNV_OFFSET }
    }
}

impl FingerprintHasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Feeds a string with a terminator so fields cannot run together.
    pub fn field(&mut self, s: &str) -> &mut Self {
        self.write(s.as_bytes()).write(&[0xff])
    }

    /// Finalises the fingerprint.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

/// Canonical code of a schema: relations (in declaration order — relation
/// ids are load-bearing for queries), access methods sorted by name, and
/// constraints as sorted canonical atom codes. `resolve` maps constants
/// occurring in constraints to stable strings.
pub fn schema_code(schema: &Schema, resolve: &dyn Fn(Value) -> String) -> String {
    let sig = schema.signature();
    let mut out = String::new();
    out.push_str("relations:");
    for (_, rel) in sig.iter() {
        out.push_str(&format!("{}/{};", rel.name(), rel.arity()));
    }
    out.push_str("|methods:");
    let mut methods: Vec<String> = schema
        .methods()
        .iter()
        .map(|m| {
            let bound = match m.result_bound() {
                None => "inf".to_owned(),
                Some(rb) => format!("{}{}", if rb.lower_only { ">=" } else { "<=" }, rb.limit),
            };
            format!(
                "{}@{}({:?})[{}];",
                m.name(),
                sig.name(m.relation()),
                m.input_positions_vec(),
                bound
            )
        })
        .collect();
    methods.sort();
    for m in methods {
        out.push_str(&m);
    }
    out.push_str("|constraints:");
    let mut codes: Vec<String> = Vec::new();
    for tgd in schema.constraints().tgds() {
        // Body atoms tag 0, head atoms tag 1; no free variables — any
        // consistent renaming of a dependency is the same dependency.
        let atoms: Vec<TaggedAtom<'_>> = tgd
            .body()
            .iter()
            .map(|a| (0u32, a))
            .chain(tgd.head().iter().map(|a| (1u32, a)))
            .collect();
        codes.push(format!(
            "tgd:{}",
            canonical_atoms_code(&atoms, &[], sig, resolve)
        ));
    }
    for fd in schema.constraints().fds() {
        codes.push(format!(
            "fd:{}:{:?}->{}",
            sig.name(fd.relation()),
            fd.determiners(),
            fd.determined()
        ));
    }
    codes.sort();
    for c in codes {
        out.push_str(&c);
        out.push(';');
    }
    out
}

/// Canonical code of the execution options: the backend and the
/// per-request call budget. Part of the fingerprint of `Execute`
/// requests (callers pass [`crate::AnswerRequest::effective_exec`],
/// which normalises other modes to the default) because the fingerprint
/// is the *identity* of a request over the wire: two executes naming
/// different backends are different requests — on result-bounded methods
/// different backends legitimately return different valid outputs, and
/// their accounting (latency, quotas) always differs. The cost is that
/// each backend/budget variant of one query runs the decision pipeline
/// once; the decision itself is exec-independent, so a future
/// optimisation could split the decision key from the request identity.
pub fn exec_options_code(exec: &ExecOptions) -> String {
    exec.code()
}

/// Canonical code of the decision options (everything that can change the
/// cached outcome: the budget, the chase engine, a forced axiom style, and
/// plan synthesis parameters).
///
/// The engine is part of the code even though both engines are
/// semantically equivalent: budget-exhausted prefixes (and hence `Unknown`
/// verdicts near the budget edge) can differ between engines, so cached
/// entries must not be shared across them.
pub fn options_code(options: &AnswerabilityOptions) -> String {
    let style = match options.axiom_style_override {
        None => "auto".to_owned(),
        Some(AxiomStyle::Simplified) => "simplified".to_owned(),
        Some(AxiomStyle::SeparabilityRewriting) => "separability".to_owned(),
        Some(AxiomStyle::NaiveCardinality { cap }) => format!("naive:{cap}"),
    };
    format!(
        "budget:{}/{}/{}/{}|engine:{}|style:{}|plan:{}/{}",
        options.budget.max_facts,
        options.budget.max_rounds,
        options.budget.max_depth,
        options.budget.max_nulls,
        options.chase_engine.as_str(),
        style,
        options.synthesize_plan,
        options.crawl_rounds,
    )
}

/// Fingerprint of a full request against an already-fingerprinted catalog.
///
/// `schema_fingerprint` is computed once at catalog registration; only the
/// query must be canonicalised per request (and the cache makes even that
/// cost rare in steady state: the fingerprint is the key, so it is paid
/// once per *distinct* request shape, not once per chase). The query is a
/// union of CQs; its canonical code is invariant under disjunct
/// reordering, duplicate disjuncts, and α-renaming within any disjunct
/// (see [`rbqa_logic::canonical::canonical_ucq_code`]), so α-equivalent
/// unions share one cache entry.
pub fn request_fingerprint(
    schema_fingerprint: Fingerprint,
    query: &UnionOfConjunctiveQueries,
    signature: &rbqa_common::Signature,
    resolve: &dyn Fn(Value) -> String,
    options: &AnswerabilityOptions,
    exec: &ExecOptions,
) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.field(&format!("{:032x}", schema_fingerprint.0));
    h.field(&canonical_ucq_code(query, signature, resolve));
    h.field(&options_code(options));
    h.field(&exec_options_code(exec));
    h.finish()
}

/// Fingerprint of a schema (see [`schema_code`]).
pub fn schema_fingerprint(schema: &Schema, resolve: &dyn Fn(Value) -> String) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.field(&schema_code(schema, resolve));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_access::AccessMethod;
    use rbqa_common::{Signature, ValueFactory};
    use rbqa_logic::constraints::tgd::inclusion_dependency;
    use rbqa_logic::constraints::ConstraintSet;
    use rbqa_logic::parser::parse_cq;

    fn university(bound: Option<usize>) -> Schema {
        let mut sig = Signature::new();
        let prof = sig.add_relation("Prof", 3).unwrap();
        let udir = sig.add_relation("Udirectory", 3).unwrap();
        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(inclusion_dependency(&sig, prof, &[0], udir, &[0]));
        let mut schema = Schema::with_parts(sig, constraints, vec![]).unwrap();
        schema
            .add_method(AccessMethod::unbounded("pr", prof, &[0]))
            .unwrap();
        let ud = match bound {
            None => AccessMethod::unbounded("ud", udir, &[]),
            Some(k) => AccessMethod::bounded("ud", udir, &[], k),
        };
        schema.add_method(ud).unwrap();
        schema
    }

    #[test]
    fn schema_fingerprint_is_stable_and_sensitive() {
        let resolve = |v: Value| format!("{v}");
        let a = schema_fingerprint(&university(Some(100)), &resolve);
        let b = schema_fingerprint(&university(Some(100)), &resolve);
        assert_eq!(a, b);
        // A different result bound is a different schema.
        let c = schema_fingerprint(&university(Some(10)), &resolve);
        assert_ne!(a, c);
        // No bound differs from any bound.
        let d = schema_fingerprint(&university(None), &resolve);
        assert_ne!(a, d);
    }

    #[test]
    fn alpha_equivalent_requests_collide() {
        let schema = university(Some(100));
        let sfp = schema_fingerprint(&schema, &|v| format!("{v}"));
        let opts = AnswerabilityOptions::default();

        let mut vf1 = ValueFactory::new();
        let mut sig1 = schema.signature().clone();
        let q1 = parse_cq("Q(n) :- Prof(i, n, '10000')", &mut sig1, &mut vf1).unwrap();
        let r1 = {
            let vf = vf1.clone();
            move |v: Value| vf.display(v)
        };

        // Different factory (ids shifted by padding), renamed variables.
        let mut vf2 = ValueFactory::new();
        vf2.constant("padding");
        let mut sig2 = schema.signature().clone();
        let q2 = parse_cq("Q(name) :- Prof(pid, name, '10000')", &mut sig2, &mut vf2).unwrap();
        let r2 = {
            let vf = vf2.clone();
            move |v: Value| vf.display(v)
        };

        let f1 = request_fingerprint(
            sfp,
            &UnionOfConjunctiveQueries::single(q1),
            schema.signature(),
            &r1,
            &opts,
            &ExecOptions::default(),
        );
        let f2 = request_fingerprint(
            sfp,
            &UnionOfConjunctiveQueries::single(q2),
            schema.signature(),
            &r2,
            &opts,
            &ExecOptions::default(),
        );
        assert_eq!(f1, f2);
    }

    #[test]
    fn union_fingerprints_are_disjunct_order_invariant() {
        let schema = university(Some(100));
        let sfp = schema_fingerprint(&schema, &|v| format!("{v}"));
        let opts = AnswerabilityOptions::default();

        let mut vf = ValueFactory::new();
        let mut sig = schema.signature().clone();
        let a = parse_cq("Q(n) :- Prof(i, n, '10000')", &mut sig, &mut vf).unwrap();
        let b = parse_cq("Q(a) :- Udirectory(i, a, p)", &mut sig, &mut vf).unwrap();
        // The same disjuncts, α-renamed and in the other order.
        let a2 = parse_cq("Q(nm) :- Prof(pid, nm, '10000')", &mut sig, &mut vf).unwrap();
        let b2 = parse_cq("Q(ad) :- Udirectory(row, ad, ph)", &mut sig, &mut vf).unwrap();
        let resolve = {
            let vf = vf.clone();
            move |v: Value| vf.display(v)
        };
        let f1 = request_fingerprint(
            sfp,
            &UnionOfConjunctiveQueries::from_disjuncts(vec![a.clone(), b.clone()]),
            schema.signature(),
            &resolve,
            &opts,
            &ExecOptions::default(),
        );
        let f2 = request_fingerprint(
            sfp,
            &UnionOfConjunctiveQueries::from_disjuncts(vec![b2, a2]),
            schema.signature(),
            &resolve,
            &opts,
            &ExecOptions::default(),
        );
        assert_eq!(f1, f2, "α-renamed, permuted unions share a fingerprint");
        let single = request_fingerprint(
            sfp,
            &UnionOfConjunctiveQueries::single(a),
            schema.signature(),
            &resolve,
            &opts,
            &ExecOptions::default(),
        );
        assert_ne!(f1, single);
    }

    #[test]
    fn options_change_the_fingerprint() {
        let schema = university(Some(100));
        let sfp = schema_fingerprint(&schema, &|v| format!("{v}"));
        let mut vf = ValueFactory::new();
        let mut sig = schema.signature().clone();
        let q = parse_cq("Q() :- Udirectory(i, a, p)", &mut sig, &mut vf).unwrap();
        let resolve = {
            let vf = vf.clone();
            move |v: Value| vf.display(v)
        };
        let plain = AnswerabilityOptions::default();
        let with_plan = AnswerabilityOptions {
            synthesize_plan: true,
            ..Default::default()
        };
        let union = UnionOfConjunctiveQueries::single(q);
        let exec = ExecOptions::default();
        let f1 = request_fingerprint(sfp, &union, schema.signature(), &resolve, &plain, &exec);
        let f2 = request_fingerprint(sfp, &union, schema.signature(), &resolve, &with_plan, &exec);
        assert_ne!(f1, f2);
        // Backend/budget choices separate cache entries too.
        let sharded = ExecOptions {
            backend: rbqa_engine::BackendSpec::Sharded { shards: 2 },
            ..ExecOptions::default()
        };
        let budgeted = ExecOptions {
            call_budget: Some(50),
            ..ExecOptions::default()
        };
        let f3 = request_fingerprint(sfp, &union, schema.signature(), &resolve, &plain, &sharded);
        let f4 = request_fingerprint(sfp, &union, schema.signature(), &resolve, &plain, &budgeted);
        assert_ne!(f1, f3);
        assert_ne!(f1, f4);
        assert_ne!(f3, f4);
    }

    #[test]
    fn display_renders_hex() {
        let fp = Fingerprint(0xabcd);
        assert_eq!(fp.to_string().len(), 32);
        assert!(fp.to_string().ends_with("abcd"));
    }
}
