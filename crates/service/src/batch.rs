//! The background materializer behind `option mode batch`.
//!
//! A [`BatchRegistry`] owns a bounded team of worker threads over a
//! shared [`QueryService`]: `enqueue` stamps a monotone `query_id`,
//! parks the request on a queue, and returns immediately; workers drain
//! the queue through [`QueryService::submit`] and park the outcome in a
//! job table the wire layer serves via the `poll`/`fetch` verbs. A job
//! is always in exactly one of four states — `queued`, `running`,
//! `done`, `error` — and only moves forward.
//!
//! Completed jobs are retained (capped, oldest-finished evicted first)
//! so a client may fetch a result more than once; results are stored as
//! `Arc<AnswerResponse>` so repeated fetches share one materialisation.
//! Shutdown is *draining*: workers finish every queued job before they
//! exit, which is what lets the network server promise graceful
//! shutdown without dropping accepted work.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::request::{AnswerRequest, AnswerResponse, RequestMode, ServiceError};
use crate::service::QueryService;

/// Completed (done/error) jobs retained for fetching; oldest evicted
/// beyond this. Queued/running jobs are never evicted.
const MAX_RETAINED: usize = 1024;

/// Lifecycle state of one batch job.
#[derive(Debug, Clone)]
pub enum BatchState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is materialising it.
    Running,
    /// Materialised successfully; the response is shared.
    Done(Arc<AnswerResponse>),
    /// The service rejected it.
    Failed(ServiceError),
}

impl BatchState {
    /// The wire name of the state.
    pub fn name(&self) -> &'static str {
        match self {
            BatchState::Queued => "queued",
            BatchState::Running => "running",
            BatchState::Done(_) => "done",
            BatchState::Failed(_) => "error",
        }
    }

    fn finished(&self) -> bool {
        matches!(self, BatchState::Done(_) | BatchState::Failed(_))
    }
}

/// What `poll`/`fetch` see about one job: the display catalog name and
/// mode captured at enqueue time (the wire layer renders responses with
/// them) plus the current state.
#[derive(Debug, Clone)]
pub struct BatchView {
    /// Catalog name as the enqueuing session spelled it.
    pub catalog: String,
    /// The request's mode.
    pub mode: RequestMode,
    /// Current lifecycle state.
    pub state: BatchState,
}

/// Counters for one registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Jobs accepted over the registry's lifetime.
    pub enqueued: u64,
    /// Jobs materialised successfully.
    pub completed: u64,
    /// Jobs that ended in a service error.
    pub failed: u64,
    /// Jobs currently waiting for a worker.
    pub queue_depth: u64,
    /// Jobs currently being materialised.
    pub running: u64,
}

struct Job {
    catalog: String,
    mode: RequestMode,
    state: BatchState,
}

struct Shared {
    service: Arc<QueryService>,
    queue: Mutex<VecDeque<(u64, AnswerRequest)>>,
    ready: Condvar,
    idle: Condvar,
    jobs: Mutex<BTreeMap<u64, Job>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    running: AtomicU64,
    enqueued: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
}

impl Shared {
    fn set_state(&self, id: u64, state: BatchState) {
        let mut jobs = self.jobs.lock().expect("jobs lock");
        if let Some(job) = jobs.get_mut(&id) {
            job.state = state;
        }
        // Retention: drop the oldest finished jobs beyond the cap.
        if jobs.len() > MAX_RETAINED {
            let victims: Vec<u64> = jobs
                .iter()
                .filter(|(_, j)| j.state.finished())
                .map(|(&id, _)| id)
                .take(jobs.len() - MAX_RETAINED)
                .collect();
            for id in victims {
                jobs.remove(&id);
            }
        }
    }

    fn worker(&self) {
        loop {
            let next = {
                let mut queue = self.queue.lock().expect("queue lock");
                loop {
                    if let Some(job) = queue.pop_front() {
                        // Claimed under the queue lock so `drain` never
                        // observes "queue empty, nothing running" while a
                        // job is in hand-off.
                        self.running.fetch_add(1, Ordering::Relaxed);
                        break Some(job);
                    }
                    if self.shutdown.load(Ordering::Relaxed) {
                        break None;
                    }
                    queue = self
                        .ready
                        .wait_timeout(queue, Duration::from_millis(100))
                        .expect("queue lock")
                        .0;
                }
            };
            let Some((id, request)) = next else { return };
            self.set_state(id, BatchState::Running);
            match self.service.submit(&request) {
                Ok(response) => {
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    self.set_state(id, BatchState::Done(Arc::new(response)));
                }
                Err(e) => {
                    self.failed.fetch_add(1, Ordering::Relaxed);
                    self.set_state(id, BatchState::Failed(e));
                }
            }
            let _queue = self.queue.lock().expect("queue lock");
            self.running.fetch_sub(1, Ordering::Relaxed);
            self.idle.notify_all();
        }
    }
}

/// A queue + worker pool materialising batch requests against a shared
/// [`QueryService`]. See the module docs for the lifecycle.
pub struct BatchRegistry {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for BatchRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchRegistry")
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl BatchRegistry {
    /// Spawns a registry with `workers` materializer threads (at least
    /// one) over `service`.
    pub fn new(service: Arc<QueryService>, workers: usize) -> Self {
        let shared = Arc::new(Shared {
            service,
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            idle: Condvar::new(),
            jobs: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            running: AtomicU64::new(0),
            enqueued: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rbqa-batch-{i}"))
                    .spawn(move || shared.worker())
                    .expect("spawn batch worker")
            })
            .collect();
        BatchRegistry {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Accepts a request for background materialisation and returns its
    /// `query_id`. `catalog` is the display name echoed back by
    /// `poll`/`fetch` (sessions namespace their internal catalog names,
    /// so the request's own id is not presentable).
    ///
    /// After [`BatchRegistry::shutdown`] the job is refused: it is
    /// recorded immediately in the `error` state so a poll explains what
    /// happened instead of hanging at `queued` forever.
    pub fn enqueue(&self, request: AnswerRequest, catalog: &str) -> u64 {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        self.shared.enqueued.fetch_add(1, Ordering::Relaxed);
        let refused = self.shared.shutdown.load(Ordering::Relaxed);
        let state = if refused {
            self.shared.failed.fetch_add(1, Ordering::Relaxed);
            BatchState::Failed(ServiceError::Unavailable {
                retryable: false,
                detail: "batch registry is shut down".into(),
            })
        } else {
            BatchState::Queued
        };
        self.shared.jobs.lock().expect("jobs lock").insert(
            id,
            Job {
                catalog: catalog.to_string(),
                mode: request.mode,
                state,
            },
        );
        if !refused {
            let mut queue = self.shared.queue.lock().expect("queue lock");
            queue.push_back((id, request));
            self.shared.ready.notify_one();
        }
        id
    }

    /// The current view of a job, or `None` for an unknown (or evicted)
    /// `query_id`.
    pub fn view(&self, id: u64) -> Option<BatchView> {
        self.shared
            .jobs
            .lock()
            .expect("jobs lock")
            .get(&id)
            .map(|job| BatchView {
                catalog: job.catalog.clone(),
                mode: job.mode,
                state: job.state.clone(),
            })
    }

    /// Jobs waiting for a worker right now.
    pub fn queue_depth(&self) -> u64 {
        self.shared.queue.lock().expect("queue lock").len() as u64
    }

    /// Current counters.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            enqueued: self.shared.enqueued.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            failed: self.shared.failed.load(Ordering::Relaxed),
            queue_depth: self.queue_depth(),
            running: self.shared.running.load(Ordering::Relaxed),
        }
    }

    /// Blocks until every accepted job has finished (queue empty and no
    /// worker mid-job).
    pub fn drain(&self) {
        let mut queue = self.shared.queue.lock().expect("queue lock");
        while !queue.is_empty() || self.shared.running.load(Ordering::Relaxed) > 0 {
            queue = self
                .shared
                .idle
                .wait_timeout(queue, Duration::from_millis(50))
                .expect("queue lock")
                .0;
        }
    }

    /// Draining shutdown: workers finish every queued job, then exit and
    /// are joined. Idempotent; jobs enqueued afterwards are refused (see
    /// [`BatchRegistry::enqueue`]).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.ready.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().expect("workers lock"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for BatchRegistry {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_access::AccessMethod;
    use rbqa_common::{Instance, Signature, Value, ValueFactory};
    use rbqa_logic::constraints::ConstraintSet;
    use rbqa_logic::parser::parse_cq;

    /// A service with one registered catalog (`Prof(id, name, dept)`,
    /// unbounded full-scan access, three facts) and a matching execute
    /// request.
    fn service_and_request() -> (Arc<QueryService>, AnswerRequest) {
        let mut sig = Signature::new();
        let prof = sig.add_relation("Prof", 3).unwrap();
        let mut schema =
            rbqa_access::Schema::with_parts(sig.clone(), ConstraintSet::new(), vec![]).unwrap();
        schema
            .add_method(AccessMethod::unbounded("pr", prof, &[]))
            .unwrap();
        let mut values = ValueFactory::new();
        let mut data = Instance::new(sig);
        for (i, name) in [("7", "ada"), ("8", "alan"), ("9", "grace")] {
            let row: Vec<Value> = [i, name, "cs"].iter().map(|s| values.constant(s)).collect();
            data.insert(prof, row).unwrap();
        }
        let service = Arc::new(QueryService::new());
        let id = service
            .register_catalog("cat", schema, values)
            .expect("register");
        service.attach_dataset(id, data).expect("dataset");
        let mut vf = service.catalog_values(id).unwrap();
        let mut sig = service.catalog_signature(id).unwrap();
        let q = parse_cq("Q(n) :- Prof(i, n, 'cs')", &mut sig, &mut vf).unwrap();
        let request = AnswerRequest::execute(id, q, vf);
        (service, request)
    }

    fn wait_done(reg: &BatchRegistry, id: u64) -> BatchView {
        for _ in 0..1000 {
            let view = reg.view(id).expect("job known");
            if view.state.finished() {
                return view;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("job {id} never finished");
    }

    #[test]
    fn jobs_materialise_in_the_background() {
        let (service, request) = service_and_request();
        let reg = BatchRegistry::new(Arc::clone(&service), 1);
        let id = reg.enqueue(request.clone(), "cat");
        assert_eq!(id, 1);
        let view = wait_done(&reg, id);
        assert_eq!(view.catalog, "cat");
        assert_eq!(view.mode, RequestMode::Execute);
        let BatchState::Done(response) = view.state else {
            panic!("expected done, got {}", view.state.name());
        };
        assert_eq!(response.rows.as_ref().map(Vec::len), Some(3));
        // Second enqueue of the same request hits the decision cache.
        let id2 = reg.enqueue(request, "cat");
        let view2 = wait_done(&reg, id2);
        let BatchState::Done(r2) = view2.state else {
            panic!("expected done");
        };
        assert!(r2.cache_hit);
        let stats = reg.stats();
        assert_eq!(stats.enqueued, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn unknown_ids_are_none_and_errors_are_recorded() {
        let (service, mut request) = service_and_request();
        let reg = BatchRegistry::new(service, 1);
        assert!(reg.view(42).is_none());
        // Break the request: point at an unregistered catalog id.
        request.catalog = crate::catalog::CatalogId::from_index(99);
        let id = reg.enqueue(request, "cat");
        let view = wait_done(&reg, id);
        let BatchState::Failed(e) = view.state else {
            panic!("expected error state");
        };
        assert_eq!(e.code(), "UNKNOWN_CATALOG");
        assert_eq!(reg.stats().failed, 1);
    }

    #[test]
    fn shutdown_drains_queued_jobs_then_refuses() {
        let (service, request) = service_and_request();
        let reg = BatchRegistry::new(Arc::clone(&service), 2);
        let ids: Vec<u64> = (0..8)
            .map(|_| reg.enqueue(request.clone(), "cat"))
            .collect();
        reg.drain();
        reg.shutdown();
        for id in ids {
            let view = reg.view(id).expect("retained");
            assert!(
                matches!(view.state, BatchState::Done(_)),
                "job {id} not done after draining shutdown"
            );
        }
        let refused = reg.enqueue(request, "cat");
        let view = reg.view(refused).expect("refused job recorded");
        assert!(matches!(view.state, BatchState::Failed(_)));
        assert_eq!(view.state.name(), "error");
    }
}
