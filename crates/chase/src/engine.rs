//! The restricted chase engine with FD (EGD) handling, depth tracking and
//! budgets.

use rbqa_common::{Fact, Instance, Value, ValueFactory};
use rbqa_logic::constraints::ConstraintSet;
use rbqa_logic::Fd;
use rustc_hash::FxHashMap;

use crate::budget::Budget;
use crate::result::{ChaseOutcome, ChaseStats, Completion};
use crate::trigger::{active_triggers, head_satisfied, matched_body_facts};

/// Configuration of a chase run.
#[derive(Debug, Clone, Copy)]
pub struct ChaseConfig {
    /// Resource limits.
    pub budget: Budget,
    /// Whether FDs are chased (value unification). When `false`, FDs in the
    /// constraint set are ignored.
    pub apply_fds: bool,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            budget: Budget::default(),
            apply_fds: true,
        }
    }
}

impl ChaseConfig {
    /// Config with the given budget and FD chasing enabled.
    pub fn with_budget(budget: Budget) -> Self {
        ChaseConfig {
            budget,
            apply_fds: true,
        }
    }
}

/// Runs the restricted chase of `constraints` on `instance`.
///
/// * TGDs are fired on active triggers only, with fresh nulls drawn from
///   `values` for existentially quantified head variables.
/// * FDs are applied as EGDs: when two facts violate an FD, the values at
///   the determined position are unified (nulls are substituted away;
///   equating two distinct constants aborts with
///   [`Completion::FdFailure`]).
/// * Every fact carries a derivation depth (input facts have depth 0; a
///   fired head fact has depth one more than the largest depth among the
///   facts matched by its trigger). Triggers whose result would exceed
///   `budget.max_depth` are not fired; if any such trigger is skipped the
///   run ends as [`Completion::BudgetExhausted`] instead of
///   [`Completion::Saturated`].
pub fn chase(
    instance: &Instance,
    constraints: &ConstraintSet,
    values: &mut ValueFactory,
    config: ChaseConfig,
) -> ChaseOutcome {
    let budget = config.budget;
    let mut current = instance.clone();
    let mut depths: FxHashMap<Fact, usize> = current.iter_facts().map(|f| (f, 0)).collect();
    let mut stats = ChaseStats::default();

    // Apply the FDs once before any TGD round so that the input instance is
    // already consistent.
    if config.apply_fds {
        match apply_fds_to_fixpoint(&mut current, constraints.fds(), &mut depths, &mut stats) {
            Ok(()) => {}
            Err(()) => {
                return ChaseOutcome {
                    instance: current,
                    completion: Completion::FdFailure,
                    stats,
                };
            }
        }
    }

    loop {
        if stats.rounds >= budget.max_rounds {
            return ChaseOutcome {
                instance: current,
                completion: Completion::BudgetExhausted,
                stats,
            };
        }
        stats.rounds += 1;

        // Collect the active triggers against the instance at the start of
        // the round. Trigger enumeration per rule is capped: rules with many
        // body atoms can have exponentially many homomorphisms, and the cap
        // turns that into an explicit budget exhaustion instead of a hang.
        let mut skipped_for_depth = false;
        let mut fired_any = false;
        let mut over_budget = false;

        let trigger_limit = budget
            .max_facts
            .saturating_sub(current.len())
            .saturating_add(2);
        let mut triggers = Vec::new();
        for (i, tgd) in constraints.tgds().iter().enumerate() {
            let (mut found, truncated) = active_triggers(tgd, i, &current, trigger_limit);
            if truncated {
                over_budget = true;
            }
            triggers.append(&mut found);
        }

        for trigger in triggers {
            let tgd = &constraints.tgds()[trigger.tgd_index];
            // Re-check activeness against the *current* instance: earlier
            // firings in this round may have satisfied the head already
            // (this is what makes the chase "restricted").
            if head_satisfied(tgd, &current, &trigger.assignment) {
                continue;
            }
            // Depth of the new facts.
            let body_facts = matched_body_facts(tgd, &trigger.assignment);
            let body_depth = body_facts
                .iter()
                .map(|(rel, tuple)| {
                    depths
                        .get(&Fact::new(*rel, tuple.clone()))
                        .copied()
                        .unwrap_or(0)
                })
                .max()
                .unwrap_or(0);
            let new_depth = body_depth + 1;
            if new_depth > budget.max_depth {
                skipped_for_depth = true;
                continue;
            }

            // Extend the assignment with fresh nulls for the existential
            // variables, then add every head atom.
            let mut assignment = trigger.assignment.clone();
            for v in tgd.existential_variables() {
                if stats.nulls_created >= budget.max_nulls {
                    over_budget = true;
                    break;
                }
                assignment.insert(v, values.fresh_null());
                stats.nulls_created += 1;
            }
            if over_budget {
                break;
            }
            for atom in tgd.head() {
                let tuple: Vec<Value> = atom
                    .instantiate(&assignment)
                    .expect("all head variables are assigned");
                let fact = Fact::new(atom.relation(), tuple.clone());
                if current
                    .insert(atom.relation(), tuple)
                    .expect("head atoms respect the signature")
                {
                    depths.entry(fact).or_insert(new_depth);
                    stats.max_depth_reached = stats.max_depth_reached.max(new_depth);
                }
            }
            stats.tgd_firings += 1;
            fired_any = true;

            if current.len() > budget.max_facts {
                over_budget = true;
                break;
            }
        }

        // Re-establish the FDs after the round.
        if config.apply_fds {
            match apply_fds_to_fixpoint(&mut current, constraints.fds(), &mut depths, &mut stats) {
                Ok(()) => {}
                Err(()) => {
                    return ChaseOutcome {
                        instance: current,
                        completion: Completion::FdFailure,
                        stats,
                    };
                }
            }
        }

        if over_budget {
            return ChaseOutcome {
                instance: current,
                completion: Completion::BudgetExhausted,
                stats,
            };
        }
        if !fired_any {
            let completion = if skipped_for_depth {
                Completion::DepthCapped
            } else {
                Completion::Saturated
            };
            return ChaseOutcome {
                instance: current,
                completion,
                stats,
            };
        }
    }
}

/// Union-find over values used by the FD chase.
struct UnionFind {
    parent: FxHashMap<Value, Value>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind {
            parent: FxHashMap::default(),
        }
    }

    fn find(&mut self, v: Value) -> Value {
        let p = *self.parent.get(&v).unwrap_or(&v);
        if p == v {
            return v;
        }
        let root = self.find(p);
        self.parent.insert(v, root);
        root
    }

    /// Unions the classes of `a` and `b`, preferring a constant (then the
    /// smaller value) as representative. Returns `Err(())` if two distinct
    /// constants would be merged.
    fn union(&mut self, a: Value, b: Value) -> Result<bool, ()> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Ok(false);
        }
        let (root, child) = match (ra.is_const(), rb.is_const()) {
            (true, true) => return Err(()),
            (true, false) => (ra, rb),
            (false, true) => (rb, ra),
            (false, false) => {
                if ra <= rb {
                    (ra, rb)
                } else {
                    (rb, ra)
                }
            }
        };
        self.parent.insert(child, root);
        Ok(true)
    }
}

/// Applies the FDs as EGDs until no violation remains. Returns `Err(())` on
/// a hard failure (two distinct constants equated).
fn apply_fds_to_fixpoint(
    instance: &mut Instance,
    fds: &[Fd],
    depths: &mut FxHashMap<Fact, usize>,
    stats: &mut ChaseStats,
) -> Result<(), ()> {
    if fds.is_empty() {
        return Ok(());
    }
    loop {
        let mut uf = UnionFind::new();
        let mut merged_any = false;
        for fd in fds {
            // Group tuples of the FD's relation by their determiner values.
            let mut groups: FxHashMap<Vec<Value>, Vec<Value>> = FxHashMap::default();
            for tuple in instance.tuples(fd.relation()) {
                let key: Vec<Value> = fd.determiners().iter().map(|&p| tuple[p]).collect();
                groups.entry(key).or_default().push(tuple[fd.determined()]);
            }
            for (_, vals) in groups {
                for pair in vals.windows(2) {
                    if uf.find(pair[0]) != uf.find(pair[1]) && uf.union(pair[0], pair[1])? {
                        merged_any = true;
                        stats.fd_unifications += 1;
                    }
                }
            }
        }
        if !merged_any {
            return Ok(());
        }
        // Build the substitution and rewrite the instance and depth map.
        let dom = instance.active_domain();
        let mut subst: FxHashMap<Value, Value> = FxHashMap::default();
        for v in dom {
            let r = uf.find(v);
            if r != v {
                subst.insert(v, r);
            }
        }
        if subst.is_empty() {
            return Ok(());
        }
        *instance = instance.map_values(&subst);
        let mut new_depths: FxHashMap<Fact, usize> = FxHashMap::default();
        for (fact, depth) in depths.iter() {
            let args: Vec<Value> = fact
                .args()
                .iter()
                .map(|v| *subst.get(v).unwrap_or(v))
                .collect();
            let new_fact = Fact::new(fact.relation(), args);
            let entry = new_depths.entry(new_fact).or_insert(*depth);
            *entry = (*entry).min(*depth);
        }
        *depths = new_depths;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_common::Signature;
    use rbqa_logic::constraints::tgd::{inclusion_dependency, TgdBuilder};
    use rbqa_logic::Term;

    fn sig2() -> (Signature, rbqa_common::RelationId, rbqa_common::RelationId) {
        let mut sig = Signature::new();
        let r = sig.add_relation("R", 2).unwrap();
        let s = sig.add_relation("S", 2).unwrap();
        (sig, r, s)
    }

    #[test]
    fn chase_terminates_on_acyclic_ids() {
        let (sig, r, s) = sig2();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let mut inst = Instance::new(sig.clone());
        inst.insert(r, vec![a, b]).unwrap();

        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));

        let out = chase(&inst, &constraints, &mut vf, ChaseConfig::default());
        assert!(out.is_saturated());
        assert_eq!(out.instance.relation_len(s), 1);
        assert_eq!(out.stats.tgd_firings, 1);
        assert_eq!(out.stats.nulls_created, 1);
        // The new S-fact carries b forward and a fresh null.
        let s_fact = out.instance.tuples(s).next().unwrap();
        assert_eq!(s_fact[0], b);
        assert!(s_fact[1].is_null());
    }

    #[test]
    fn chase_is_restricted_no_redundant_witnesses() {
        let (sig, r, s) = sig2();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let c = vf.constant("c");
        let mut inst = Instance::new(sig.clone());
        inst.insert(r, vec![a, b]).unwrap();
        inst.insert(s, vec![b, c]).unwrap(); // head already satisfied

        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));

        let out = chase(&inst, &constraints, &mut vf, ChaseConfig::default());
        assert!(out.is_saturated());
        assert_eq!(out.stats.tgd_firings, 0);
        assert_eq!(out.instance.len(), 2);
    }

    #[test]
    fn cyclic_ids_hit_budget() {
        // R(x, y) -> ∃z S(y, z) and S(x, y) -> ∃z R(y, z): infinite chase.
        let (sig, r, s) = sig2();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let mut inst = Instance::new(sig.clone());
        inst.insert(r, vec![a, b]).unwrap();

        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));
        constraints.push_tgd(inclusion_dependency(&sig, s, &[1], r, &[0]));

        let budget = Budget::small().with_max_depth(6);
        let out = chase(
            &inst,
            &constraints,
            &mut vf,
            ChaseConfig::with_budget(budget),
        );
        assert_eq!(out.completion, Completion::DepthCapped);
        assert!(out.stats.max_depth_reached <= 6);
        assert!(out.instance.len() > 2);
    }

    #[test]
    fn fd_chase_unifies_nulls() {
        // S(x, y) with FD 0 -> 1: two facts S(a, n) and S(a, b) must unify
        // n with b.
        let (sig, _r, s) = sig2();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let n = vf.fresh_null();
        let mut inst = Instance::new(sig.clone());
        inst.insert(s, vec![a, n]).unwrap();
        inst.insert(s, vec![a, b]).unwrap();

        let mut constraints = ConstraintSet::new();
        constraints.push_fd(Fd::new(s, vec![0], 1));

        let out = chase(&inst, &constraints, &mut vf, ChaseConfig::default());
        assert!(out.is_saturated());
        assert_eq!(out.instance.len(), 1);
        assert!(out.instance.contains(s, &[a, b]));
        assert!(out.stats.fd_unifications >= 1);
    }

    #[test]
    fn fd_chase_fails_on_distinct_constants() {
        let (sig, _r, s) = sig2();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let c = vf.constant("c");
        let mut inst = Instance::new(sig.clone());
        inst.insert(s, vec![a, b]).unwrap();
        inst.insert(s, vec![a, c]).unwrap();

        let mut constraints = ConstraintSet::new();
        constraints.push_fd(Fd::new(s, vec![0], 1));

        let out = chase(&inst, &constraints, &mut vf, ChaseConfig::default());
        assert!(out.is_fd_failure());
    }

    #[test]
    fn fds_ignored_when_disabled() {
        let (sig, _r, s) = sig2();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let c = vf.constant("c");
        let mut inst = Instance::new(sig.clone());
        inst.insert(s, vec![a, b]).unwrap();
        inst.insert(s, vec![a, c]).unwrap();

        let mut constraints = ConstraintSet::new();
        constraints.push_fd(Fd::new(s, vec![0], 1));

        let config = ChaseConfig {
            budget: Budget::default(),
            apply_fds: false,
        };
        let out = chase(&inst, &constraints, &mut vf, config);
        assert!(out.is_saturated());
        assert_eq!(out.instance.len(), 2);
    }

    #[test]
    fn interaction_of_tgds_and_fds() {
        // R(x, y) -> ∃z S(x, z); FD S: 0 -> 1. Chasing R(a, b) and S(a, c)
        // does not fire the TGD (restricted chase); chasing R(a, b) alone
        // creates S(a, n) which stays.
        let (sig, r, s) = sig2();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let c = vf.constant("c");

        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(inclusion_dependency(&sig, r, &[0], s, &[0]));
        constraints.push_fd(Fd::new(s, vec![0], 1));

        let mut with_s = Instance::new(sig.clone());
        with_s.insert(r, vec![a, b]).unwrap();
        with_s.insert(s, vec![a, c]).unwrap();
        let out = chase(&with_s, &constraints, &mut vf, ChaseConfig::default());
        assert!(out.is_saturated());
        assert_eq!(out.instance.len(), 2);

        let mut without_s = Instance::new(sig.clone());
        without_s.insert(r, vec![a, b]).unwrap();
        let out = chase(&without_s, &constraints, &mut vf, ChaseConfig::default());
        assert!(out.is_saturated());
        assert_eq!(out.instance.relation_len(s), 1);
    }

    #[test]
    fn full_tgd_closure() {
        // Transitivity-like full TGD: R(x, y), R(y, z) -> R(x, z) over a
        // chain of length 3 produces the full transitive closure.
        let (sig, r, _s) = sig2();
        let mut vf = ValueFactory::new();
        let v: Vec<_> = (0..4).map(|i| vf.constant(&format!("v{i}"))).collect();
        let mut inst = Instance::new(sig.clone());
        for i in 0..3 {
            inst.insert(r, vec![v[i], v[i + 1]]).unwrap();
        }
        let mut b = TgdBuilder::new();
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.body_atom(r, vec![Term::Var(x), Term::Var(y)]);
        b.body_atom(r, vec![Term::Var(y), Term::Var(z)]);
        b.head_atom(r, vec![Term::Var(x), Term::Var(z)]);
        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(b.build());

        let out = chase(&inst, &constraints, &mut vf, ChaseConfig::default());
        assert!(out.is_saturated());
        // Closure of a 3-edge chain has 3 + 2 + 1 = 6 edges.
        assert_eq!(out.instance.relation_len(r), 6);
        assert_eq!(out.stats.nulls_created, 0);
    }
}
