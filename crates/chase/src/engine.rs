//! The restricted chase engine with FD (EGD) handling, depth tracking and
//! budgets.
//!
//! Two interchangeable engines implement the same restricted-chase
//! semantics (selected via [`ChaseConfig::engine`]):
//!
//! * [`ChaseEngine::Naive`] — the textbook engine: every round re-enumerates
//!   all body homomorphisms of all TGDs against the full instance;
//! * [`ChaseEngine::SemiNaive`] (the default) — the delta-driven engine of
//!   [`crate::seminaive`]: a round only re-evaluates rules whose body
//!   mentions a relation that gained facts, and homomorphism search is
//!   seeded from the newly derived facts.
//!
//! Both engines produce the same [`Completion`] and homomorphically
//! equivalent instances whenever the budget does not truncate enumeration
//! (the differential property test in `tests/chase_differential.rs` checks
//! this on random schemas and constraint sets). At the
//! [`Budget::trigger_limit`] cap the engines can differ in the sound
//! direction only: the semi-naive engine enumerates strictly fewer
//! homomorphisms per round, so it may still saturate where the naive
//! engine reports [`Completion::BudgetExhausted`] — never the reverse.

use rbqa_common::{Fact, Instance, Value, ValueFactory};
use rbqa_logic::constraints::ConstraintSet;
use rbqa_logic::Fd;
use rustc_hash::{FxHashMap, FxHashSet};

use crate::budget::Budget;
use crate::result::{ChaseOutcome, ChaseStats, Completion};
use crate::trigger::{active_triggers, head_satisfied, matched_body_facts};

/// Which chase implementation to run. Both engines implement the restricted
/// chase and agree on [`Completion`] away from the enumeration cap (see the
/// module docs); they differ only in how triggers are found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChaseEngine {
    /// Re-enumerate every body homomorphism of every TGD each round.
    /// Quadratic in the number of rounds; kept as the differential-testing
    /// baseline and for the benchmark ablation.
    Naive,
    /// Delta-driven (semi-naive) evaluation with indexed trigger matching:
    /// each round only considers triggers with at least one body atom
    /// matching a fact derived in the previous round. See
    /// [`crate::seminaive`].
    #[default]
    SemiNaive,
}

impl ChaseEngine {
    /// Stable lowercase name, used in benchmark reports and cache
    /// fingerprints.
    pub fn as_str(self) -> &'static str {
        match self {
            ChaseEngine::Naive => "naive",
            ChaseEngine::SemiNaive => "seminaive",
        }
    }
}

/// Configuration of a chase run.
#[derive(Debug, Clone, Copy)]
pub struct ChaseConfig {
    /// Resource limits.
    pub budget: Budget,
    /// Whether FDs are chased (value unification). When `false`, FDs in the
    /// constraint set are ignored.
    pub apply_fds: bool,
    /// Which engine runs the TGD rounds.
    pub engine: ChaseEngine,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            budget: Budget::default(),
            apply_fds: true,
            engine: ChaseEngine::default(),
        }
    }
}

impl ChaseConfig {
    /// Config with the given budget, FD chasing enabled and the default
    /// (semi-naive) engine.
    pub fn with_budget(budget: Budget) -> Self {
        ChaseConfig {
            budget,
            ..ChaseConfig::default()
        }
    }

    /// Returns a copy using the given engine.
    pub fn with_engine(mut self, engine: ChaseEngine) -> Self {
        self.engine = engine;
        self
    }
}

/// Runs the restricted chase of `constraints` on `instance`.
///
/// * TGDs are fired on active triggers only, with fresh nulls drawn from
///   `values` for existentially quantified head variables.
/// * FDs are applied as EGDs: when two facts violate an FD, the values at
///   the determined position are unified (nulls are substituted away;
///   equating two distinct constants aborts with
///   [`Completion::FdFailure`]).
/// * Every fact carries a derivation depth (input facts have depth 0; a
///   fired head fact has depth one more than the largest depth among the
///   facts matched by its trigger). Triggers whose result would exceed
///   `budget.max_depth` are not fired; if any such trigger is skipped the
///   run ends as [`Completion::DepthCapped`] instead of
///   [`Completion::Saturated`].
///
/// ```
/// use rbqa_chase::{chase, ChaseConfig};
/// use rbqa_common::{Instance, Signature, ValueFactory};
/// use rbqa_logic::constraints::tgd::inclusion_dependency;
/// use rbqa_logic::constraints::ConstraintSet;
///
/// let mut sig = Signature::new();
/// let r = sig.add_relation("R", 2).unwrap();
/// let s = sig.add_relation("S", 2).unwrap();
/// let mut values = ValueFactory::new();
/// let (a, b) = (values.constant("a"), values.constant("b"));
/// let mut instance = Instance::new(sig.clone());
/// instance.insert(r, vec![a, b]).unwrap();
///
/// // R(x, y) -> ∃z S(y, z): the chase adds one S-fact with a fresh null.
/// let mut constraints = ConstraintSet::new();
/// constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));
/// let out = chase(&instance, &constraints, &mut values, ChaseConfig::default());
/// assert!(out.is_saturated());
/// assert_eq!(out.instance.relation_len(s), 1);
/// ```
pub fn chase(
    instance: &Instance,
    constraints: &ConstraintSet,
    values: &mut ValueFactory,
    config: ChaseConfig,
) -> ChaseOutcome {
    match config.engine {
        ChaseEngine::Naive => chase_naive(instance, constraints, values, config),
        ChaseEngine::SemiNaive => {
            crate::seminaive::chase_seminaive(instance, constraints, values, config)
        }
    }
}

/// The naive engine: each round enumerates all body homomorphisms of all
/// TGDs against the full current instance.
fn chase_naive(
    instance: &Instance,
    constraints: &ConstraintSet,
    values: &mut ValueFactory,
    config: ChaseConfig,
) -> ChaseOutcome {
    let budget = config.budget;
    let mut current = instance.clone();
    let mut depths: FxHashMap<Fact, usize> = current.iter_facts().map(|f| (f, 0)).collect();
    let mut stats = ChaseStats::default();

    // Apply the FDs once before any TGD round so that the input instance is
    // already consistent.
    if config.apply_fds
        && apply_fds_to_fixpoint(&mut current, constraints.fds(), &mut depths, &mut stats).is_err()
    {
        return ChaseOutcome {
            instance: current,
            completion: Completion::FdFailure,
            stats,
        };
    }

    // Per-rule, per-round cap on trigger enumeration, derived once from the
    // budget (see `Budget::trigger_limit` for the formula and rationale).
    let trigger_limit = budget.trigger_limit();

    loop {
        if stats.rounds >= budget.max_rounds {
            return ChaseOutcome {
                instance: current,
                completion: Completion::BudgetExhausted,
                stats,
            };
        }
        stats.rounds += 1;

        // Collect the active triggers against the instance at the start of
        // the round. Rules with many body atoms can have exponentially many
        // homomorphisms; reaching the enumeration cap turns that into an
        // explicit budget exhaustion instead of a hang.
        let mut skipped_for_depth = false;
        let mut fired_any = false;
        let mut over_budget = false;

        let mut triggers = Vec::new();
        for (i, tgd) in constraints.tgds().iter().enumerate() {
            let (mut found, truncated) = active_triggers(tgd, i, &current, trigger_limit);
            if truncated {
                over_budget = true;
            }
            triggers.append(&mut found);
        }

        for trigger in triggers {
            let tgd = &constraints.tgds()[trigger.tgd_index];
            // Re-check activeness against the *current* instance: earlier
            // firings in this round may have satisfied the head already
            // (this is what makes the chase "restricted").
            if head_satisfied(tgd, &current, &trigger.assignment) {
                continue;
            }
            match fire_trigger(
                tgd,
                &trigger.assignment,
                &mut current,
                &mut depths,
                &mut stats,
                values,
                budget,
                None,
            ) {
                FireResult::Fired => fired_any = true,
                FireResult::SkippedForDepth => skipped_for_depth = true,
                FireResult::OverBudget => {
                    over_budget = true;
                    break;
                }
            }
            if current.len() > budget.max_facts {
                over_budget = true;
                break;
            }
        }

        // Re-establish the FDs after the round.
        if config.apply_fds
            && apply_fds_to_fixpoint(&mut current, constraints.fds(), &mut depths, &mut stats)
                .is_err()
        {
            return ChaseOutcome {
                instance: current,
                completion: Completion::FdFailure,
                stats,
            };
        }

        if over_budget {
            return ChaseOutcome {
                instance: current,
                completion: Completion::BudgetExhausted,
                stats,
            };
        }
        if !fired_any {
            let completion = if skipped_for_depth {
                Completion::DepthCapped
            } else {
                Completion::Saturated
            };
            return ChaseOutcome {
                instance: current,
                completion,
                stats,
            };
        }
    }
}

/// Outcome of attempting to fire one trigger.
pub(crate) enum FireResult {
    /// Head facts were added (or re-confirmed present).
    Fired,
    /// The new facts would exceed `budget.max_depth`; nothing was added.
    SkippedForDepth,
    /// The null budget was exhausted mid-firing.
    OverBudget,
}

/// Fires `tgd` on `assignment`: computes the derivation depth from the
/// matched body facts, draws fresh nulls for the existential variables and
/// inserts every head atom. Newly inserted facts are also recorded in
/// `new_facts` when provided (the semi-naive engine's delta). Shared by
/// both engines so that depth bookkeeping and budget checks cannot drift
/// apart.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fire_trigger(
    tgd: &rbqa_logic::Tgd,
    assignment: &rbqa_logic::homomorphism::Homomorphism,
    current: &mut Instance,
    depths: &mut FxHashMap<Fact, usize>,
    stats: &mut ChaseStats,
    values: &mut ValueFactory,
    budget: Budget,
    mut new_facts: Option<&mut FxHashSet<Fact>>,
) -> FireResult {
    // Depth of the new facts.
    let body_facts = matched_body_facts(tgd, assignment);
    let body_depth = body_facts
        .iter()
        .map(|(rel, tuple)| {
            depths
                .get(&Fact::new(*rel, tuple.clone()))
                .copied()
                .unwrap_or(0)
        })
        .max()
        .unwrap_or(0);
    let new_depth = body_depth + 1;
    if new_depth > budget.max_depth {
        return FireResult::SkippedForDepth;
    }

    // Extend the assignment with fresh nulls for the existential variables,
    // then add every head atom.
    let mut assignment = assignment.clone();
    for v in tgd.existential_variables() {
        if stats.nulls_created >= budget.max_nulls {
            return FireResult::OverBudget;
        }
        assignment.insert(v, values.fresh_null());
        stats.nulls_created += 1;
    }
    for atom in tgd.head() {
        let tuple: Vec<Value> = atom
            .instantiate(&assignment)
            .expect("all head variables are assigned");
        let fact = Fact::new(atom.relation(), tuple.clone());
        if current
            .insert(atom.relation(), tuple)
            .expect("head atoms respect the signature")
        {
            depths.entry(fact.clone()).or_insert(new_depth);
            stats.max_depth_reached = stats.max_depth_reached.max(new_depth);
            if let Some(delta) = new_facts.as_deref_mut() {
                delta.insert(fact);
            }
        }
    }
    stats.tgd_firings += 1;
    FireResult::Fired
}

/// Union-find over values used by the FD chase.
struct UnionFind {
    parent: FxHashMap<Value, Value>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind {
            parent: FxHashMap::default(),
        }
    }

    fn find(&mut self, v: Value) -> Value {
        let p = *self.parent.get(&v).unwrap_or(&v);
        if p == v {
            return v;
        }
        let root = self.find(p);
        self.parent.insert(v, root);
        root
    }

    /// Unions the classes of `a` and `b`, preferring a constant (then the
    /// smaller value) as representative. Returns `Err(())` if two distinct
    /// constants would be merged.
    fn union(&mut self, a: Value, b: Value) -> Result<bool, ()> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Ok(false);
        }
        let (root, child) = match (ra.is_const(), rb.is_const()) {
            (true, true) => return Err(()),
            (true, false) => (ra, rb),
            (false, true) => (rb, ra),
            (false, false) => {
                if ra <= rb {
                    (ra, rb)
                } else {
                    (rb, ra)
                }
            }
        };
        self.parent.insert(child, root);
        Ok(true)
    }
}

/// The value substitution and changed-fact set produced by one run of the
/// FD fixpoint. Consumed by the semi-naive engine, which must rewrite its
/// delta and deferred triggers whenever values are merged.
#[derive(Debug, Default)]
pub(crate) struct FdRewrite {
    /// The composed substitution over all fixpoint iterations (empty when
    /// no values were merged).
    pub subst: FxHashMap<Value, Value>,
    /// Facts of the *final* instance that were rewritten, or into which two
    /// pre-rewrite facts collapsed (their recorded depth may have
    /// decreased). Every trigger knowledge derived from these facts is
    /// stale and must be re-examined.
    pub changed: FxHashSet<Fact>,
}

impl FdRewrite {
    /// Whether any value was merged.
    pub fn rewrote(&self) -> bool {
        !self.subst.is_empty()
    }

    /// Applies the substitution to one fact.
    pub fn map_fact(&self, fact: &Fact) -> Fact {
        let args: Vec<Value> = fact
            .args()
            .iter()
            .map(|v| *self.subst.get(v).unwrap_or(v))
            .collect();
        Fact::new(fact.relation(), args)
    }
}

/// Applies the FDs as EGDs until no violation remains. Returns the
/// substitution and changed-fact tracking on success and `Err(())` on a
/// hard failure (two distinct constants equated).
pub(crate) fn apply_fds_to_fixpoint(
    instance: &mut Instance,
    fds: &[Fd],
    depths: &mut FxHashMap<Fact, usize>,
    stats: &mut ChaseStats,
) -> Result<FdRewrite, ()> {
    let mut rewrite = FdRewrite::default();
    if fds.is_empty() {
        return Ok(rewrite);
    }
    loop {
        let mut uf = UnionFind::new();
        let mut merged_any = false;
        for fd in fds {
            // Group tuples of the FD's relation by their determiner values.
            let mut groups: FxHashMap<Vec<Value>, Vec<Value>> = FxHashMap::default();
            for tuple in instance.tuples(fd.relation()) {
                let key: Vec<Value> = fd.determiners().iter().map(|&p| tuple[p]).collect();
                groups.entry(key).or_default().push(tuple[fd.determined()]);
            }
            for (_, vals) in groups {
                for pair in vals.windows(2) {
                    if uf.find(pair[0]) != uf.find(pair[1]) && uf.union(pair[0], pair[1])? {
                        merged_any = true;
                        stats.fd_unifications += 1;
                    }
                }
            }
        }
        if !merged_any {
            return Ok(rewrite);
        }
        // Build the substitution and rewrite the instance and depth map.
        let dom = instance.active_domain();
        let mut subst: FxHashMap<Value, Value> = FxHashMap::default();
        for v in dom {
            let r = uf.find(v);
            if r != v {
                subst.insert(v, r);
            }
        }
        if subst.is_empty() {
            return Ok(rewrite);
        }
        *instance = instance.map_values(&subst);
        let mut new_depths: FxHashMap<Fact, usize> = FxHashMap::default();
        let mut changed_now: FxHashSet<Fact> = FxHashSet::default();
        for (fact, depth) in depths.iter() {
            let args: Vec<Value> = fact
                .args()
                .iter()
                .map(|v| *subst.get(v).unwrap_or(v))
                .collect();
            let fact_changed = args != fact.args();
            let new_fact = Fact::new(fact.relation(), args);
            match new_depths.entry(new_fact.clone()) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    // Two pre-rewrite facts collapsed: the surviving fact's
                    // depth is the minimum, and triggers computed from
                    // either original are stale.
                    changed_now.insert(new_fact);
                    if *e.get() > *depth {
                        e.insert(*depth);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(*depth);
                    if fact_changed {
                        changed_now.insert(new_fact);
                    }
                }
            }
        }
        *depths = new_depths;

        // Fold this iteration's substitution into the composed rewrite.
        for v in rewrite.subst.values_mut() {
            if let Some(next) = subst.get(v) {
                *v = *next;
            }
        }
        for (k, v) in &subst {
            rewrite.subst.entry(*k).or_insert(*v);
        }
        let prior: Vec<Fact> = rewrite.changed.drain().collect();
        for fact in prior {
            let args: Vec<Value> = fact
                .args()
                .iter()
                .map(|v| *subst.get(v).unwrap_or(v))
                .collect();
            rewrite.changed.insert(Fact::new(fact.relation(), args));
        }
        rewrite.changed.extend(changed_now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_common::Signature;
    use rbqa_logic::constraints::tgd::{inclusion_dependency, TgdBuilder};
    use rbqa_logic::Term;

    fn sig2() -> (Signature, rbqa_common::RelationId, rbqa_common::RelationId) {
        let mut sig = Signature::new();
        let r = sig.add_relation("R", 2).unwrap();
        let s = sig.add_relation("S", 2).unwrap();
        (sig, r, s)
    }

    /// Runs every engine-parametrised test under both engines.
    fn both_engines(check: impl Fn(ChaseEngine)) {
        check(ChaseEngine::Naive);
        check(ChaseEngine::SemiNaive);
    }

    #[test]
    fn chase_terminates_on_acyclic_ids() {
        both_engines(|engine| {
            let (sig, r, s) = sig2();
            let mut vf = ValueFactory::new();
            let a = vf.constant("a");
            let b = vf.constant("b");
            let mut inst = Instance::new(sig.clone());
            inst.insert(r, vec![a, b]).unwrap();

            let mut constraints = ConstraintSet::new();
            constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));

            let out = chase(
                &inst,
                &constraints,
                &mut vf,
                ChaseConfig::default().with_engine(engine),
            );
            assert!(out.is_saturated());
            assert_eq!(out.instance.relation_len(s), 1);
            assert_eq!(out.stats.tgd_firings, 1);
            assert_eq!(out.stats.nulls_created, 1);
            // The new S-fact carries b forward and a fresh null.
            let s_fact = out.instance.tuples(s).next().unwrap();
            assert_eq!(s_fact[0], b);
            assert!(s_fact[1].is_null());
        });
    }

    #[test]
    fn chase_is_restricted_no_redundant_witnesses() {
        both_engines(|engine| {
            let (sig, r, s) = sig2();
            let mut vf = ValueFactory::new();
            let a = vf.constant("a");
            let b = vf.constant("b");
            let c = vf.constant("c");
            let mut inst = Instance::new(sig.clone());
            inst.insert(r, vec![a, b]).unwrap();
            inst.insert(s, vec![b, c]).unwrap(); // head already satisfied

            let mut constraints = ConstraintSet::new();
            constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));

            let out = chase(
                &inst,
                &constraints,
                &mut vf,
                ChaseConfig::default().with_engine(engine),
            );
            assert!(out.is_saturated());
            assert_eq!(out.stats.tgd_firings, 0);
            assert_eq!(out.instance.len(), 2);
        });
    }

    #[test]
    fn cyclic_ids_hit_budget() {
        both_engines(|engine| {
            // R(x, y) -> ∃z S(y, z) and S(x, y) -> ∃z R(y, z): infinite chase.
            let (sig, r, s) = sig2();
            let mut vf = ValueFactory::new();
            let a = vf.constant("a");
            let b = vf.constant("b");
            let mut inst = Instance::new(sig.clone());
            inst.insert(r, vec![a, b]).unwrap();

            let mut constraints = ConstraintSet::new();
            constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));
            constraints.push_tgd(inclusion_dependency(&sig, s, &[1], r, &[0]));

            let budget = Budget::small().with_max_depth(6);
            let out = chase(
                &inst,
                &constraints,
                &mut vf,
                ChaseConfig::with_budget(budget).with_engine(engine),
            );
            assert_eq!(out.completion, Completion::DepthCapped);
            assert!(out.stats.max_depth_reached <= 6);
            assert!(out.instance.len() > 2);
        });
    }

    #[test]
    fn fd_chase_unifies_nulls() {
        both_engines(|engine| {
            // S(x, y) with FD 0 -> 1: two facts S(a, n) and S(a, b) must
            // unify n with b.
            let (sig, _r, s) = sig2();
            let mut vf = ValueFactory::new();
            let a = vf.constant("a");
            let b = vf.constant("b");
            let n = vf.fresh_null();
            let mut inst = Instance::new(sig.clone());
            inst.insert(s, vec![a, n]).unwrap();
            inst.insert(s, vec![a, b]).unwrap();

            let mut constraints = ConstraintSet::new();
            constraints.push_fd(Fd::new(s, vec![0], 1));

            let out = chase(
                &inst,
                &constraints,
                &mut vf,
                ChaseConfig::default().with_engine(engine),
            );
            assert!(out.is_saturated());
            assert_eq!(out.instance.len(), 1);
            assert!(out.instance.contains(s, &[a, b]));
            assert!(out.stats.fd_unifications >= 1);
        });
    }

    #[test]
    fn fd_chase_fails_on_distinct_constants() {
        both_engines(|engine| {
            let (sig, _r, s) = sig2();
            let mut vf = ValueFactory::new();
            let a = vf.constant("a");
            let b = vf.constant("b");
            let c = vf.constant("c");
            let mut inst = Instance::new(sig.clone());
            inst.insert(s, vec![a, b]).unwrap();
            inst.insert(s, vec![a, c]).unwrap();

            let mut constraints = ConstraintSet::new();
            constraints.push_fd(Fd::new(s, vec![0], 1));

            let out = chase(
                &inst,
                &constraints,
                &mut vf,
                ChaseConfig::default().with_engine(engine),
            );
            assert!(out.is_fd_failure());
        });
    }

    #[test]
    fn fds_ignored_when_disabled() {
        both_engines(|engine| {
            let (sig, _r, s) = sig2();
            let mut vf = ValueFactory::new();
            let a = vf.constant("a");
            let b = vf.constant("b");
            let c = vf.constant("c");
            let mut inst = Instance::new(sig.clone());
            inst.insert(s, vec![a, b]).unwrap();
            inst.insert(s, vec![a, c]).unwrap();

            let mut constraints = ConstraintSet::new();
            constraints.push_fd(Fd::new(s, vec![0], 1));

            let config = ChaseConfig {
                budget: Budget::default(),
                apply_fds: false,
                engine,
            };
            let out = chase(&inst, &constraints, &mut vf, config);
            assert!(out.is_saturated());
            assert_eq!(out.instance.len(), 2);
        });
    }

    #[test]
    fn interaction_of_tgds_and_fds() {
        both_engines(|engine| {
            // R(x, y) -> ∃z S(x, z); FD S: 0 -> 1. Chasing R(a, b) and
            // S(a, c) does not fire the TGD (restricted chase); chasing
            // R(a, b) alone creates S(a, n) which stays.
            let (sig, r, s) = sig2();
            let mut vf = ValueFactory::new();
            let a = vf.constant("a");
            let b = vf.constant("b");
            let c = vf.constant("c");

            let mut constraints = ConstraintSet::new();
            constraints.push_tgd(inclusion_dependency(&sig, r, &[0], s, &[0]));
            constraints.push_fd(Fd::new(s, vec![0], 1));

            let mut with_s = Instance::new(sig.clone());
            with_s.insert(r, vec![a, b]).unwrap();
            with_s.insert(s, vec![a, c]).unwrap();
            let out = chase(
                &with_s,
                &constraints,
                &mut vf,
                ChaseConfig::default().with_engine(engine),
            );
            assert!(out.is_saturated());
            assert_eq!(out.instance.len(), 2);

            let mut without_s = Instance::new(sig.clone());
            without_s.insert(r, vec![a, b]).unwrap();
            let out = chase(
                &without_s,
                &constraints,
                &mut vf,
                ChaseConfig::default().with_engine(engine),
            );
            assert!(out.is_saturated());
            assert_eq!(out.instance.relation_len(s), 1);
        });
    }

    #[test]
    fn full_tgd_closure() {
        both_engines(|engine| {
            // Transitivity-like full TGD: R(x, y), R(y, z) -> R(x, z) over a
            // chain of length 3 produces the full transitive closure.
            let (sig, r, _s) = sig2();
            let mut vf = ValueFactory::new();
            let v: Vec<_> = (0..4).map(|i| vf.constant(&format!("v{i}"))).collect();
            let mut inst = Instance::new(sig.clone());
            for i in 0..3 {
                inst.insert(r, vec![v[i], v[i + 1]]).unwrap();
            }
            let mut b = TgdBuilder::new();
            let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
            b.body_atom(r, vec![Term::Var(x), Term::Var(y)]);
            b.body_atom(r, vec![Term::Var(y), Term::Var(z)]);
            b.head_atom(r, vec![Term::Var(x), Term::Var(z)]);
            let mut constraints = ConstraintSet::new();
            constraints.push_tgd(b.build());

            let out = chase(
                &inst,
                &constraints,
                &mut vf,
                ChaseConfig::default().with_engine(engine),
            );
            assert!(out.is_saturated());
            // Closure of a 3-edge chain has 3 + 2 + 1 = 6 edges.
            assert_eq!(out.instance.relation_len(r), 6);
            assert_eq!(out.stats.nulls_created, 0);
        });
    }

    #[test]
    fn trigger_limit_truncation_is_budget_exhaustion() {
        // Pin the truncation contract of `Budget::trigger_limit`: a rule
        // whose per-round (delta-restricted, for the semi-naive engine)
        // body-homomorphism count reaches `max_facts + 2` ends the run as
        // `BudgetExhausted`, never as a silent hang or a fake saturation.
        both_engines(|engine| {
            let (sig, r, _s) = sig2();
            let mut vf = ValueFactory::new();
            let v: Vec<_> = (0..4).map(|i| vf.constant(&format!("v{i}"))).collect();
            let mut inst = Instance::new(sig.clone());
            for &x in &v {
                for &y in &v {
                    inst.insert(r, vec![x, y]).unwrap(); // complete digraph: 16 facts
                }
            }
            // R(x, y), R(y, z) -> R(x, z): already closed (64 body homs, no
            // new facts), so the only way the run can end is saturation —
            // unless the enumeration cap truncates it.
            let mut b = TgdBuilder::new();
            let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
            b.body_atom(r, vec![Term::Var(x), Term::Var(y)]);
            b.body_atom(r, vec![Term::Var(y), Term::Var(z)]);
            b.head_atom(r, vec![Term::Var(x), Term::Var(z)]);
            let mut constraints = ConstraintSet::new();
            constraints.push_tgd(b.build());

            // 64 homs < trigger_limit = 100 + 2: saturates.
            let roomy = Budget::generous().with_max_facts(100);
            assert_eq!(roomy.trigger_limit(), 102);
            let out = chase(
                &inst,
                &constraints,
                &mut vf,
                ChaseConfig::with_budget(roomy).with_engine(engine),
            );
            assert!(out.is_saturated());
            assert_eq!(out.instance.len(), 16);

            // 64 homs >= trigger_limit = 30 + 2: explicit exhaustion.
            let tight = Budget::generous().with_max_facts(30);
            assert_eq!(tight.trigger_limit(), 32);
            let out = chase(
                &inst,
                &constraints,
                &mut vf,
                ChaseConfig::with_budget(tight).with_engine(engine),
            );
            assert_eq!(out.completion, Completion::BudgetExhausted);
        });
    }

    #[test]
    fn engines_agree_at_the_rounds_budget_edge() {
        // Regression: the semi-naive engine must not spend an extra round
        // re-examining triggers it deferred in the same round, or a
        // depth-capped run finishing exactly at `max_rounds` would come
        // back BudgetExhausted from one engine and DepthCapped from the
        // other. Cyclic IDs with depth cap 4 finish in exactly 5 rounds
        // (4 firing rounds + 1 quiescent round) on both engines.
        let (sig, r, s) = sig2();
        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));
        constraints.push_tgd(inclusion_dependency(&sig, s, &[1], r, &[0]));

        let run = |engine: ChaseEngine, max_rounds: usize| {
            let mut vf = ValueFactory::new();
            let a = vf.constant("a");
            let b = vf.constant("b");
            let mut inst = Instance::new(sig.clone());
            inst.insert(r, vec![a, b]).unwrap();
            let budget = Budget::generous()
                .with_max_depth(4)
                .with_max_rounds(max_rounds);
            chase(
                &inst,
                &constraints,
                &mut vf,
                ChaseConfig::with_budget(budget).with_engine(engine),
            )
        };
        for max_rounds in [5, 6, 50] {
            let naive = run(ChaseEngine::Naive, max_rounds);
            let semi = run(ChaseEngine::SemiNaive, max_rounds);
            assert_eq!(naive.completion, semi.completion, "max_rounds={max_rounds}");
            assert_eq!(
                naive.stats.rounds, semi.stats.rounds,
                "max_rounds={max_rounds}"
            );
            assert_eq!(naive.completion, Completion::DepthCapped);
        }
    }

    #[test]
    fn seminaive_truncation_diverges_soundly_at_the_trigger_cap() {
        // Documented, intended divergence (see `Budget::trigger_limit`):
        // the cap applies to what each engine enumerates. Transitivity over
        // a 20-edge chain closes at 210 facts, but late naive rounds
        // re-enumerate > 1002 body homomorphisms and truncate, while the
        // semi-naive engine's delta enumeration stays under the cap and
        // saturates. The divergence is only ever in this direction.
        let (sig, r, _s) = sig2();
        let mut vf = ValueFactory::new();
        let v: Vec<_> = (0..21).map(|i| vf.constant(&format!("v{i}"))).collect();
        let mut inst = Instance::new(sig.clone());
        for i in 0..20 {
            inst.insert(r, vec![v[i], v[i + 1]]).unwrap();
        }
        let mut b = TgdBuilder::new();
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.body_atom(r, vec![Term::Var(x), Term::Var(y)]);
        b.body_atom(r, vec![Term::Var(y), Term::Var(z)]);
        b.head_atom(r, vec![Term::Var(x), Term::Var(z)]);
        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(b.build());

        let budget = Budget::generous().with_max_facts(1000);
        let naive = chase(
            &inst,
            &constraints,
            &mut vf.clone(),
            ChaseConfig::with_budget(budget).with_engine(ChaseEngine::Naive),
        );
        let semi = chase(
            &inst,
            &constraints,
            &mut vf.clone(),
            ChaseConfig::with_budget(budget).with_engine(ChaseEngine::SemiNaive),
        );
        assert_eq!(naive.completion, Completion::BudgetExhausted);
        assert_eq!(semi.completion, Completion::Saturated);
        // 20 + 19 + ... + 1 = 210 facts either way: the naive run had in
        // fact finished the closure before its enumeration cap tripped.
        assert_eq!(semi.instance.relation_len(r), 210);
        assert_eq!(naive.instance.relation_len(r), 210);
    }

    #[test]
    fn engine_default_is_seminaive() {
        assert_eq!(ChaseConfig::default().engine, ChaseEngine::SemiNaive);
        assert_eq!(ChaseEngine::Naive.as_str(), "naive");
        assert_eq!(ChaseEngine::SemiNaive.as_str(), "seminaive");
    }
}
