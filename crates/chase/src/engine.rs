//! The restricted chase engine with FD (EGD) handling, depth tracking and
//! budgets.
//!
//! Two interchangeable engines implement the same restricted-chase
//! semantics (selected via [`ChaseConfig::engine`]):
//!
//! * [`ChaseEngine::Naive`] — the textbook engine: every round re-enumerates
//!   all body homomorphisms of all TGDs against the full instance;
//! * [`ChaseEngine::SemiNaive`] (the default) — the delta-driven engine of
//!   [`crate::seminaive`]: a round only re-evaluates rules whose body
//!   mentions a relation that gained facts, and homomorphism search is
//!   seeded from the newly derived facts.
//!
//! Both engines produce the same [`Completion`] and homomorphically
//! equivalent instances whenever the budget does not truncate enumeration
//! (the differential property test in `tests/chase_differential.rs` checks
//! this on random schemas and constraint sets). At the
//! [`Budget::trigger_limit`] cap the engines can differ in the sound
//! direction only: the semi-naive engine enumerates strictly fewer
//! homomorphisms per round, so it may still saturate where the naive
//! engine reports [`Completion::BudgetExhausted`] — never the reverse.

use rbqa_common::{Instance, RelationId, Value, ValueFactory};
use rbqa_logic::constraints::ConstraintSet;
use rbqa_logic::{Fd, VarId};
use rustc_hash::{FxHashMap, FxHashSet};

use crate::budget::Budget;
use crate::result::{ChaseOutcome, ChaseStats, Completion};
use crate::trigger::{assignment_get, TgdKernel};

/// Per-row derivation depths, aligned with the instance's stable row ids
/// (`relation index → row id → depth`). Replaces the former `Fact`-keyed
/// hash map: depth reads and writes are array indexing instead of hashing
/// whole tuples, and no `Fact` is materialised on the firing path.
#[derive(Debug, Default, Clone)]
pub(crate) struct DepthMap {
    per_rel: Vec<Vec<u32>>,
}

impl DepthMap {
    /// All-zero depths for every current row of `instance` (the input facts
    /// of the chase).
    pub(crate) fn zeros(instance: &Instance) -> Self {
        let per_rel = (0..instance.signature().len())
            .map(|i| vec![0u32; instance.relation_len(RelationId::from_index(i))])
            .collect();
        DepthMap { per_rel }
    }

    /// Sentinel-initialised map for an FD-rewritten instance, filled by
    /// [`DepthMap::record_min`].
    fn unset(instance: &Instance) -> Self {
        let per_rel = (0..instance.signature().len())
            .map(|i| vec![u32::MAX; instance.relation_len(RelationId::from_index(i))])
            .collect();
        DepthMap { per_rel }
    }

    #[inline]
    fn get(&self, relation: RelationId, row: u32) -> usize {
        self.per_rel[relation.index()][row as usize] as usize
    }

    /// Records the depth of a freshly inserted row (must be the relation's
    /// newest row).
    fn push(&mut self, relation: RelationId, row: u32, depth: usize) {
        if relation.index() >= self.per_rel.len() {
            self.per_rel.resize_with(relation.index() + 1, Vec::new);
        }
        let rows = &mut self.per_rel[relation.index()];
        debug_assert_eq!(rows.len(), row as usize);
        rows.push(u32::try_from(depth).expect("depth fits in u32"));
    }

    /// Lowers (or sets) the depth of `row`; returns `true` when the slot
    /// was already set — i.e. two pre-rewrite facts collapsed into it.
    fn record_min(&mut self, relation: RelationId, row: u32, depth: usize) -> bool {
        let slot = &mut self.per_rel[relation.index()][row as usize];
        let collided = *slot != u32::MAX;
        *slot = (*slot).min(u32::try_from(depth).expect("depth fits in u32"));
        collided
    }
}

/// Which chase implementation to run. Both engines implement the restricted
/// chase and agree on [`Completion`] away from the enumeration cap (see the
/// module docs); they differ only in how triggers are found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChaseEngine {
    /// Re-enumerate every body homomorphism of every TGD each round.
    /// Quadratic in the number of rounds; kept as the differential-testing
    /// baseline and for the benchmark ablation.
    Naive,
    /// Delta-driven (semi-naive) evaluation with indexed trigger matching:
    /// each round only considers triggers with at least one body atom
    /// matching a fact derived in the previous round. See
    /// [`crate::seminaive`].
    #[default]
    SemiNaive,
}

impl ChaseEngine {
    /// Stable lowercase name, used in benchmark reports and cache
    /// fingerprints.
    pub fn as_str(self) -> &'static str {
        match self {
            ChaseEngine::Naive => "naive",
            ChaseEngine::SemiNaive => "seminaive",
        }
    }
}

/// Configuration of a chase run.
#[derive(Debug, Clone, Copy)]
pub struct ChaseConfig {
    /// Resource limits.
    pub budget: Budget,
    /// Whether FDs are chased (value unification). When `false`, FDs in the
    /// constraint set are ignored.
    pub apply_fds: bool,
    /// Which engine runs the TGD rounds.
    pub engine: ChaseEngine,
}

impl Default for ChaseConfig {
    fn default() -> Self {
        ChaseConfig {
            budget: Budget::default(),
            apply_fds: true,
            engine: ChaseEngine::default(),
        }
    }
}

impl ChaseConfig {
    /// Config with the given budget, FD chasing enabled and the default
    /// (semi-naive) engine.
    pub fn with_budget(budget: Budget) -> Self {
        ChaseConfig {
            budget,
            ..ChaseConfig::default()
        }
    }

    /// Returns a copy using the given engine.
    pub fn with_engine(mut self, engine: ChaseEngine) -> Self {
        self.engine = engine;
        self
    }
}

/// Runs the restricted chase of `constraints` on `instance`.
///
/// * TGDs are fired on active triggers only, with fresh nulls drawn from
///   `values` for existentially quantified head variables.
/// * FDs are applied as EGDs: when two facts violate an FD, the values at
///   the determined position are unified (nulls are substituted away;
///   equating two distinct constants aborts with
///   [`Completion::FdFailure`]).
/// * Every fact carries a derivation depth (input facts have depth 0; a
///   fired head fact has depth one more than the largest depth among the
///   facts matched by its trigger). Triggers whose result would exceed
///   `budget.max_depth` are not fired; if any such trigger is skipped the
///   run ends as [`Completion::DepthCapped`] instead of
///   [`Completion::Saturated`].
///
/// ```
/// use rbqa_chase::{chase, ChaseConfig};
/// use rbqa_common::{Instance, Signature, ValueFactory};
/// use rbqa_logic::constraints::tgd::inclusion_dependency;
/// use rbqa_logic::constraints::ConstraintSet;
///
/// let mut sig = Signature::new();
/// let r = sig.add_relation("R", 2).unwrap();
/// let s = sig.add_relation("S", 2).unwrap();
/// let mut values = ValueFactory::new();
/// let (a, b) = (values.constant("a"), values.constant("b"));
/// let mut instance = Instance::new(sig.clone());
/// instance.insert(r, vec![a, b]).unwrap();
///
/// // R(x, y) -> ∃z S(y, z): the chase adds one S-fact with a fresh null.
/// let mut constraints = ConstraintSet::new();
/// constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));
/// let out = chase(&instance, &constraints, &mut values, ChaseConfig::default());
/// assert!(out.is_saturated());
/// assert_eq!(out.instance.relation_len(s), 1);
/// ```
pub fn chase(
    instance: &Instance,
    constraints: &ConstraintSet,
    values: &mut ValueFactory,
    config: ChaseConfig,
) -> ChaseOutcome {
    let mut obs = rbqa_obs::phase_span("chase", rbqa_obs::Phase::Chase);
    obs.str("engine", config.engine.as_str());
    let outcome = match config.engine {
        ChaseEngine::Naive => chase_naive(instance, constraints, values, config),
        ChaseEngine::SemiNaive => {
            crate::seminaive::chase_seminaive(instance, constraints, values, config)
        }
    };
    rbqa_obs::counters::add_chase_rounds(outcome.stats.rounds as u64);
    obs.num("rounds", outcome.stats.rounds as u64);
    obs.num("firings", outcome.stats.tgd_firings as u64);
    obs.num("facts", outcome.instance.len() as u64);
    outcome
}

/// The naive engine: each round enumerates all body homomorphisms of all
/// TGDs against the full current instance.
fn chase_naive(
    instance: &Instance,
    constraints: &ConstraintSet,
    values: &mut ValueFactory,
    config: ChaseConfig,
) -> ChaseOutcome {
    let budget = config.budget;
    let mut current = instance.clone();
    let mut depths = DepthMap::zeros(&current);
    let mut stats = ChaseStats::default();
    let mut scratch: Vec<Value> = Vec::new();

    // Apply the FDs once before any TGD round so that the input instance is
    // already consistent.
    if config.apply_fds
        && apply_fds_to_fixpoint(
            &mut current,
            constraints.fds(),
            &mut depths,
            &mut stats,
            None,
        )
        .is_err()
    {
        return ChaseOutcome {
            instance: current,
            completion: Completion::FdFailure,
            stats,
        };
    }

    // Per-rule, per-round cap on trigger enumeration, derived once from the
    // budget (see `Budget::trigger_limit` for the formula and rationale).
    let trigger_limit = budget.trigger_limit();

    // One compiled body/head match program per TGD, reused every round.
    let kernels: Vec<TgdKernel> = constraints.tgds().iter().map(TgdKernel::new).collect();

    loop {
        if stats.rounds >= budget.max_rounds {
            return ChaseOutcome {
                instance: current,
                completion: Completion::BudgetExhausted,
                stats,
            };
        }
        // Cooperative deadline check, once per round: a timed-out request
        // surrenders the worker here instead of chasing to completion.
        // The caller distinguishes a real budget exhaustion from an
        // expired deadline by re-checking the deadline itself.
        if rbqa_obs::deadline_expired() {
            rbqa_obs::counters::add_deadline_expiry();
            return ChaseOutcome {
                instance: current,
                completion: Completion::BudgetExhausted,
                stats,
            };
        }
        stats.rounds += 1;
        let mut round_span = rbqa_obs::span("chase_round");
        round_span.num("round", stats.rounds as u64);

        // Collect the active triggers against the instance at the start of
        // the round. Rules with many body atoms can have exponentially many
        // homomorphisms; reaching the enumeration cap turns that into an
        // explicit budget exhaustion instead of a hang.
        let mut skipped_for_depth = false;
        let mut fired_any = false;
        let mut over_budget = false;

        let mut triggers = Vec::new();
        {
            let mut search_span = rbqa_obs::span("trigger_search");
            for (i, kernel) in kernels.iter().enumerate() {
                let (mut found, truncated) = kernel.active_triggers(i, &current, trigger_limit);
                if truncated {
                    over_budget = true;
                }
                triggers.append(&mut found);
            }
            search_span.num("triggers", triggers.len() as u64);
        }

        for trigger in triggers {
            let tgd = &constraints.tgds()[trigger.tgd_index];
            // Re-check activeness against the *current* instance: earlier
            // firings in this round may have satisfied the head already
            // (this is what makes the chase "restricted").
            if kernels[trigger.tgd_index].head_satisfied(&current, &trigger.assignment) {
                continue;
            }
            match fire_trigger(
                tgd,
                &trigger.assignment,
                &mut current,
                &mut depths,
                &mut stats,
                values,
                budget,
                None,
                &mut scratch,
            ) {
                FireResult::Fired => {
                    fired_any = true;
                    rbqa_obs::counters::add_firing(trigger.tgd_index);
                }
                FireResult::SkippedForDepth => skipped_for_depth = true,
                FireResult::OverBudget => {
                    over_budget = true;
                    break;
                }
            }
            if current.len() > budget.max_facts {
                over_budget = true;
                break;
            }
        }

        // Re-establish the FDs after the round.
        if config.apply_fds
            && apply_fds_to_fixpoint(
                &mut current,
                constraints.fds(),
                &mut depths,
                &mut stats,
                None,
            )
            .is_err()
        {
            return ChaseOutcome {
                instance: current,
                completion: Completion::FdFailure,
                stats,
            };
        }

        if over_budget {
            return ChaseOutcome {
                instance: current,
                completion: Completion::BudgetExhausted,
                stats,
            };
        }
        if !fired_any {
            let completion = if skipped_for_depth {
                Completion::DepthCapped
            } else {
                Completion::Saturated
            };
            return ChaseOutcome {
                instance: current,
                completion,
                stats,
            };
        }
    }
}

/// Outcome of attempting to fire one trigger.
pub(crate) enum FireResult {
    /// Head facts were added (or re-confirmed present).
    Fired,
    /// The new facts would exceed `budget.max_depth`; nothing was added.
    SkippedForDepth,
    /// The null budget was exhausted mid-firing.
    OverBudget,
}

/// Fires `tgd` on `assignment` (sorted `(variable, value)` pairs): computes
/// the derivation depth from the matched body facts, draws fresh nulls for
/// the existential variables and inserts every head atom. Newly inserted
/// rows are also recorded in `new_rows` when provided (the semi-naive
/// engine's delta). `scratch` is a reusable tuple buffer — the firing path
/// materialises no `Fact` at all. Shared by both engines so that depth
/// bookkeeping and budget checks cannot drift apart.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fire_trigger(
    tgd: &rbqa_logic::Tgd,
    assignment: &[(VarId, Value)],
    current: &mut Instance,
    depths: &mut DepthMap,
    stats: &mut ChaseStats,
    values: &mut ValueFactory,
    budget: Budget,
    mut new_rows: Option<&mut RowSet>,
    scratch: &mut Vec<Value>,
) -> FireResult {
    // Depth of the new facts: the maximum depth among the matched body rows
    // (depth 0 when a body fact is no longer resolvable — matching the
    // previous engine's defensive `unwrap_or(0)` for FD-rewritten facts).
    let mut body_depth = 0usize;
    for atom in tgd.body() {
        let ok = atom.instantiate_into(|v| assignment_get(assignment, v), scratch);
        debug_assert!(ok, "trigger assigns every body variable");
        if let Some(row) = current.row_id(atom.relation(), scratch) {
            body_depth = body_depth.max(depths.get(atom.relation(), row));
        }
    }
    let new_depth = body_depth + 1;
    if new_depth > budget.max_depth {
        return FireResult::SkippedForDepth;
    }

    // Extend the assignment with fresh nulls for the existential variables,
    // then add every head atom.
    let mut extended = assignment.to_vec();
    for v in tgd.existential_variables() {
        if stats.nulls_created >= budget.max_nulls {
            return FireResult::OverBudget;
        }
        extended.push((v, values.fresh_null()));
        stats.nulls_created += 1;
    }
    extended.sort_unstable_by_key(|&(v, _)| v);
    for atom in tgd.head() {
        let ok = atom.instantiate_into(|v| assignment_get(&extended, v), scratch);
        debug_assert!(ok, "all head variables are assigned");
        if current
            .insert_slice(atom.relation(), scratch)
            .expect("head atoms respect the signature")
        {
            let row = (current.relation_len(atom.relation()) - 1) as u32;
            depths.push(atom.relation(), row, new_depth);
            stats.max_depth_reached = stats.max_depth_reached.max(new_depth);
            if let Some(delta) = new_rows.as_deref_mut() {
                delta.insert((atom.relation(), row));
            }
        }
    }
    stats.tgd_firings += 1;
    FireResult::Fired
}

/// Union-find over values used by the FD chase.
struct UnionFind {
    parent: FxHashMap<Value, Value>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind {
            parent: FxHashMap::default(),
        }
    }

    fn find(&mut self, v: Value) -> Value {
        let p = *self.parent.get(&v).unwrap_or(&v);
        if p == v {
            return v;
        }
        let root = self.find(p);
        self.parent.insert(v, root);
        root
    }

    /// Unions the classes of `a` and `b`, preferring a constant (then the
    /// smaller value) as representative. Returns `Err(())` if two distinct
    /// constants would be merged.
    fn union(&mut self, a: Value, b: Value) -> Result<bool, ()> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Ok(false);
        }
        let (root, child) = match (ra.is_const(), rb.is_const()) {
            (true, true) => return Err(()),
            (true, false) => (ra, rb),
            (false, true) => (rb, ra),
            (false, false) => {
                if ra <= rb {
                    (ra, rb)
                } else {
                    (rb, ra)
                }
            }
        };
        self.parent.insert(child, root);
        Ok(true)
    }
}

/// A set of instance rows — the chase's delta currency. Rows are stable
/// between FD rewrites, so the delta carries `(relation, row id)` pairs
/// instead of owned `Fact`s (no tuple clones or hashing on the firing
/// path); [`apply_fds_to_fixpoint`] translates the set through instance
/// rewrites.
pub(crate) type RowSet = FxHashSet<(RelationId, u32)>;

/// The value substitution produced by one run of the FD fixpoint. Consumed
/// by the semi-naive engine, which must rewrite its deferred trigger
/// assignments whenever values are merged (the delta itself is translated
/// in place by [`apply_fds_to_fixpoint`]).
#[derive(Debug, Default)]
pub(crate) struct FdRewrite {
    /// The composed substitution over all fixpoint iterations (empty when
    /// no values were merged).
    pub subst: FxHashMap<Value, Value>,
}

impl FdRewrite {
    /// Whether any value was merged.
    pub fn rewrote(&self) -> bool {
        !self.subst.is_empty()
    }
}

/// Applies the FDs as EGDs until no violation remains. Returns the
/// substitution on success and `Err(())` on a hard failure (two distinct
/// constants equated).
///
/// When `delta` is provided, its rows are translated through every rewrite,
/// and rows of the final instance that were rewritten — or into which two
/// pre-rewrite rows collapsed (their recorded depth may have decreased) —
/// are added to it: every piece of trigger knowledge derived from those
/// rows is stale and must be re-examined by the caller.
pub(crate) fn apply_fds_to_fixpoint(
    instance: &mut Instance,
    fds: &[Fd],
    depths: &mut DepthMap,
    stats: &mut ChaseStats,
    delta: Option<&mut RowSet>,
) -> Result<FdRewrite, ()> {
    if fds.is_empty() {
        return Ok(FdRewrite::default());
    }
    // Observability wrapper: the pass/unification counts are flushed even
    // when the fixpoint aborts on an FD failure, so a traced request that
    // errors still reports how much EGD work preceded the failure.
    let mut obs = rbqa_obs::phase_span("fd_fixpoint", rbqa_obs::Phase::FdFixpoint);
    let unifications_before = stats.fd_unifications;
    let mut passes = 0u64;
    let result = fd_fixpoint_loop(instance, fds, depths, stats, delta, &mut passes);
    rbqa_obs::counters::add_fd_fixpoint(
        passes,
        (stats.fd_unifications - unifications_before) as u64,
    );
    obs.num("passes", passes);
    result
}

/// The fixpoint loop of [`apply_fds_to_fixpoint`]; `passes` counts loop
/// iterations (including the final quiescent one).
fn fd_fixpoint_loop(
    instance: &mut Instance,
    fds: &[Fd],
    depths: &mut DepthMap,
    stats: &mut ChaseStats,
    mut delta: Option<&mut RowSet>,
    passes: &mut u64,
) -> Result<FdRewrite, ()> {
    let mut rewrite = FdRewrite::default();
    loop {
        *passes += 1;
        let mut uf = UnionFind::new();
        let mut merged_any = false;
        for fd in fds {
            // Group tuples of the FD's relation by their determiner values.
            let mut groups: FxHashMap<Vec<Value>, Vec<Value>> = FxHashMap::default();
            for tuple in instance.tuples(fd.relation()) {
                let key: Vec<Value> = fd.determiners().iter().map(|&p| tuple[p]).collect();
                groups.entry(key).or_default().push(tuple[fd.determined()]);
            }
            for (_, vals) in groups {
                for pair in vals.windows(2) {
                    if uf.find(pair[0]) != uf.find(pair[1]) && uf.union(pair[0], pair[1])? {
                        merged_any = true;
                        stats.fd_unifications += 1;
                    }
                }
            }
        }
        if !merged_any {
            return Ok(rewrite);
        }
        // Build the substitution and rewrite the instance and depth map.
        let dom = instance.active_domain();
        let mut subst: FxHashMap<Value, Value> = FxHashMap::default();
        for v in dom {
            let r = uf.find(v);
            if r != v {
                subst.insert(v, r);
            }
        }
        if subst.is_empty() {
            return Ok(rewrite);
        }
        let new_instance = instance.map_values(&subst);
        let mut new_depths = DepthMap::unset(&new_instance);
        let mut changed_now: RowSet = RowSet::default();
        // Old row -> new row, per relation (map_values preserves relations).
        let mut row_map: Vec<Vec<u32>> = Vec::with_capacity(instance.signature().len());
        let mut mapped: Vec<Value> = Vec::new();
        for i in 0..instance.signature().len() {
            let rel = RelationId::from_index(i);
            let mut rel_rows: Vec<u32> = Vec::with_capacity(instance.relation_len(rel));
            for (row, tuple) in instance.tuples(rel).enumerate() {
                mapped.clear();
                mapped.extend(tuple.iter().map(|v| *subst.get(v).unwrap_or(v)));
                let fact_changed = mapped != tuple;
                let depth = depths.get(rel, row as u32);
                let new_row = new_instance
                    .row_id(rel, &mapped)
                    .expect("mapped fact present in rewritten instance");
                rel_rows.push(new_row);
                if new_depths.record_min(rel, new_row, depth) || fact_changed {
                    // Rewritten, or two pre-rewrite facts collapsed.
                    changed_now.insert((rel, new_row));
                }
            }
            row_map.push(rel_rows);
        }
        *instance = new_instance;
        *depths = new_depths;

        // Fold this iteration's substitution into the composed rewrite.
        for v in rewrite.subst.values_mut() {
            if let Some(next) = subst.get(v) {
                *v = *next;
            }
        }
        for (k, v) in &subst {
            rewrite.subst.entry(*k).or_insert(*v);
        }
        if let Some(delta) = delta.as_deref_mut() {
            let translated: RowSet = delta
                .iter()
                .map(|&(rel, row)| (rel, row_map[rel.index()][row as usize]))
                .collect();
            *delta = translated;
            delta.extend(changed_now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_common::Signature;
    use rbqa_logic::constraints::tgd::{inclusion_dependency, TgdBuilder};
    use rbqa_logic::Term;

    fn sig2() -> (Signature, rbqa_common::RelationId, rbqa_common::RelationId) {
        let mut sig = Signature::new();
        let r = sig.add_relation("R", 2).unwrap();
        let s = sig.add_relation("S", 2).unwrap();
        (sig, r, s)
    }

    /// Runs every engine-parametrised test under both engines.
    fn both_engines(check: impl Fn(ChaseEngine)) {
        check(ChaseEngine::Naive);
        check(ChaseEngine::SemiNaive);
    }

    #[test]
    fn chase_terminates_on_acyclic_ids() {
        both_engines(|engine| {
            let (sig, r, s) = sig2();
            let mut vf = ValueFactory::new();
            let a = vf.constant("a");
            let b = vf.constant("b");
            let mut inst = Instance::new(sig.clone());
            inst.insert(r, vec![a, b]).unwrap();

            let mut constraints = ConstraintSet::new();
            constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));

            let out = chase(
                &inst,
                &constraints,
                &mut vf,
                ChaseConfig::default().with_engine(engine),
            );
            assert!(out.is_saturated());
            assert_eq!(out.instance.relation_len(s), 1);
            assert_eq!(out.stats.tgd_firings, 1);
            assert_eq!(out.stats.nulls_created, 1);
            // The new S-fact carries b forward and a fresh null.
            let s_fact = out.instance.tuples(s).next().unwrap();
            assert_eq!(s_fact[0], b);
            assert!(s_fact[1].is_null());
        });
    }

    #[test]
    fn chase_is_restricted_no_redundant_witnesses() {
        both_engines(|engine| {
            let (sig, r, s) = sig2();
            let mut vf = ValueFactory::new();
            let a = vf.constant("a");
            let b = vf.constant("b");
            let c = vf.constant("c");
            let mut inst = Instance::new(sig.clone());
            inst.insert(r, vec![a, b]).unwrap();
            inst.insert(s, vec![b, c]).unwrap(); // head already satisfied

            let mut constraints = ConstraintSet::new();
            constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));

            let out = chase(
                &inst,
                &constraints,
                &mut vf,
                ChaseConfig::default().with_engine(engine),
            );
            assert!(out.is_saturated());
            assert_eq!(out.stats.tgd_firings, 0);
            assert_eq!(out.instance.len(), 2);
        });
    }

    #[test]
    fn cyclic_ids_hit_budget() {
        both_engines(|engine| {
            // R(x, y) -> ∃z S(y, z) and S(x, y) -> ∃z R(y, z): infinite chase.
            let (sig, r, s) = sig2();
            let mut vf = ValueFactory::new();
            let a = vf.constant("a");
            let b = vf.constant("b");
            let mut inst = Instance::new(sig.clone());
            inst.insert(r, vec![a, b]).unwrap();

            let mut constraints = ConstraintSet::new();
            constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));
            constraints.push_tgd(inclusion_dependency(&sig, s, &[1], r, &[0]));

            let budget = Budget::small().with_max_depth(6);
            let out = chase(
                &inst,
                &constraints,
                &mut vf,
                ChaseConfig::with_budget(budget).with_engine(engine),
            );
            assert_eq!(out.completion, Completion::DepthCapped);
            assert!(out.stats.max_depth_reached <= 6);
            assert!(out.instance.len() > 2);
        });
    }

    #[test]
    fn fd_chase_unifies_nulls() {
        both_engines(|engine| {
            // S(x, y) with FD 0 -> 1: two facts S(a, n) and S(a, b) must
            // unify n with b.
            let (sig, _r, s) = sig2();
            let mut vf = ValueFactory::new();
            let a = vf.constant("a");
            let b = vf.constant("b");
            let n = vf.fresh_null();
            let mut inst = Instance::new(sig.clone());
            inst.insert(s, vec![a, n]).unwrap();
            inst.insert(s, vec![a, b]).unwrap();

            let mut constraints = ConstraintSet::new();
            constraints.push_fd(Fd::new(s, vec![0], 1));

            let out = chase(
                &inst,
                &constraints,
                &mut vf,
                ChaseConfig::default().with_engine(engine),
            );
            assert!(out.is_saturated());
            assert_eq!(out.instance.len(), 1);
            assert!(out.instance.contains(s, &[a, b]));
            assert!(out.stats.fd_unifications >= 1);
        });
    }

    #[test]
    fn fd_chase_fails_on_distinct_constants() {
        both_engines(|engine| {
            let (sig, _r, s) = sig2();
            let mut vf = ValueFactory::new();
            let a = vf.constant("a");
            let b = vf.constant("b");
            let c = vf.constant("c");
            let mut inst = Instance::new(sig.clone());
            inst.insert(s, vec![a, b]).unwrap();
            inst.insert(s, vec![a, c]).unwrap();

            let mut constraints = ConstraintSet::new();
            constraints.push_fd(Fd::new(s, vec![0], 1));

            let out = chase(
                &inst,
                &constraints,
                &mut vf,
                ChaseConfig::default().with_engine(engine),
            );
            assert!(out.is_fd_failure());
        });
    }

    #[test]
    fn fds_ignored_when_disabled() {
        both_engines(|engine| {
            let (sig, _r, s) = sig2();
            let mut vf = ValueFactory::new();
            let a = vf.constant("a");
            let b = vf.constant("b");
            let c = vf.constant("c");
            let mut inst = Instance::new(sig.clone());
            inst.insert(s, vec![a, b]).unwrap();
            inst.insert(s, vec![a, c]).unwrap();

            let mut constraints = ConstraintSet::new();
            constraints.push_fd(Fd::new(s, vec![0], 1));

            let config = ChaseConfig {
                budget: Budget::default(),
                apply_fds: false,
                engine,
            };
            let out = chase(&inst, &constraints, &mut vf, config);
            assert!(out.is_saturated());
            assert_eq!(out.instance.len(), 2);
        });
    }

    #[test]
    fn interaction_of_tgds_and_fds() {
        both_engines(|engine| {
            // R(x, y) -> ∃z S(x, z); FD S: 0 -> 1. Chasing R(a, b) and
            // S(a, c) does not fire the TGD (restricted chase); chasing
            // R(a, b) alone creates S(a, n) which stays.
            let (sig, r, s) = sig2();
            let mut vf = ValueFactory::new();
            let a = vf.constant("a");
            let b = vf.constant("b");
            let c = vf.constant("c");

            let mut constraints = ConstraintSet::new();
            constraints.push_tgd(inclusion_dependency(&sig, r, &[0], s, &[0]));
            constraints.push_fd(Fd::new(s, vec![0], 1));

            let mut with_s = Instance::new(sig.clone());
            with_s.insert(r, vec![a, b]).unwrap();
            with_s.insert(s, vec![a, c]).unwrap();
            let out = chase(
                &with_s,
                &constraints,
                &mut vf,
                ChaseConfig::default().with_engine(engine),
            );
            assert!(out.is_saturated());
            assert_eq!(out.instance.len(), 2);

            let mut without_s = Instance::new(sig.clone());
            without_s.insert(r, vec![a, b]).unwrap();
            let out = chase(
                &without_s,
                &constraints,
                &mut vf,
                ChaseConfig::default().with_engine(engine),
            );
            assert!(out.is_saturated());
            assert_eq!(out.instance.relation_len(s), 1);
        });
    }

    #[test]
    fn full_tgd_closure() {
        both_engines(|engine| {
            // Transitivity-like full TGD: R(x, y), R(y, z) -> R(x, z) over a
            // chain of length 3 produces the full transitive closure.
            let (sig, r, _s) = sig2();
            let mut vf = ValueFactory::new();
            let v: Vec<_> = (0..4).map(|i| vf.constant(&format!("v{i}"))).collect();
            let mut inst = Instance::new(sig.clone());
            for i in 0..3 {
                inst.insert(r, vec![v[i], v[i + 1]]).unwrap();
            }
            let mut b = TgdBuilder::new();
            let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
            b.body_atom(r, vec![Term::Var(x), Term::Var(y)]);
            b.body_atom(r, vec![Term::Var(y), Term::Var(z)]);
            b.head_atom(r, vec![Term::Var(x), Term::Var(z)]);
            let mut constraints = ConstraintSet::new();
            constraints.push_tgd(b.build());

            let out = chase(
                &inst,
                &constraints,
                &mut vf,
                ChaseConfig::default().with_engine(engine),
            );
            assert!(out.is_saturated());
            // Closure of a 3-edge chain has 3 + 2 + 1 = 6 edges.
            assert_eq!(out.instance.relation_len(r), 6);
            assert_eq!(out.stats.nulls_created, 0);
        });
    }

    #[test]
    fn trigger_limit_truncation_is_budget_exhaustion() {
        // Pin the truncation contract of `Budget::trigger_limit`: a rule
        // whose per-round (delta-restricted, for the semi-naive engine)
        // body-homomorphism count reaches `max_facts + 2` ends the run as
        // `BudgetExhausted`, never as a silent hang or a fake saturation.
        both_engines(|engine| {
            let (sig, r, _s) = sig2();
            let mut vf = ValueFactory::new();
            let v: Vec<_> = (0..4).map(|i| vf.constant(&format!("v{i}"))).collect();
            let mut inst = Instance::new(sig.clone());
            for &x in &v {
                for &y in &v {
                    inst.insert(r, vec![x, y]).unwrap(); // complete digraph: 16 facts
                }
            }
            // R(x, y), R(y, z) -> R(x, z): already closed (64 body homs, no
            // new facts), so the only way the run can end is saturation —
            // unless the enumeration cap truncates it.
            let mut b = TgdBuilder::new();
            let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
            b.body_atom(r, vec![Term::Var(x), Term::Var(y)]);
            b.body_atom(r, vec![Term::Var(y), Term::Var(z)]);
            b.head_atom(r, vec![Term::Var(x), Term::Var(z)]);
            let mut constraints = ConstraintSet::new();
            constraints.push_tgd(b.build());

            // 64 homs < trigger_limit = 100 + 2: saturates.
            let roomy = Budget::generous().with_max_facts(100);
            assert_eq!(roomy.trigger_limit(), 102);
            let out = chase(
                &inst,
                &constraints,
                &mut vf,
                ChaseConfig::with_budget(roomy).with_engine(engine),
            );
            assert!(out.is_saturated());
            assert_eq!(out.instance.len(), 16);

            // 64 homs >= trigger_limit = 30 + 2: explicit exhaustion.
            let tight = Budget::generous().with_max_facts(30);
            assert_eq!(tight.trigger_limit(), 32);
            let out = chase(
                &inst,
                &constraints,
                &mut vf,
                ChaseConfig::with_budget(tight).with_engine(engine),
            );
            assert_eq!(out.completion, Completion::BudgetExhausted);
        });
    }

    #[test]
    fn engines_agree_at_the_rounds_budget_edge() {
        // Regression: the semi-naive engine must not spend an extra round
        // re-examining triggers it deferred in the same round, or a
        // depth-capped run finishing exactly at `max_rounds` would come
        // back BudgetExhausted from one engine and DepthCapped from the
        // other. Cyclic IDs with depth cap 4 finish in exactly 5 rounds
        // (4 firing rounds + 1 quiescent round) on both engines.
        let (sig, r, s) = sig2();
        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));
        constraints.push_tgd(inclusion_dependency(&sig, s, &[1], r, &[0]));

        let run = |engine: ChaseEngine, max_rounds: usize| {
            let mut vf = ValueFactory::new();
            let a = vf.constant("a");
            let b = vf.constant("b");
            let mut inst = Instance::new(sig.clone());
            inst.insert(r, vec![a, b]).unwrap();
            let budget = Budget::generous()
                .with_max_depth(4)
                .with_max_rounds(max_rounds);
            chase(
                &inst,
                &constraints,
                &mut vf,
                ChaseConfig::with_budget(budget).with_engine(engine),
            )
        };
        for max_rounds in [5, 6, 50] {
            let naive = run(ChaseEngine::Naive, max_rounds);
            let semi = run(ChaseEngine::SemiNaive, max_rounds);
            assert_eq!(naive.completion, semi.completion, "max_rounds={max_rounds}");
            assert_eq!(
                naive.stats.rounds, semi.stats.rounds,
                "max_rounds={max_rounds}"
            );
            assert_eq!(naive.completion, Completion::DepthCapped);
        }
    }

    #[test]
    fn seminaive_truncation_diverges_soundly_at_the_trigger_cap() {
        // Documented, intended divergence (see `Budget::trigger_limit`):
        // the cap applies to what each engine enumerates. Transitivity over
        // a 20-edge chain closes at 210 facts, but late naive rounds
        // re-enumerate > 1002 body homomorphisms and truncate, while the
        // semi-naive engine's delta enumeration stays under the cap and
        // saturates. The divergence is only ever in this direction.
        let (sig, r, _s) = sig2();
        let mut vf = ValueFactory::new();
        let v: Vec<_> = (0..21).map(|i| vf.constant(&format!("v{i}"))).collect();
        let mut inst = Instance::new(sig.clone());
        for i in 0..20 {
            inst.insert(r, vec![v[i], v[i + 1]]).unwrap();
        }
        let mut b = TgdBuilder::new();
        let (x, y, z) = (b.var("x"), b.var("y"), b.var("z"));
        b.body_atom(r, vec![Term::Var(x), Term::Var(y)]);
        b.body_atom(r, vec![Term::Var(y), Term::Var(z)]);
        b.head_atom(r, vec![Term::Var(x), Term::Var(z)]);
        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(b.build());

        let budget = Budget::generous().with_max_facts(1000);
        let naive = chase(
            &inst,
            &constraints,
            &mut vf.clone(),
            ChaseConfig::with_budget(budget).with_engine(ChaseEngine::Naive),
        );
        let semi = chase(
            &inst,
            &constraints,
            &mut vf.clone(),
            ChaseConfig::with_budget(budget).with_engine(ChaseEngine::SemiNaive),
        );
        assert_eq!(naive.completion, Completion::BudgetExhausted);
        assert_eq!(semi.completion, Completion::Saturated);
        // 20 + 19 + ... + 1 = 210 facts either way: the naive run had in
        // fact finished the closure before its enumeration cap tripped.
        assert_eq!(semi.instance.relation_len(r), 210);
        assert_eq!(naive.instance.relation_len(r), 210);
    }

    #[test]
    fn engine_default_is_seminaive() {
        assert_eq!(ChaseConfig::default().engine, ChaseEngine::SemiNaive);
        assert_eq!(ChaseEngine::Naive.as_str(), "naive");
        assert_eq!(ChaseEngine::SemiNaive.as_str(), "seminaive");
    }
}
