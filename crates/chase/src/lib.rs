//! # rbqa-chase
//!
//! The chase engine used throughout the `rbqa` workspace.
//!
//! Query containment under constraints — the problem every answerability
//! question is reduced to (paper, Section 3) — is solved by *chase proofs*
//! (paper, Section 2): starting from the canonical database of a query,
//! dependencies are fired on *active triggers* until no violation remains or
//! a budget is exhausted, and the target query is then checked against the
//! result.
//!
//! ## What the engine implements
//!
//! * the **restricted (standard) chase** for TGDs — only active triggers are
//!   fired, with fresh labelled nulls for existential head variables
//!   ([`engine::chase`]);
//! * the **FD / EGD chase** — violated FDs unify values, substituting nulls
//!   and failing when two distinct constants would have to be equated;
//! * **depth tracking** — each fact carries a derivation depth so callers
//!   (e.g. bounded-depth containment for guarded constraints, Johnson–Klug
//!   style) can cap the chase tree depth;
//! * **budgets** ([`budget::Budget`]) on facts, rounds, depth, nulls and
//!   per-rule trigger enumeration ([`Budget::trigger_limit`]), so that
//!   non-terminating chases surface as explicit
//!   [`result::Completion::BudgetExhausted`] outcomes rather than hangs;
//! * a **weak acyclicity** test ([`termination::is_weakly_acyclic`]) which
//!   guarantees chase termination for the constraint sets produced by the FD
//!   simplification pipeline.
//!
//! ## Two engines, one semantics
//!
//! [`ChaseConfig::engine`] selects between two implementations of the same
//! restricted-chase semantics:
//!
//! * [`ChaseEngine::Naive`] — the textbook engine: each round re-enumerates
//!   every body homomorphism of every TGD against the full instance.
//!   `O(rounds × |hom space|)`; kept as the differential baseline and for
//!   the benchmark ablation (`fig_chase_engine`).
//! * [`ChaseEngine::SemiNaive`] (default) — the delta-driven engine of
//!   [`seminaive`]: per-relation indexes, a TGD→relation dependency map,
//!   and delta-restricted trigger search (at least one body atom must match
//!   a fact derived in the previous round). 5–10× faster on the
//!   chase-heavy Table-1 suites (see `BENCH_chase.json`).
//!
//! Both report the same [`Completion`] and produce homomorphically
//! equivalent instances; `tests/chase_differential.rs` (repo root) checks
//! this on 256 random schema/constraint cases:
//!
//! ```
//! use rbqa_chase::{chase, Budget, ChaseConfig, ChaseEngine};
//! use rbqa_common::{Instance, Signature, ValueFactory};
//! use rbqa_logic::constraints::tgd::inclusion_dependency;
//! use rbqa_logic::constraints::ConstraintSet;
//!
//! // R(x, y) -> ∃z S(y, z) and S(x, y) -> ∃z R(y, z): an infinite chase,
//! // cut off at depth 4 by the budget.
//! let mut sig = Signature::new();
//! let r = sig.add_relation("R", 2).unwrap();
//! let s = sig.add_relation("S", 2).unwrap();
//! let mut constraints = ConstraintSet::new();
//! constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));
//! constraints.push_tgd(inclusion_dependency(&sig, s, &[1], r, &[0]));
//!
//! let mut values = ValueFactory::new();
//! let (a, b) = (values.constant("a"), values.constant("b"));
//! let mut instance = Instance::new(sig);
//! instance.insert(r, vec![a, b]).unwrap();
//!
//! let budget = Budget::generous().with_max_depth(4);
//! let naive = chase(
//!     &instance,
//!     &constraints,
//!     &mut values.clone(),
//!     ChaseConfig::with_budget(budget).with_engine(ChaseEngine::Naive),
//! );
//! let semi = chase(
//!     &instance,
//!     &constraints,
//!     &mut values.clone(),
//!     ChaseConfig::with_budget(budget).with_engine(ChaseEngine::SemiNaive),
//! );
//! // Same completion (the depth cap stopped both), same instance size here
//! // (one new fact per depth level).
//! assert_eq!(naive.completion, semi.completion);
//! assert_eq!(naive.instance.len(), semi.instance.len());
//! ```

pub mod budget;
pub mod engine;
pub mod result;
pub mod seminaive;
pub mod termination;
pub mod trigger;

pub use budget::Budget;
pub use engine::{chase, ChaseConfig, ChaseEngine};
pub use result::{ChaseOutcome, ChaseStats, Completion};
pub use termination::is_weakly_acyclic;
