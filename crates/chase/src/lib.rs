//! # rbqa-chase
//!
//! The chase engine used throughout the `rbqa` workspace.
//!
//! Query containment under constraints — the problem every answerability
//! question is reduced to (paper, Section 3) — is solved by *chase proofs*
//! (paper, Section 2): starting from the canonical database of a query,
//! dependencies are fired on *active triggers* until no violation remains or
//! a budget is exhausted, and the target query is then checked against the
//! result.
//!
//! The engine implements:
//!
//! * the **restricted (standard) chase** for TGDs — only active triggers are
//!   fired, with fresh labelled nulls for existential head variables
//!   ([`engine::chase`]);
//! * the **FD / EGD chase** — violated FDs unify values, substituting nulls
//!   and failing when two distinct constants would have to be equated;
//! * **depth tracking** — each fact carries a derivation depth so callers
//!   (e.g. bounded-depth containment for guarded constraints, Johnson–Klug
//!   style) can cap the chase tree depth;
//! * **budgets** ([`budget::Budget`]) on facts, rounds, depth and nulls, so
//!   that non-terminating chases surface as explicit
//!   [`result::Completion::BudgetExhausted`] outcomes rather than hangs;
//! * a **weak acyclicity** test ([`termination::is_weakly_acyclic`]) which
//!   guarantees chase termination for the constraint sets produced by the FD
//!   simplification pipeline.

pub mod budget;
pub mod engine;
pub mod result;
pub mod termination;
pub mod trigger;

pub use budget::Budget;
pub use engine::{chase, ChaseConfig};
pub use result::{ChaseOutcome, ChaseStats, Completion};
pub use termination::is_weakly_acyclic;
