//! Chase outcomes and statistics.

use rbqa_common::Instance;

/// How a chase run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// No active trigger remains: the result satisfies every dependency.
    Saturated,
    /// The only active triggers left would exceed the depth cap: the result
    /// is exactly the chase truncated at `max_depth`. For constraint classes
    /// with a known bound on the depth of query matches (bounded-width IDs,
    /// Johnson–Klug), this is as good as saturation once the cap reaches
    /// that bound.
    DepthCapped,
    /// Some budget limit other than the depth cap was hit before saturation;
    /// the result is a sound but possibly incomplete chase prefix.
    BudgetExhausted,
    /// An FD chase step attempted to equate two distinct constants: the
    /// input instance cannot be repaired to satisfy the FDs.
    FdFailure,
}

impl Completion {
    /// Whether the chase reached a fixpoint (a universal model prefix that
    /// satisfies all constraints).
    pub fn is_saturated(self) -> bool {
        matches!(self, Completion::Saturated)
    }

    /// Whether the run explored everything allowed by the depth cap (either
    /// full saturation or depth-capped saturation).
    pub fn explored_to_depth_cap(self) -> bool {
        matches!(self, Completion::Saturated | Completion::DepthCapped)
    }
}

/// Counters describing one chase run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Number of chase rounds executed.
    pub rounds: usize,
    /// Number of TGD triggers fired (facts added).
    pub tgd_firings: usize,
    /// Number of FD unification steps applied.
    pub fd_unifications: usize,
    /// Number of fresh nulls created.
    pub nulls_created: usize,
    /// Maximum derivation depth reached by any fact.
    pub max_depth_reached: usize,
}

/// The result of a chase run: the (possibly partial) chased instance, how
/// the run ended and the statistics collected along the way.
#[derive(Debug, Clone)]
pub struct ChaseOutcome {
    /// The chased instance.
    pub instance: Instance,
    /// How the run ended.
    pub completion: Completion,
    /// Statistics collected during the run.
    pub stats: ChaseStats,
}

impl ChaseOutcome {
    /// Whether the chase reached saturation.
    pub fn is_saturated(&self) -> bool {
        self.completion.is_saturated()
    }

    /// Whether the chase detected that the FDs cannot be satisfied.
    pub fn is_fd_failure(&self) -> bool {
        matches!(self.completion, Completion::FdFailure)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_common::Signature;

    #[test]
    fn completion_predicates() {
        assert!(Completion::Saturated.is_saturated());
        assert!(!Completion::DepthCapped.is_saturated());
        assert!(!Completion::BudgetExhausted.is_saturated());
        assert!(!Completion::FdFailure.is_saturated());
        assert!(Completion::Saturated.explored_to_depth_cap());
        assert!(Completion::DepthCapped.explored_to_depth_cap());
        assert!(!Completion::BudgetExhausted.explored_to_depth_cap());
    }

    #[test]
    fn outcome_predicates() {
        let outcome = ChaseOutcome {
            instance: Instance::new(Signature::new()),
            completion: Completion::FdFailure,
            stats: ChaseStats::default(),
        };
        assert!(outcome.is_fd_failure());
        assert!(!outcome.is_saturated());
    }
}
