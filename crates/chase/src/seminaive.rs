//! The delta-driven (semi-naive) chase engine.
//!
//! The naive engine re-enumerates *every* body homomorphism of *every* TGD
//! against the *full* instance on each round — `O(rounds × |hom space|)`
//! work even though a round typically adds a handful of facts. This module
//! implements the classic semi-naive optimisation, adapted to the
//! restricted chase:
//!
//! 1. **Delta restriction.** A trigger discovered in round `k` must use at
//!    least one fact derived in round `k − 1` (otherwise all its body facts
//!    existed earlier and the trigger was already examined). Each round
//!    therefore unifies every body atom with every *delta* fact of its
//!    relation and completes the match against the full instance through a
//!    per-(TGD, atom) cached seeded match program
//!    ([`rbqa_logic::homomorphism::MatchProgram`]), which runs on the
//!    sorted per-position posting lists of [`rbqa_common::Instance`].
//! 2. **Rule dependency map.** A TGD is only considered in a round when
//!    some body relation gained facts ([`DependencyMap`]).
//! 3. **Deferred triggers.** Restricted-chase bookkeeping that naive gets
//!    "for free" by re-enumerating: a trigger whose firing would exceed
//!    `max_depth` cannot simply be dropped — an FD merge may later *lower*
//!    the depth of its body facts, or the final round must report it as
//!    [`Completion::DepthCapped`]. Such triggers are parked in a pending
//!    set and re-examined when an FD rewrite occurs or the run would
//!    otherwise end.
//! 4. **FD rewrites re-enter the delta.** When the EGD fixpoint merges
//!    values, every rewritten or collapsed fact is added back to the delta
//!    (and pending assignments are substituted), so trigger knowledge is
//!    never stale.
//!
//! The engine preserves the naive engine's semantics: same [`Completion`]
//! classification (saturation, depth capping, budget exhaustion, FD
//! failure), same depth accounting, same restricted-chase head checks —
//! with one deliberate, sound-direction exception. The
//! [`crate::Budget::trigger_limit`] cap applies to what each engine
//! actually enumerates per rule per round: *all* body homomorphisms for
//! naive, only the delta-restricted ones here. Since the delta count is
//! never larger, this engine truncates no earlier than naive — it may
//! saturate where naive reports
//! [`crate::Completion::BudgetExhausted`], never the reverse, and a
//! truncation here is still a sound `BudgetExhausted`. The differential
//! property test in `tests/chase_differential.rs` exercises the
//! equivalence on random schemas and constraint sets (away from the
//! enumeration cap).

use rbqa_common::{Instance, RelationId, Value, ValueFactory};
use rbqa_logic::constraints::ConstraintSet;
use rbqa_logic::homomorphism::MatchProgram;
use rbqa_logic::{Atom, Term, Tgd, VarId};
use rustc_hash::{FxHashMap, FxHashSet};

use crate::engine::{
    apply_fds_to_fixpoint, fire_trigger, ChaseConfig, DepthMap, FireResult, RowSet,
};
use crate::result::{ChaseOutcome, ChaseStats, Completion};
use crate::trigger::{HeadCheck, Trigger, TriggerAssignment};

/// Maps each relation to the (ascending, deduplicated) indices of the TGDs
/// whose *body* mentions it: the rules that must be re-evaluated when the
/// relation gains facts.
#[derive(Debug, Default)]
pub struct DependencyMap {
    by_relation: FxHashMap<RelationId, Vec<usize>>,
}

impl DependencyMap {
    /// Builds the map for a TGD list (indices refer to slice positions).
    pub fn new(tgds: &[Tgd]) -> Self {
        let mut by_relation: FxHashMap<RelationId, Vec<usize>> = FxHashMap::default();
        for (i, tgd) in tgds.iter().enumerate() {
            for atom in tgd.body() {
                let deps = by_relation.entry(atom.relation()).or_default();
                if deps.last() != Some(&i) {
                    deps.push(i);
                }
            }
        }
        DependencyMap { by_relation }
    }

    /// The TGD indices affected by a set of changed relations, ascending.
    pub fn affected<'a>(&self, relations: impl Iterator<Item = &'a RelationId>) -> Vec<usize> {
        let mut out: Vec<usize> = relations
            .filter_map(|rel| self.by_relation.get(rel))
            .flatten()
            .copied()
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The rules whose body mentions `relation`.
    pub fn rules_for(&self, relation: RelationId) -> &[usize] {
        self.by_relation
            .get(&relation)
            .map_or(&[], |v| v.as_slice())
    }
}

/// Unifies `atom` with a ground `tuple`, producing the induced partial
/// assignment as sorted `(variable, value)` seed pairs, or `None` when a
/// constant mismatches or a repeated variable would need two values.
fn unify_atom(atom: &Atom, tuple: &[Value]) -> Option<Vec<(VarId, Value)>> {
    debug_assert_eq!(atom.args().len(), tuple.len());
    let mut seed: Vec<(VarId, Value)> = Vec::with_capacity(atom.args().len());
    for (term, &val) in atom.args().iter().zip(tuple.iter()) {
        match term {
            Term::Const(c) => {
                if *c != val {
                    return None;
                }
            }
            Term::Var(v) => match seed.iter().find(|(sv, _)| sv == v) {
                Some(&(_, prev)) if prev != val => return None,
                Some(_) => {}
                None => seed.push((*v, val)),
            },
        }
    }
    seed.sort_unstable_by_key(|&(v, _)| v);
    Some(seed)
}

/// Per-TGD state precompiled once per chase run: one [`MatchProgram`] per
/// seeded body shape plus the shared activeness check.
///
/// * `without_atom[i]` is the compiled body with atom `i` removed, declared
///   to be seeded with atom `i`'s variables: unifying a delta fact against
///   atom `i` pins all of that atom's variables, so the removed atom needs
///   no re-join — for linear TGDs (IDs, the dominant class) the remaining
///   program is empty and delta matching is O(1) per delta fact.
/// * `head` is the engine-shared [`HeadCheck`] (the compiled head program
///   seeded with the frontier variables), so the restricted-chase
///   activeness check neither rebuilds queries nor re-plans the atom order
///   per check — and cannot drift from the naive engine's.
struct TgdPlan {
    without_atom: Vec<MatchProgram>,
    head: HeadCheck,
}

impl TgdPlan {
    fn new(tgd: &Tgd) -> Self {
        let without_atom = (0..tgd.body().len())
            .map(|skip| {
                let atoms: Vec<Atom> = tgd
                    .body()
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != skip)
                    .map(|(_, a)| a.clone())
                    .collect();
                MatchProgram::compile_atoms(&atoms, &tgd.body()[skip].variables())
            })
            .collect();
        TgdPlan {
            without_atom,
            head: HeadCheck::new(tgd),
        }
    }

    /// Whether `assignment` extends to a head match in `instance` (the
    /// trigger is then inactive). See [`HeadCheck`].
    fn head_satisfied(&self, instance: &Instance, assignment: &[(VarId, Value)]) -> bool {
        self.head.satisfied(instance, assignment)
    }
}

/// Enumerates the *active* triggers of `tgd` that touch the delta: body
/// homomorphisms into `instance` mapping at least one body atom to a fact
/// in `delta_by_rel`. At most `limit` distinct homomorphisms are collected;
/// the second component reports truncation (the run is then budget
/// exhausted, mirroring [`crate::trigger::active_triggers`]).
/// Unlike [`crate::trigger::active_triggers`] this does *not* pre-filter
/// head-satisfied triggers: the firing loop re-checks activeness against
/// the evolving instance anyway (the authoritative restricted-chase check),
/// so pre-filtering would only double the number of head searches.
fn delta_triggers(
    tgd: &Tgd,
    tgd_index: usize,
    plan: &TgdPlan,
    instance: &Instance,
    delta_by_rel: &FxHashMap<RelationId, Vec<u32>>,
    limit: usize,
) -> (Vec<Trigger>, bool) {
    let mut seen: FxHashSet<TriggerAssignment> = FxHashSet::default();
    let mut triggers: Vec<Trigger> = Vec::new();
    let mut truncated = false;

    'atoms: for (atom_idx, atom) in tgd.body().iter().enumerate() {
        let Some(new_rows) = delta_by_rel.get(&atom.relation()) else {
            continue;
        };
        let rest = &plan.without_atom[atom_idx];
        for &row in new_rows {
            let tuple = instance.row(atom.relation(), row);
            let Some(seed) = unify_atom(atom, tuple) else {
                continue;
            };
            // The seed pins every variable of `atom` to the delta fact
            // (which is present by construction), so only the remaining
            // atoms are joined against the full instance by the cached
            // match program over the sorted posting lists.
            let mut hit_limit = false;
            rest.for_each(instance, &seed, |binding| {
                // `iter_bound` yields in slot order, so the assignment is
                // already sorted — it doubles as its own dedup key.
                let assignment: TriggerAssignment = binding.iter_bound().collect();
                if seen.insert(assignment.clone()) {
                    triggers.push(Trigger {
                        tgd_index,
                        assignment,
                    });
                    if triggers.len() >= limit {
                        hit_limit = true;
                        return false;
                    }
                }
                true
            });
            if hit_limit {
                truncated = true;
                break 'atoms;
            }
        }
    }
    (triggers, truncated)
}

/// Sorted, per-relation view of a delta row set. Row ids are sorted so that
/// the enumeration order (and hence null naming) is deterministic
/// regardless of hash-set iteration order — row ids reflect insertion
/// order, which is itself deterministic.
fn group_delta(delta: &RowSet) -> FxHashMap<RelationId, Vec<u32>> {
    let mut by_rel: FxHashMap<RelationId, Vec<u32>> = FxHashMap::default();
    for &(rel, row) in delta {
        by_rel.entry(rel).or_default().push(row);
    }
    for rows in by_rel.values_mut() {
        rows.sort_unstable();
    }
    by_rel
}

/// The delta-driven restricted chase. Entry point used by
/// [`crate::engine::chase`] when [`ChaseConfig::engine`] is
/// [`crate::ChaseEngine::SemiNaive`].
pub(crate) fn chase_seminaive(
    instance: &Instance,
    constraints: &ConstraintSet,
    values: &mut ValueFactory,
    config: ChaseConfig,
) -> ChaseOutcome {
    let budget = config.budget;
    let mut current = instance.clone();
    let mut depths = DepthMap::zeros(&current);
    let mut stats = ChaseStats::default();
    let mut scratch: Vec<Value> = Vec::new();

    // Initial FD fixpoint, as in the naive engine. No delta bookkeeping is
    // needed yet: the first round treats every fact as new.
    if config.apply_fds
        && apply_fds_to_fixpoint(
            &mut current,
            constraints.fds(),
            &mut depths,
            &mut stats,
            None,
        )
        .is_err()
    {
        return ChaseOutcome {
            instance: current,
            completion: Completion::FdFailure,
            stats,
        };
    }

    let deps = DependencyMap::new(constraints.tgds());
    // Per-TGD plans are compiled on first use: the delta restriction means
    // rules whose body relations never gain facts are never examined at
    // all, and constraint sets like the ID linearization carry hundreds of
    // rules over annotated relations that stay empty on a given run.
    let mut plans: Vec<Option<TgdPlan>> = constraints.tgds().iter().map(|_| None).collect();
    let trigger_limit = budget.trigger_limit();

    // Round 1 sees the whole (FD-repaired) instance as its delta, so its
    // trigger enumeration coincides with the naive engine's first round.
    let mut delta: RowSet = (0..current.signature().len())
        .flat_map(|i| {
            let rel = RelationId::from_index(i);
            (0..current.relation_len(rel) as u32).map(move |row| (rel, row))
        })
        .collect();

    // Depth-deferred triggers: active triggers whose firing would exceed
    // `max_depth`. Their status can only change when an FD merge lowers a
    // body depth (or satisfies their head), so they are re-examined after
    // FD rewrites and on otherwise-quiescent rounds — the latter is what
    // tells `DepthCapped` from `Saturated`.
    let mut pending: Vec<Trigger> = Vec::new();
    let mut recheck_pending = false;

    loop {
        if stats.rounds >= budget.max_rounds {
            return ChaseOutcome {
                instance: current,
                completion: Completion::BudgetExhausted,
                stats,
            };
        }
        // Cooperative deadline check, once per round (see the naive
        // engine): a timed-out request aborts here and the caller tells
        // the two apart by re-checking the deadline.
        if rbqa_obs::deadline_expired() {
            rbqa_obs::counters::add_deadline_expiry();
            return ChaseOutcome {
                instance: current,
                completion: Completion::BudgetExhausted,
                stats,
            };
        }
        stats.rounds += 1;
        let mut round_span = rbqa_obs::span("chase_round");
        round_span.num("round", stats.rounds as u64);

        let mut skipped_for_depth = false;
        let mut fired_any = false;
        let mut over_budget = false;

        // Candidate triggers: the deferred ones (when due for
        // re-examination), then the delta-derived ones in TGD order
        // (mirroring the naive engine's enumeration order as closely as
        // the restriction allows).
        let delta_by_rel = group_delta(&delta);
        // Whether every trigger in `pending` has been examined by the end
        // of this round: true when the carried-over ones are re-candidated
        // now, or when there were none to carry (anything deferred *during*
        // this round was by definition examined this round).
        let pending_examined = recheck_pending || pending.is_empty();
        let mut candidates = if recheck_pending {
            std::mem::take(&mut pending)
        } else {
            Vec::new()
        };
        recheck_pending = false;
        {
            let mut search_span = rbqa_obs::span("trigger_search");
            for i in deps.affected(delta_by_rel.keys()) {
                let plan = plans[i].get_or_insert_with(|| TgdPlan::new(&constraints.tgds()[i]));
                let (mut found, truncated) = delta_triggers(
                    &constraints.tgds()[i],
                    i,
                    plan,
                    &current,
                    &delta_by_rel,
                    trigger_limit,
                );
                if truncated {
                    over_budget = true;
                }
                candidates.append(&mut found);
            }
            search_span.num("triggers", candidates.len() as u64);
        }

        let mut new_delta: RowSet = RowSet::default();
        let mut pending_keys: FxHashSet<(usize, TriggerAssignment)> = FxHashSet::default();

        for trigger in candidates {
            let tgd = &constraints.tgds()[trigger.tgd_index];
            // Restricted-chase activeness check against the evolving
            // instance: earlier firings in this round (or of past rounds,
            // for deferred triggers) may have satisfied the head already.
            let plan = plans[trigger.tgd_index]
                .get_or_insert_with(|| TgdPlan::new(&constraints.tgds()[trigger.tgd_index]));
            if plan.head_satisfied(&current, &trigger.assignment) {
                continue;
            }
            match fire_trigger(
                tgd,
                &trigger.assignment,
                &mut current,
                &mut depths,
                &mut stats,
                values,
                budget,
                Some(&mut new_delta),
                &mut scratch,
            ) {
                FireResult::Fired => {
                    fired_any = true;
                    rbqa_obs::counters::add_firing(trigger.tgd_index);
                }
                FireResult::SkippedForDepth => {
                    skipped_for_depth = true;
                    if pending_keys.insert((trigger.tgd_index, trigger.assignment.clone())) {
                        pending.push(trigger);
                    }
                }
                FireResult::OverBudget => {
                    over_budget = true;
                    break;
                }
            }
            if current.len() > budget.max_facts {
                over_budget = true;
                break;
            }
        }

        // Re-establish the FDs; a value merge invalidates trigger
        // knowledge, so rewritten rows re-enter the delta (translated in
        // place by the fixpoint) and deferred assignments are substituted.
        if config.apply_fds {
            match apply_fds_to_fixpoint(
                &mut current,
                constraints.fds(),
                &mut depths,
                &mut stats,
                Some(&mut new_delta),
            ) {
                Err(()) => {
                    return ChaseOutcome {
                        instance: current,
                        completion: Completion::FdFailure,
                        stats,
                    };
                }
                Ok(rewrite) if rewrite.rewrote() => {
                    for trigger in &mut pending {
                        for (_, val) in trigger.assignment.iter_mut() {
                            if let Some(mapped) = rewrite.subst.get(val) {
                                *val = *mapped;
                            }
                        }
                    }
                    // Merged values may have lowered a deferred trigger's
                    // body depth (or satisfied its head): re-examine.
                    recheck_pending = !pending.is_empty();
                }
                Ok(_) => {}
            }
        }

        if over_budget {
            return ChaseOutcome {
                instance: current,
                completion: Completion::BudgetExhausted,
                stats,
            };
        }
        if !fired_any {
            if !pending_examined {
                // Quiescent, but triggers deferred in *earlier* rounds were
                // not looked at this round: run one more round over them.
                // They either fire (an FD merge lowered their depth), turn
                // out head-satisfied, or re-defer and set the depth flag.
                // (Triggers deferred during this round need no extra look —
                // the naive engine would classify them identically.)
                recheck_pending = true;
                delta = RowSet::default();
                continue;
            }
            let completion = if skipped_for_depth {
                Completion::DepthCapped
            } else {
                Completion::Saturated
            };
            return ChaseOutcome {
                instance: current,
                completion,
                stats,
            };
        }
        delta = new_delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_common::Signature;
    use rbqa_logic::constraints::tgd::{inclusion_dependency, TgdBuilder};

    #[test]
    fn dependency_map_indexes_body_relations() {
        let mut sig = Signature::new();
        let r = sig.add_relation("R", 2).unwrap();
        let s = sig.add_relation("S", 2).unwrap();
        let t = sig.add_relation("T", 2).unwrap();
        let tgds = vec![
            inclusion_dependency(&sig, r, &[1], s, &[0]), // body R
            inclusion_dependency(&sig, s, &[1], t, &[0]), // body S
            inclusion_dependency(&sig, r, &[0], t, &[1]), // body R
        ];
        let map = DependencyMap::new(&tgds);
        assert_eq!(map.rules_for(r), &[0, 2]);
        assert_eq!(map.rules_for(s), &[1]);
        assert!(map.rules_for(t).is_empty());
        assert_eq!(map.affected([r, s].iter()), vec![0, 1, 2]);
        assert_eq!(map.affected([t].iter()), Vec::<usize>::new());
    }

    #[test]
    fn unify_atom_respects_constants_and_repeats() {
        let mut sig = Signature::new();
        let r = sig.add_relation("R", 2).unwrap();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");

        let mut builder = TgdBuilder::new();
        let x = builder.var("x");
        builder.body_atom(r, vec![Term::Var(x), Term::Var(x)]);
        builder.head_atom(r, vec![Term::Var(x), Term::Var(x)]);
        let tgd = builder.build();
        let atom = &tgd.body()[0];

        // R(x, x) unifies with (a, a) but not (a, b).
        let seed = unify_atom(atom, &[a, a]).unwrap();
        assert_eq!(seed.len(), 1);
        assert!(unify_atom(atom, &[a, b]).is_none());
    }

    #[test]
    fn delta_triggers_only_touch_new_facts() {
        let mut sig = Signature::new();
        let r = sig.add_relation("R", 2).unwrap();
        let s = sig.add_relation("S", 2).unwrap();
        let mut vf = ValueFactory::new();
        let vals: Vec<_> = (0..4).map(|i| vf.constant(&format!("v{i}"))).collect();
        let mut inst = Instance::new(sig.clone());
        for &v in &vals {
            inst.insert(r, vec![v, v]).unwrap();
        }
        let tgd = inclusion_dependency(&sig, r, &[0], s, &[0]);

        // Only v0's fact (row 0 of R) is "new": a single trigger is found
        // even though four body homomorphisms exist in the full instance.
        let mut delta = RowSet::default();
        let row = inst.row_id(r, &[vals[0], vals[0]]).unwrap();
        delta.insert((r, row));
        let plan = TgdPlan::new(&tgd);
        let by_rel = group_delta(&delta);
        let (triggers, truncated) = delta_triggers(&tgd, 0, &plan, &inst, &by_rel, usize::MAX);
        assert!(!truncated);
        assert_eq!(triggers.len(), 1);

        // An empty delta yields no triggers at all.
        let by_rel = group_delta(&RowSet::default());
        let (triggers, truncated) = delta_triggers(&tgd, 0, &plan, &inst, &by_rel, usize::MAX);
        assert!(!truncated);
        assert!(triggers.is_empty());
    }

    #[test]
    fn delta_triggers_dedupe_multi_delta_matches() {
        // Both body atoms of a 2-atom rule match delta facts: the joint
        // homomorphism must be reported once, not once per delta atom.
        let mut sig = Signature::new();
        let r = sig.add_relation("R", 2).unwrap();
        let s = sig.add_relation("S", 1).unwrap();
        let mut vf = ValueFactory::new();
        let (a, b, c) = (vf.constant("a"), vf.constant("b"), vf.constant("c"));
        let mut inst = Instance::new(sig.clone());
        inst.insert(r, vec![a, b]).unwrap();
        inst.insert(r, vec![b, c]).unwrap();

        let mut builder = TgdBuilder::new();
        let (x, y, z) = (builder.var("x"), builder.var("y"), builder.var("z"));
        builder.body_atom(r, vec![Term::Var(x), Term::Var(y)]);
        builder.body_atom(r, vec![Term::Var(y), Term::Var(z)]);
        builder.head_atom(s, vec![Term::Var(x)]);
        let tgd = builder.build();

        let delta: RowSet = (0..inst.relation_len(r) as u32)
            .map(|row| (r, row))
            .collect();
        let by_rel = group_delta(&delta);
        let (triggers, _) =
            delta_triggers(&tgd, 0, &TgdPlan::new(&tgd), &inst, &by_rel, usize::MAX);
        // Exactly one join: R(a,b) ⋈ R(b,c).
        assert_eq!(triggers.len(), 1);
    }
}
