//! Chase termination: the weak acyclicity test.
//!
//! A set of TGDs is *weakly acyclic* when its position dependency graph has
//! no cycle through a "special" edge (an edge recording the creation of a
//! fresh null). Weak acyclicity guarantees that the restricted chase
//! terminates on every instance, in polynomially many rounds. The paper
//! leaves open the complexity of answerability for weakly-acyclic TGDs
//! (Section 9); we expose the test so that the answerability pipeline can
//! recognise terminating configurations (e.g. the constraint sets produced
//! by the FD simplification, Theorem 5.2).

use rbqa_common::RelationId;
use rbqa_logic::constraints::ConstraintSet;
use rustc_hash::{FxHashMap, FxHashSet};

/// A node of the position dependency graph: a (relation, position) pair.
type PosNode = (RelationId, usize);

/// An edge list of the position dependency graph.
type PosEdges = Vec<(PosNode, PosNode)>;

/// Builds the position dependency graph of the TGDs of `constraints`.
/// Returns `(regular_edges, special_edges)`.
pub fn position_dependency_graph(constraints: &ConstraintSet) -> (PosEdges, PosEdges) {
    let mut regular = Vec::new();
    let mut special = Vec::new();
    for tgd in constraints.tgds() {
        let exported: FxHashSet<_> = tgd.exported_variables().into_iter().collect();
        let existential: FxHashSet<_> = tgd.existential_variables().into_iter().collect();
        for body_atom in tgd.body() {
            for x in body_atom.variables() {
                if !exported.contains(&x) {
                    continue;
                }
                for bpos in body_atom.positions_of(x) {
                    let from = (body_atom.relation(), bpos);
                    for head_atom in tgd.head() {
                        // Regular edges: x travels to its head occurrences.
                        for hpos in head_atom.positions_of(x) {
                            regular.push((from, (head_atom.relation(), hpos)));
                        }
                        // Special edges: x's position feeds every
                        // existentially quantified position of the head.
                        for y in head_atom.variables() {
                            if existential.contains(&y) {
                                for hpos in head_atom.positions_of(y) {
                                    special.push((from, (head_atom.relation(), hpos)));
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    (regular, special)
}

/// Whether the TGDs of `constraints` are weakly acyclic.
pub fn is_weakly_acyclic(constraints: &ConstraintSet) -> bool {
    let (regular, special) = position_dependency_graph(constraints);
    // Collect nodes.
    let mut nodes: Vec<PosNode> = Vec::new();
    for (a, b) in regular.iter().chain(special.iter()) {
        nodes.push(*a);
        nodes.push(*b);
    }
    nodes.sort();
    nodes.dedup();
    let index: FxHashMap<PosNode, usize> = nodes.iter().enumerate().map(|(i, n)| (*n, i)).collect();
    let n = nodes.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (a, b) in regular.iter().chain(special.iter()) {
        adj[index[a]].push(index[b]);
    }

    // Compute SCCs (Kosaraju): a special edge inside an SCC forms a cycle
    // through it.
    let comp = sccs(&adj);
    for (a, b) in &special {
        if comp[index[a]] == comp[index[b]] {
            // Both endpoints in the same SCC: there is a path b -> a, so the
            // special edge a -> b closes a cycle through a special edge.
            return false;
        }
    }
    true
}

/// Kosaraju strongly connected components; returns the component index of
/// every node.
fn sccs(adj: &[Vec<usize>]) -> Vec<usize> {
    let n = adj.len();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    for start in 0..n {
        if visited[start] {
            continue;
        }
        // Iterative DFS computing a post-order.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        visited[start] = true;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < adj[v].len() {
                let w = adj[v][*next];
                *next += 1;
                if !visited[w] {
                    visited[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    // Reverse graph.
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (v, outs) in adj.iter().enumerate() {
        for &w in outs {
            radj[w].push(v);
        }
    }
    let mut comp = vec![usize::MAX; n];
    let mut current = 0;
    for &v in order.iter().rev() {
        if comp[v] != usize::MAX {
            continue;
        }
        let mut stack = vec![v];
        comp[v] = current;
        while let Some(u) = stack.pop() {
            for &w in &radj[u] {
                if comp[w] == usize::MAX {
                    comp[w] = current;
                    stack.push(w);
                }
            }
        }
        current += 1;
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_common::Signature;
    use rbqa_logic::constraints::tgd::inclusion_dependency;

    fn sig2() -> (Signature, RelationId, RelationId) {
        let mut sig = Signature::new();
        let r = sig.add_relation("R", 2).unwrap();
        let s = sig.add_relation("S", 2).unwrap();
        (sig, r, s)
    }

    #[test]
    fn acyclic_ids_are_weakly_acyclic() {
        let (sig, r, s) = sig2();
        let mut cs = ConstraintSet::new();
        cs.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));
        assert!(is_weakly_acyclic(&cs));
    }

    #[test]
    fn mutually_recursive_non_full_ids_are_not_weakly_acyclic() {
        let (sig, r, s) = sig2();
        let mut cs = ConstraintSet::new();
        cs.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));
        cs.push_tgd(inclusion_dependency(&sig, s, &[1], r, &[0]));
        assert!(!is_weakly_acyclic(&cs));
    }

    #[test]
    fn full_tgds_are_always_weakly_acyclic() {
        // Full TGDs create no special edges.
        let (sig, r, s) = sig2();
        let mut cs = ConstraintSet::new();
        // R(x, y) -> S(x, y) and S(x, y) -> R(y, x): cyclic but full.
        cs.push_tgd(inclusion_dependency(&sig, r, &[0, 1], s, &[0, 1]));
        cs.push_tgd(inclusion_dependency(&sig, s, &[0, 1], r, &[1, 0]));
        assert!(is_weakly_acyclic(&cs));
    }

    #[test]
    fn self_recursive_existential_id_is_not_weakly_acyclic() {
        let (sig, r, _s) = sig2();
        let mut cs = ConstraintSet::new();
        // R(x, y) -> ∃z R(y, z)
        cs.push_tgd(inclusion_dependency(&sig, r, &[1], r, &[0]));
        assert!(!is_weakly_acyclic(&cs));
    }

    #[test]
    fn empty_constraint_set_is_weakly_acyclic() {
        let cs = ConstraintSet::new();
        assert!(is_weakly_acyclic(&cs));
    }

    #[test]
    fn graph_edges_are_built() {
        let (sig, r, s) = sig2();
        let mut cs = ConstraintSet::new();
        cs.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));
        let (regular, special) = position_dependency_graph(&cs);
        // Exported position (R,1) -> (S,0) regular, and (R,1) -> (S,1) special.
        assert!(regular.contains(&((r, 1), (s, 0))));
        assert!(special.contains(&((r, 1), (s, 1))));
    }
}
