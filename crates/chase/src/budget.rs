//! Budgets limiting chase runs.
//!
//! The chase may not terminate for arbitrary TGDs. Every entry point of the
//! engine therefore takes a [`Budget`]; exceeding any limit stops the run
//! and is reported as [`crate::Completion::BudgetExhausted`].

/// Resource limits for one chase run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of facts in the chased instance (including the input).
    pub max_facts: usize,
    /// Maximum number of chase rounds (a round fires every active trigger
    /// found against the instance at the start of the round).
    pub max_rounds: usize,
    /// Maximum derivation depth of any fact (input facts have depth 0).
    pub max_depth: usize,
    /// Maximum number of fresh nulls created.
    pub max_nulls: usize,
}

impl Budget {
    /// A generous default budget suitable for unit tests and small reasoning
    /// tasks.
    pub fn generous() -> Self {
        Budget {
            max_facts: 100_000,
            max_rounds: 1_000,
            max_depth: 64,
            max_nulls: 200_000,
        }
    }

    /// A small budget for adversarial inputs or quick feasibility probes.
    pub fn small() -> Self {
        Budget {
            max_facts: 2_000,
            max_rounds: 50,
            max_depth: 16,
            max_nulls: 4_000,
        }
    }

    /// Returns a copy with the depth limit replaced.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Returns a copy with the fact limit replaced.
    pub fn with_max_facts(mut self, facts: usize) -> Self {
        self.max_facts = facts;
        self
    }

    /// Returns a copy with the round limit replaced.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Returns a copy with the null limit replaced.
    pub fn with_max_nulls(mut self, nulls: usize) -> Self {
        self.max_nulls = nulls;
        self
    }

    /// Per-rule, per-round cap on trigger enumeration, derived once from
    /// the budget: `max_facts + 2` (saturating).
    ///
    /// ```
    /// use rbqa_chase::Budget;
    /// let budget = Budget::generous().with_max_facts(100);
    /// assert_eq!(budget.trigger_limit(), 102);
    /// assert_eq!(Budget::default().trigger_limit(), 100_002);
    /// ```
    ///
    /// Rules with several body atoms can have exponentially many body
    /// homomorphisms over a large instance; enumerating them all each round
    /// would turn adversarial inputs (e.g. the naive cardinality
    /// axiomatisation of the ablation benchmark) into a hang rather than an
    /// explicit budget exhaustion. A round that finds `max_facts + 2`
    /// candidate triggers for a *single* rule is already beyond anything the
    /// fact budget could absorb, so both engines stop enumerating there and
    /// report the run as [`crate::Completion::BudgetExhausted`]. The `+ 2`
    /// keeps the cap non-zero (and the truncation flag meaningful) even for
    /// degenerate `max_facts` values.
    ///
    /// The limit is intentionally *independent of the current instance
    /// size*: it is a per-round work bound, not a remaining-capacity
    /// estimate. It caps what each engine actually enumerates — all body
    /// homomorphisms for the naive engine, only delta-restricted ones for
    /// the semi-naive engine — so the semi-naive engine, which enumerates
    /// strictly fewer, may saturate on inputs where the naive engine hits
    /// the cap and reports `BudgetExhausted` (the sound direction; the
    /// reverse cannot happen).
    pub fn trigger_limit(&self) -> usize {
        self.max_facts.saturating_add(2)
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::generous()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_generous() {
        assert_eq!(Budget::default(), Budget::generous());
    }

    #[test]
    fn with_methods_replace_single_fields() {
        let b = Budget::generous()
            .with_max_depth(3)
            .with_max_facts(10)
            .with_max_rounds(7)
            .with_max_nulls(11);
        assert_eq!(b.max_depth, 3);
        assert_eq!(b.max_facts, 10);
        assert_eq!(b.max_rounds, 7);
        assert_eq!(b.max_nulls, 11);
    }

    #[test]
    fn small_is_smaller_than_generous() {
        let s = Budget::small();
        let g = Budget::generous();
        assert!(s.max_facts < g.max_facts);
        assert!(s.max_depth < g.max_depth);
    }
}
