//! Trigger enumeration for TGDs.
//!
//! A *trigger* for a TGD `δ` in an instance `I` is a homomorphism from the
//! body of `δ` into `I`; the trigger is *active* when it cannot be extended
//! to a homomorphism from the head into `I` (paper, Section 2). Firing a
//! dependency on an active trigger adds head facts with fresh nulls for the
//! existentially quantified variables.
//!
//! Trigger assignments are stored as sorted `(variable, value)` pair lists
//! ([`TriggerAssignment`]) rather than hash maps: trigger-heavy rounds
//! create thousands of them, and a sorted `Vec` costs one allocation, reads
//! with a branch-free binary search, and is produced directly from the
//! kernel's dense [`rbqa_logic::homomorphism::Binding`].

use rbqa_common::{Instance, Value};
use rbqa_logic::homomorphism::MatchProgram;
use rbqa_logic::{Tgd, VarId};

/// A body-variable assignment as `(variable, value)` pairs sorted by
/// variable — the chase's flat trigger representation.
pub type TriggerAssignment = Vec<(VarId, Value)>;

/// The value assigned to `var` by a sorted assignment, if any.
#[inline]
pub fn assignment_get(assignment: &[(VarId, Value)], var: VarId) -> Option<Value> {
    assignment
        .binary_search_by_key(&var, |&(v, _)| v)
        .ok()
        .map(|i| assignment[i].1)
}

/// A trigger: the assignment of the TGD's body variables to instance values.
#[derive(Debug, Clone)]
pub struct Trigger {
    /// Index of the dependency in the caller's TGD list.
    pub tgd_index: usize,
    /// The body homomorphism, sorted by variable.
    pub assignment: TriggerAssignment,
}

/// The cached restricted-chase activeness check of one TGD: the compiled
/// head program seeded with the exported (frontier) variables. Shared by
/// both engines' per-TGD caches ([`TgdKernel`] for the naive engine, the
/// semi-naive engine's plans) so the check cannot drift between them.
#[derive(Debug)]
pub struct HeadCheck {
    head: MatchProgram,
    exported: Vec<VarId>,
}

impl HeadCheck {
    /// Compiles the head program of `tgd`, seeded with its exported
    /// variables.
    pub fn new(tgd: &Tgd) -> Self {
        let exported = tgd.exported_variables();
        HeadCheck {
            head: MatchProgram::compile_atoms(tgd.head(), &exported),
            exported,
        }
    }

    /// Whether the full body `assignment` extends to a head match in
    /// `instance` (the trigger is then inactive). The assignment must bind
    /// every exported variable — which any body homomorphism does.
    pub fn satisfied(&self, instance: &Instance, assignment: &[(VarId, Value)]) -> bool {
        let seed: Vec<(VarId, Value)> = self
            .exported
            .iter()
            .filter_map(|v| assignment_get(assignment, *v).map(|val| (*v, val)))
            .collect();
        self.head.exists(instance, &seed)
    }
}

/// Per-TGD compiled match programs, built once per chase run and reused
/// across rounds: the body program enumerates triggers, the [`HeadCheck`]
/// answers the restricted-chase activeness check. Compiling once amortises
/// the atom ordering and variable-pool handling that the one-shot entry
/// points redo per call.
#[derive(Debug)]
pub struct TgdKernel {
    body: MatchProgram,
    head: HeadCheck,
}

impl TgdKernel {
    /// Compiles the body and head programs of `tgd`.
    pub fn new(tgd: &Tgd) -> Self {
        TgdKernel {
            body: MatchProgram::compile_atoms(tgd.body(), &[]),
            head: HeadCheck::new(tgd),
        }
    }

    /// Whether the full body `assignment` extends to a head match in
    /// `instance` (the trigger is then inactive). See [`HeadCheck`].
    pub fn head_satisfied(&self, instance: &Instance, assignment: &[(VarId, Value)]) -> bool {
        self.head.satisfied(instance, assignment)
    }

    /// Enumerates the active triggers of this TGD (identified by
    /// `tgd_index`) in `instance`. At most `limit` body homomorphisms are
    /// enumerated; the second component reports truncation (the chase
    /// engine then treats the run as budget-exhausted rather than
    /// saturated). Rules with many body atoms over large instances can have
    /// exponentially many triggers, so an explicit cap is required to keep
    /// the engine responsive on adversarial inputs.
    pub fn active_triggers(
        &self,
        tgd_index: usize,
        instance: &Instance,
        limit: usize,
    ) -> (Vec<Trigger>, bool) {
        let mut assignments: Vec<TriggerAssignment> = Vec::new();
        if limit > 0 {
            self.body.for_each(instance, &[], |binding| {
                assignments.push(binding.iter_bound().collect());
                assignments.len() < limit
            });
        }
        let truncated = assignments.len() >= limit;
        let triggers = assignments
            .into_iter()
            .filter(|assignment| !self.head_satisfied(instance, assignment))
            .map(|assignment| Trigger {
                tgd_index,
                assignment,
            })
            .collect();
        (triggers, truncated)
    }
}

/// Whether a body assignment can be extended to the head of `tgd` inside
/// `instance` (i.e. whether the trigger is *inactive*). One-shot
/// compatibility wrapper over [`HeadCheck`] (only the head program is
/// compiled); engines cache a [`TgdKernel`] per TGD instead.
pub fn head_satisfied(tgd: &Tgd, instance: &Instance, assignment: &[(VarId, Value)]) -> bool {
    HeadCheck::new(tgd).satisfied(instance, assignment)
}

/// Enumerates the *active* triggers of `tgd` (identified by `tgd_index`) in
/// `instance`. One-shot compatibility wrapper over
/// [`TgdKernel::active_triggers`].
pub fn active_triggers(
    tgd: &Tgd,
    tgd_index: usize,
    instance: &Instance,
    limit: usize,
) -> (Vec<Trigger>, bool) {
    TgdKernel::new(tgd).active_triggers(tgd_index, instance, limit)
}

/// The instance facts matched by the body of `tgd` under `assignment`
/// (used by tests and diagnostics to inspect a trigger; the engine computes
/// derivation depths without materialising facts).
pub fn matched_body_facts(
    tgd: &Tgd,
    assignment: &[(VarId, Value)],
) -> Vec<(rbqa_common::RelationId, Vec<Value>)> {
    tgd.body()
        .iter()
        .map(|atom| {
            let tuple = atom
                .instantiate_with(|v| assignment_get(assignment, v))
                .expect("trigger assigns every body variable");
            (atom.relation(), tuple)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_common::{Signature, ValueFactory};
    use rbqa_logic::constraints::tgd::inclusion_dependency;

    fn setup() -> (Signature, rbqa_common::RelationId, rbqa_common::RelationId) {
        let mut sig = Signature::new();
        let r = sig.add_relation("R", 2).unwrap();
        let s = sig.add_relation("S", 2).unwrap();
        (sig, r, s)
    }

    #[test]
    fn active_trigger_found_when_head_missing() {
        let (sig, r, s) = setup();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let mut inst = Instance::new(sig.clone());
        inst.insert(r, vec![a, b]).unwrap();
        // R(x, y) -> ∃z S(y, z)
        let tgd = inclusion_dependency(&sig, r, &[1], s, &[0]);
        let (triggers, truncated) = active_triggers(&tgd, 0, &inst, usize::MAX);
        assert!(!truncated);
        assert_eq!(triggers.len(), 1);
        assert_eq!(triggers[0].tgd_index, 0);
        let matched = matched_body_facts(&tgd, &triggers[0].assignment);
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0].0, r);
    }

    #[test]
    fn trigger_inactive_when_head_witness_exists() {
        let (sig, r, s) = setup();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let c = vf.constant("c");
        let mut inst = Instance::new(sig.clone());
        inst.insert(r, vec![a, b]).unwrap();
        inst.insert(s, vec![b, c]).unwrap();
        let tgd = inclusion_dependency(&sig, r, &[1], s, &[0]);
        assert!(active_triggers(&tgd, 0, &inst, usize::MAX).0.is_empty());
    }

    #[test]
    fn multiple_triggers_for_multiple_matches() {
        let (sig, r, s) = setup();
        let mut vf = ValueFactory::new();
        let vals: Vec<_> = (0..3).map(|i| vf.constant(&format!("v{i}"))).collect();
        let mut inst = Instance::new(sig.clone());
        for &v in &vals {
            inst.insert(r, vec![v, v]).unwrap();
        }
        let tgd = inclusion_dependency(&sig, r, &[0], s, &[0]);
        assert_eq!(active_triggers(&tgd, 7, &inst, usize::MAX).0.len(), 3);
        // A limit of 2 truncates the enumeration and reports it.
        let (triggers, truncated) = active_triggers(&tgd, 7, &inst, 2);
        assert_eq!(triggers.len(), 2);
        assert!(truncated);
    }

    #[test]
    fn tgd_kernel_agrees_with_one_shot_helpers() {
        let (sig, r, s) = setup();
        let mut vf = ValueFactory::new();
        let vals: Vec<_> = (0..4).map(|i| vf.constant(&format!("v{i}"))).collect();
        let mut inst = Instance::new(sig.clone());
        for &v in &vals {
            inst.insert(r, vec![v, v]).unwrap();
        }
        inst.insert(s, vec![vals[0], vals[1]]).unwrap(); // witness for v0 only
        let tgd = inclusion_dependency(&sig, r, &[0], s, &[0]);
        let kernel = TgdKernel::new(&tgd);
        let (fast, fast_trunc) = kernel.active_triggers(3, &inst, usize::MAX);
        let (slow, slow_trunc) = active_triggers(&tgd, 3, &inst, usize::MAX);
        assert_eq!(fast_trunc, slow_trunc);
        assert_eq!(fast.len(), slow.len());
        assert_eq!(fast.len(), 3); // v1..v3 are active; v0 is head-satisfied
        for trigger in &fast {
            assert_eq!(trigger.tgd_index, 3);
            assert_eq!(
                kernel.head_satisfied(&inst, &trigger.assignment),
                head_satisfied(&tgd, &inst, &trigger.assignment)
            );
        }
    }

    #[test]
    fn head_satisfied_respects_exported_values() {
        let (sig, r, s) = setup();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let mut inst = Instance::new(sig.clone());
        inst.insert(r, vec![a, b]).unwrap();
        inst.insert(s, vec![a, a]).unwrap(); // witness for a, not for b
        let tgd = inclusion_dependency(&sig, r, &[1], s, &[0]);
        // The only trigger maps the exported variable to b, and S has no
        // fact with b in position 0, so the trigger is active.
        assert_eq!(active_triggers(&tgd, 0, &inst, usize::MAX).0.len(), 1);
    }

    #[test]
    fn assignment_lookup_by_binary_search() {
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let (x, y, z) = (
            VarId::from_index(0),
            VarId::from_index(4),
            VarId::from_index(9),
        );
        let assignment: TriggerAssignment = vec![(x, a), (y, b)];
        assert_eq!(assignment_get(&assignment, x), Some(a));
        assert_eq!(assignment_get(&assignment, y), Some(b));
        assert_eq!(assignment_get(&assignment, z), None);
    }
}
