//! Trigger enumeration for TGDs.
//!
//! A *trigger* for a TGD `δ` in an instance `I` is a homomorphism from the
//! body of `δ` into `I`; the trigger is *active* when it cannot be extended
//! to a homomorphism from the head into `I` (paper, Section 2). Firing a
//! dependency on an active trigger adds head facts with fresh nulls for the
//! existentially quantified variables.

use rbqa_common::{Instance, Value};
use rbqa_logic::homomorphism::{all_homomorphisms, find_homomorphism, Homomorphism};
use rbqa_logic::{ConjunctiveQuery, Tgd};
use rustc_hash::FxHashMap;

/// A trigger: the assignment of the TGD's body variables to instance values.
#[derive(Debug, Clone)]
pub struct Trigger {
    /// Index of the dependency in the caller's TGD list.
    pub tgd_index: usize,
    /// The body homomorphism.
    pub assignment: Homomorphism,
}

/// Builds a Boolean CQ whose atoms are the body of `tgd` (reusing the TGD's
/// variable pool so that variable identities line up).
pub fn body_query(tgd: &Tgd) -> ConjunctiveQuery {
    ConjunctiveQuery::new(tgd.vars().clone(), Vec::new(), tgd.body().to_vec())
}

/// Builds a Boolean CQ whose atoms are the head of `tgd`.
pub fn head_query(tgd: &Tgd) -> ConjunctiveQuery {
    ConjunctiveQuery::new(tgd.vars().clone(), Vec::new(), tgd.head().to_vec())
}

/// Whether a body assignment can be extended to the head of `tgd` inside
/// `instance` (i.e. whether the trigger is *inactive*).
pub fn head_satisfied(tgd: &Tgd, instance: &Instance, assignment: &Homomorphism) -> bool {
    // Seed the head search with the exported variables only.
    let mut seed: Homomorphism = FxHashMap::default();
    for v in tgd.exported_variables() {
        if let Some(val) = assignment.get(&v) {
            seed.insert(v, *val);
        }
    }
    find_homomorphism(&head_query(tgd), instance, &seed).is_some()
}

/// Enumerates the *active* triggers of `tgd` (identified by `tgd_index`) in
/// `instance`.
///
/// At most `limit` body homomorphisms are enumerated; the second component
/// of the result reports whether the enumeration was truncated (the chase
/// engine then treats the run as budget-exhausted rather than saturated).
/// Rules with many body atoms over large instances can have exponentially
/// many triggers, so an explicit cap is required to keep the engine
/// responsive on adversarial inputs (e.g. the naive cardinality
/// axiomatisation exercised by the ablation benchmark).
pub fn active_triggers(
    tgd: &Tgd,
    tgd_index: usize,
    instance: &Instance,
    limit: usize,
) -> (Vec<Trigger>, bool) {
    let body = body_query(tgd);
    let homomorphisms = all_homomorphisms(&body, instance, limit);
    let truncated = homomorphisms.len() >= limit;
    let triggers = homomorphisms
        .into_iter()
        .filter(|assignment| !head_satisfied(tgd, instance, assignment))
        .map(|assignment| Trigger {
            tgd_index,
            assignment,
        })
        .collect();
    (triggers, truncated)
}

/// The instance facts matched by the body of `tgd` under `assignment`
/// (used by the engine to compute derivation depths).
pub fn matched_body_facts(
    tgd: &Tgd,
    assignment: &Homomorphism,
) -> Vec<(rbqa_common::RelationId, Vec<Value>)> {
    tgd.body()
        .iter()
        .map(|atom| {
            let tuple = atom
                .instantiate(assignment)
                .expect("trigger assigns every body variable");
            (atom.relation(), tuple)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbqa_common::{Signature, ValueFactory};
    use rbqa_logic::constraints::tgd::inclusion_dependency;

    fn setup() -> (Signature, rbqa_common::RelationId, rbqa_common::RelationId) {
        let mut sig = Signature::new();
        let r = sig.add_relation("R", 2).unwrap();
        let s = sig.add_relation("S", 2).unwrap();
        (sig, r, s)
    }

    #[test]
    fn active_trigger_found_when_head_missing() {
        let (sig, r, s) = setup();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let mut inst = Instance::new(sig.clone());
        inst.insert(r, vec![a, b]).unwrap();
        // R(x, y) -> ∃z S(y, z)
        let tgd = inclusion_dependency(&sig, r, &[1], s, &[0]);
        let (triggers, truncated) = active_triggers(&tgd, 0, &inst, usize::MAX);
        assert!(!truncated);
        assert_eq!(triggers.len(), 1);
        assert_eq!(triggers[0].tgd_index, 0);
        let matched = matched_body_facts(&tgd, &triggers[0].assignment);
        assert_eq!(matched.len(), 1);
        assert_eq!(matched[0].0, r);
    }

    #[test]
    fn trigger_inactive_when_head_witness_exists() {
        let (sig, r, s) = setup();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let c = vf.constant("c");
        let mut inst = Instance::new(sig.clone());
        inst.insert(r, vec![a, b]).unwrap();
        inst.insert(s, vec![b, c]).unwrap();
        let tgd = inclusion_dependency(&sig, r, &[1], s, &[0]);
        assert!(active_triggers(&tgd, 0, &inst, usize::MAX).0.is_empty());
    }

    #[test]
    fn multiple_triggers_for_multiple_matches() {
        let (sig, r, s) = setup();
        let mut vf = ValueFactory::new();
        let vals: Vec<_> = (0..3).map(|i| vf.constant(&format!("v{i}"))).collect();
        let mut inst = Instance::new(sig.clone());
        for &v in &vals {
            inst.insert(r, vec![v, v]).unwrap();
        }
        let tgd = inclusion_dependency(&sig, r, &[0], s, &[0]);
        assert_eq!(active_triggers(&tgd, 7, &inst, usize::MAX).0.len(), 3);
        // A limit of 2 truncates the enumeration and reports it.
        let (triggers, truncated) = active_triggers(&tgd, 7, &inst, 2);
        assert_eq!(triggers.len(), 2);
        assert!(truncated);
    }

    #[test]
    fn head_satisfied_respects_exported_values() {
        let (sig, r, s) = setup();
        let mut vf = ValueFactory::new();
        let a = vf.constant("a");
        let b = vf.constant("b");
        let mut inst = Instance::new(sig.clone());
        inst.insert(r, vec![a, b]).unwrap();
        inst.insert(s, vec![a, a]).unwrap(); // witness for a, not for b
        let tgd = inclusion_dependency(&sig, r, &[1], s, &[0]);
        // The only trigger maps the exported variable to b, and S has no
        // fact with b in position 0, so the trigger is active.
        assert_eq!(active_triggers(&tgd, 0, &inst, usize::MAX).0.len(), 1);
    }
}
