//! Umbrella crate for the `rbqa` workspace.
//!
//! Re-exports the public API of all member crates so that examples, tests
//! and downstream users can depend on a single crate.
pub use rbqa_access as access;
pub use rbqa_chase as chase;
pub use rbqa_common as common;
pub use rbqa_containment as containment;
pub use rbqa_core as core;
pub use rbqa_engine as engine;
pub use rbqa_logic as logic;
pub use rbqa_service as service;
pub use rbqa_workloads as workloads;
