//! Umbrella crate for the `rbqa` workspace.
//!
//! Re-exports the public API of all member crates so that examples, tests
//! and downstream users can depend on a single crate. New code should go
//! through the [`prelude`]: the sanctioned entry point is the validating
//! request builder of [`rbqa_api`] (`service.request(catalog)...`), not
//! hand-assembled request structs.

pub use rbqa_access as access;
pub use rbqa_adapt as adapt;
pub use rbqa_api as api;
pub use rbqa_chase as chase;
pub use rbqa_common as common;
pub use rbqa_containment as containment;
pub use rbqa_core as core;
pub use rbqa_engine as engine;
pub use rbqa_logic as logic;
pub use rbqa_net as net;
pub use rbqa_obs as obs;
pub use rbqa_service as service;
pub use rbqa_workloads as workloads;

/// Everything a service client needs: schema construction, the query DSL,
/// the query service, and the validating request builder with its
/// structured errors.
pub mod prelude {
    pub use rbqa_access::{AccessBackend, AccessError, AccessMethod, Schema};
    pub use rbqa_api::{
        ApiError, ApiErrorCode, RequestBuilder, ServiceApi, WireServer, DISJUNCT_SEPARATOR,
    };
    pub use rbqa_chase::{Budget, ChaseEngine};
    pub use rbqa_common::{Signature, ValueFactory};
    pub use rbqa_core::{Answerability, AnswerabilityOptions};
    pub use rbqa_logic::parser::{parse_cq, parse_fd, parse_tgd};
    pub use rbqa_logic::{ConjunctiveQuery, CqBuilder, UnionOfConjunctiveQueries};
    pub use rbqa_net::{NetServer, ServerConfig, ServerHandle};
    pub use rbqa_service::{
        AnswerRequest, AnswerResponse, BackendSpec, CatalogId, ExecOptions, QueryService,
        RequestMode, ServiceError,
    };
}
