//! Integration tests for the `rbqa-service` decision/plan cache:
//!
//! * α-equivalent queries (renamed variables, permuted atoms) land on the
//!   same cache entry — the second request performs **zero** chase steps;
//! * a concurrent batch of identical requests runs the decision pipeline
//!   (and hence the chase) exactly once;
//! * `Execute` responses agree with direct plan execution and with the
//!   empirical `validate_plan` harness.

use rbqa::access::{AccessMethod, Schema};
use rbqa::api::{response_to_json, ServiceApi};
use rbqa::common::{Signature, ValueFactory};
use rbqa::engine::dataset::university_instance;
use rbqa::engine::validate_plan;
use rbqa::logic::constraints::tgd::inclusion_dependency;
use rbqa::logic::constraints::ConstraintSet;
use rbqa::logic::evaluate;
use rbqa::logic::parser::parse_cq;
use rbqa::service::{AnswerRequest, QueryService, RequestMode};

/// Example 1.1 schema; `ud_bound` controls the directory result bound.
fn university_schema(ud_bound: Option<usize>) -> (Schema, ValueFactory) {
    let mut sig = Signature::new();
    let prof = sig.add_relation("Prof", 3).unwrap();
    let udir = sig.add_relation("Udirectory", 3).unwrap();
    let mut constraints = ConstraintSet::new();
    constraints.push_tgd(inclusion_dependency(&sig, prof, &[0], udir, &[0]));
    let mut schema = Schema::with_parts(sig, constraints, vec![]).unwrap();
    schema
        .add_method(AccessMethod::unbounded("pr", prof, &[0]))
        .unwrap();
    let ud = match ud_bound {
        None => AccessMethod::unbounded("ud", udir, &[]),
        Some(k) => AccessMethod::bounded("ud", udir, &[], k),
    };
    schema.add_method(ud).unwrap();
    (schema, ValueFactory::new())
}

#[test]
fn alpha_equivalent_decide_requests_share_one_entry_and_skip_the_chase() {
    let service = QueryService::new();
    let (schema, values) = university_schema(Some(100));
    let id = service.register_catalog("uni", schema, values).unwrap();

    // Three spellings of the same query: original, renamed variables, and
    // renamed + permuted atoms (joined through a second atom to make the
    // permutation meaningful).
    let spellings = [
        "Q(n) :- Prof(i, n, '10000'), Udirectory(i, a, p)",
        "Q(name) :- Prof(pid, name, '10000'), Udirectory(pid, addr, ph)",
        "Q(y) :- Udirectory(u, v, w), Prof(u, y, '10000')",
    ];
    let mut fingerprints = Vec::new();
    for (k, text) in spellings.iter().enumerate() {
        let mut vf = service.catalog_values(id).unwrap();
        let mut sig = service.catalog_signature(id).unwrap();
        let query = parse_cq(text, &mut sig, &mut vf).unwrap();
        let response = service
            .submit(&AnswerRequest::decide(id, query, vf))
            .unwrap();
        // Only the very first spelling computes; the others must be pure
        // cache hits.
        assert_eq!(response.cache_hit, k > 0, "spelling {k}");
        fingerprints.push(response.fingerprint);
    }
    assert_eq!(fingerprints[0], fingerprints[1]);
    assert_eq!(fingerprints[0], fingerprints[2]);

    // Zero chase steps on the α-equivalent re-requests: exactly one
    // decision was ever computed, one entry exists, and the chase rounds
    // of that single decision were re-served (saved) twice.
    let metrics = service.metrics();
    assert_eq!(metrics.decisions_computed, 1);
    assert_eq!(metrics.cache_misses, 1);
    assert_eq!(metrics.chase_invocations_saved(), 2);
    assert_eq!(service.cache_len(), 1);
}

#[test]
fn ucq_request_round_trips_from_dsl_to_cached_decision_to_json() {
    // The acceptance path of the v1 API: DSL text → validated request →
    // decision → JSON response; the α-renamed, disjunct-permuted
    // resubmission is a pure cache hit with zero extra chase invocations.
    let service = QueryService::new();
    let (schema, values) = university_schema(Some(100));
    let id = service.register_catalog("uni", schema, values).unwrap();

    let first = service
        .request(id)
        .query_text("Q(n) :- Prof(i, n, '10000') || Q(a) :- Udirectory(i, a, p)")
        .decide()
        .submit()
        .unwrap();
    assert!(!first.cache_hit);
    assert!(!first.is_answerable());

    // α-renamed variables AND swapped disjunct order.
    let second = service
        .request(id)
        .query_text("Q(ad) :- Udirectory(row, ad, ph) || Q(nm) :- Prof(pid, nm, '10000')")
        .decide()
        .submit()
        .unwrap();
    assert!(second.cache_hit, "permuted α-variant union must hit");
    assert_eq!(first.fingerprint, second.fingerprint);

    // Zero extra chases: one decision ever computed, one cache entry.
    let metrics = service.metrics();
    assert_eq!(metrics.decisions_computed, 1);
    assert_eq!(metrics.cache_misses, 1);
    assert_eq!(metrics.chase_invocations_saved(), 1);
    assert_eq!(service.cache_len(), 1);

    // The wire layer serialises the response as one JSON object with the
    // stable field vocabulary.
    let values = service.catalog_values(id).unwrap();
    let json = response_to_json(&second, RequestMode::Decide, "uni", &values);
    assert!(json.contains("\"status\":\"ok\""), "{json}");
    assert!(json.contains("\"answerable\":\"no\""));
    assert!(json.contains("\"cache_hit\":true"));
    assert!(json.contains(&format!("\"fingerprint\":\"{}\"", second.fingerprint)));
}

#[test]
fn ucq_execute_unions_rows_across_disjunct_plans() {
    let service = QueryService::new();
    let (schema, mut values) = university_schema(None);
    let data = university_instance(schema.signature(), &mut values, 12, 3);
    let id = service.register_catalog("uni", schema, values).unwrap();
    service.attach_dataset(id, data.clone()).unwrap();

    let response = service
        .request(id)
        .query_text("Q(n) :- Prof(i, n, '10000') || Q(a) :- Udirectory(i, a, p)")
        .execute()
        .submit()
        .unwrap();
    assert!(response.is_answerable());
    assert_eq!(response.plans.len(), 2, "one plan per disjunct");

    // Rows are the union of the disjuncts' answers (sorted, deduplicated),
    // i.e. exactly UnionOfConjunctiveQueries::evaluate on the data.
    let mut vf = service.catalog_values(id).unwrap();
    let mut sig = service.catalog_signature(id).unwrap();
    let q1 = parse_cq("Q(n) :- Prof(i, n, '10000')", &mut sig, &mut vf).unwrap();
    let q2 = parse_cq("Q(a) :- Udirectory(i, a, p)", &mut sig, &mut vf).unwrap();
    let expected = rbqa::logic::UnionOfConjunctiveQueries::from_disjuncts(vec![q1, q2])
        .evaluate(&data)
        .unwrap();
    assert!(!expected.is_empty());
    assert_eq!(response.rows.as_deref(), Some(expected.as_slice()));
}

#[test]
fn distinct_queries_do_not_collide() {
    let service = QueryService::new();
    let (schema, values) = university_schema(Some(100));
    let id = service.register_catalog("uni", schema, values).unwrap();
    let texts = [
        "Q() :- Udirectory(i, a, p)",
        "Q(i) :- Udirectory(i, a, p)",
        "Q() :- Prof(i, n, s)",
        "Q() :- Prof(i, n, '10000')",
    ];
    let mut fingerprints = Vec::new();
    for text in texts {
        let mut vf = service.catalog_values(id).unwrap();
        let mut sig = service.catalog_signature(id).unwrap();
        let query = parse_cq(text, &mut sig, &mut vf).unwrap();
        let response = service
            .submit(&AnswerRequest::decide(id, query, vf))
            .unwrap();
        fingerprints.push(response.fingerprint);
    }
    fingerprints.sort();
    fingerprints.dedup();
    assert_eq!(fingerprints.len(), texts.len(), "fingerprints must differ");
    assert_eq!(service.metrics().decisions_computed, texts.len() as u64);
}

#[test]
fn concurrent_identical_batch_performs_exactly_one_chase() {
    let service = QueryService::new();
    let (schema, values) = university_schema(Some(100));
    let id = service.register_catalog("uni", schema, values).unwrap();

    let mut vf = service.catalog_values(id).unwrap();
    let mut sig = service.catalog_signature(id).unwrap();
    let query = parse_cq("Q() :- Udirectory(i, a, p)", &mut sig, &mut vf).unwrap();
    let requests: Vec<AnswerRequest> = (0..32)
        .map(|_| AnswerRequest::decide(id, query.clone(), vf.clone()))
        .collect();

    let responses = service.submit_batch(&requests);
    assert_eq!(responses.len(), 32);
    for response in &responses {
        let response = response.as_ref().unwrap();
        assert!(response.is_answerable());
    }
    let metrics = service.metrics();
    // The single-flight cache guarantees one pipeline run, no matter how
    // the 32 requests raced.
    assert_eq!(metrics.decisions_computed, 1);
    assert_eq!(metrics.cache_misses, 1);
    assert_eq!(
        metrics.chase_invocations_saved(),
        31,
        "31 requests must have been served without a chase"
    );
    assert_eq!(service.cache_len(), 1);
}

#[test]
fn execute_matches_direct_evaluation_and_validate_plan() {
    let service = QueryService::new();
    let (schema, mut values) = university_schema(None);
    let data = university_instance(schema.signature(), &mut values, 12, 3);
    let id = service
        .register_catalog("uni", schema.clone(), values)
        .unwrap();
    service.attach_dataset(id, data.clone()).unwrap();

    let mut vf = service.catalog_values(id).unwrap();
    let mut sig = service.catalog_signature(id).unwrap();
    let query = parse_cq("Q(n) :- Prof(i, n, '10000')", &mut sig, &mut vf).unwrap();
    let response = service
        .submit(&AnswerRequest::execute(id, query.clone(), vf))
        .unwrap();
    assert!(response.is_answerable());
    assert!(response.summary.has_plan);

    // The executed rows must be exactly the query's answer on the data.
    let mut rows = response.rows.clone().expect("Execute returns rows");
    let mut expected = evaluate(&query, &data).unwrap();
    rows.sort();
    rows.dedup();
    expected.sort();
    expected.dedup();
    assert_eq!(rows, expected);

    // And the plan the service executed passes the empirical validation
    // harness on the same instance (all selections, not just the
    // deterministic one used by Execute).
    let plan = response.plan().expect("Execute exposes the plan");
    let report = validate_plan(&schema, plan, &query, &[data], 2);
    assert!(report.is_valid(), "{:?}", report.discrepancy);

    // Execute responses also carry simulator metrics.
    let pm = response.plan_metrics.expect("plan metrics for Execute");
    assert!(pm.total_calls > 0);
    assert_eq!(service.metrics().executions, 1);
}

#[test]
fn independent_factory_requests_cannot_poison_the_shared_cache_entry() {
    // Fingerprints are ValueFactory-independent (constants are resolved to
    // strings), so a client that built its query on its *own* factory —
    // whose ConstIds disagree with the catalog's — shares a cache entry
    // with catalog-derived clients. The cached decision must therefore be
    // computed in the catalog's value space: whoever populates the entry,
    // every requester gets the same correct rows.
    let service = QueryService::new();
    let (schema, mut values) = university_schema(None);
    let data = university_instance(schema.signature(), &mut values, 12, 3);
    let expected_rows = {
        let mut vf = values.clone();
        let mut sig = schema.signature().clone();
        let q = parse_cq("Q(n) :- Prof(i, n, '10000')", &mut sig, &mut vf).unwrap();
        let mut rows = evaluate(&q, &data).unwrap();
        rows.sort();
        rows
    };
    assert!(!expected_rows.is_empty(), "scenario must have answers");
    let id = service.register_catalog("uni", schema, values).unwrap();
    service.attach_dataset(id, data).unwrap();

    // The independent client goes FIRST, so it populates the cache. Its
    // factory's ConstId for '10000' differs from the catalog's (shifted
    // by padding constants).
    let mut foreign_vf = ValueFactory::new();
    for k in 0..50 {
        foreign_vf.constant(&format!("padding{k}"));
    }
    let mut sig = service.catalog_signature(id).unwrap();
    let foreign_q = parse_cq("Q(n) :- Prof(i, n, '10000')", &mut sig, &mut foreign_vf).unwrap();
    let foreign = service
        .submit(&AnswerRequest::execute(id, foreign_q, foreign_vf))
        .unwrap();
    assert!(!foreign.cache_hit);

    // The catalog-derived client rides the entry the foreign client
    // populated…
    let mut vf = service.catalog_values(id).unwrap();
    let mut sig = service.catalog_signature(id).unwrap();
    let local_q = parse_cq("Q(n) :- Prof(i, n, '10000')", &mut sig, &mut vf).unwrap();
    let local = service
        .submit(&AnswerRequest::execute(id, local_q, vf))
        .unwrap();
    assert!(
        local.cache_hit,
        "same fingerprint despite distinct factories"
    );

    // …and BOTH observe the correct answer.
    let sorted = |rows: &Option<Vec<Vec<rbqa::common::Value>>>| {
        let mut rows = rows.clone().unwrap();
        rows.sort();
        rows
    };
    assert_eq!(sorted(&foreign.rows), expected_rows);
    assert_eq!(sorted(&local.rows), expected_rows);
    assert_eq!(service.metrics().decisions_computed, 1);
}

#[test]
fn execute_reuses_the_cached_plan_across_requests() {
    let service = QueryService::new();
    let (schema, mut values) = university_schema(None);
    let data = university_instance(schema.signature(), &mut values, 8, 11);
    let id = service.register_catalog("uni", schema, values).unwrap();
    service.attach_dataset(id, data).unwrap();

    let make_request = |text: &str| {
        let mut vf = service.catalog_values(id).unwrap();
        let mut sig = service.catalog_signature(id).unwrap();
        let query = parse_cq(text, &mut sig, &mut vf).unwrap();
        AnswerRequest::execute(id, query, vf)
    };
    let first = service
        .submit(&make_request("Q(n) :- Prof(i, n, '10000')"))
        .unwrap();
    // α-variant: synthesis (and the chase behind it) must not run again,
    // but execution still happens per request.
    let second = service
        .submit(&make_request("Q(nm) :- Prof(pid, nm, '10000')"))
        .unwrap();
    assert!(!first.cache_hit);
    assert!(second.cache_hit);
    assert_eq!(first.rows, second.rows);
    let metrics = service.metrics();
    assert_eq!(metrics.decisions_computed, 1);
    assert_eq!(metrics.executions, 2);
}
