//! End-to-end integration tests for every worked example of the paper,
//! exercised through the public API of the umbrella crate: scenario →
//! answerability decision → (where applicable) plan synthesis → execution on
//! simulated services → empirical validation.

use rbqa::access::TruncatingSelection;
use rbqa::core::{
    decide_monotone_answerability, Answerability, AnswerabilityOptions, ConstraintClass,
    SimplificationKind, Strategy,
};
use rbqa::engine::{university_instance, validate_plan, ServiceSimulator};
use rbqa::logic::evaluate;
use rbqa::workloads::scenarios;

fn default_options() -> AnswerabilityOptions {
    AnswerabilityOptions::default()
}

#[test]
fn example_1_2_salary_query_answerable_without_bounds() {
    let mut scenario = scenarios::university(None);
    let q1 = scenario.query("Q1_salary_names").unwrap().clone();
    let result = decide_monotone_answerability(
        &scenario.schema,
        &q1,
        &mut scenario.values,
        &default_options(),
    );
    assert_eq!(result.answerability, Answerability::Answerable);
    assert_eq!(result.strategy, Strategy::IdLinearization);
    assert_eq!(result.simplification, SimplificationKind::ExistenceCheck);
}

#[test]
fn example_1_3_salary_query_not_answerable_with_bound() {
    let mut scenario = scenarios::university(Some(100));
    let q1 = scenario.query("Q1_salary_names").unwrap().clone();
    let result = decide_monotone_answerability(
        &scenario.schema,
        &q1,
        &mut scenario.values,
        &default_options(),
    );
    assert_eq!(result.answerability, Answerability::NotAnswerable);
    assert!(result.containment.complete);
}

#[test]
fn example_1_4_existence_check_answerable_for_any_bound() {
    for bound in [1, 5, 100, 5000] {
        let mut scenario = scenarios::university(Some(bound));
        let q2 = scenario.query("Q2_directory_nonempty").unwrap().clone();
        let result = decide_monotone_answerability(
            &scenario.schema,
            &q2,
            &mut scenario.values,
            &default_options(),
        );
        assert_eq!(
            result.answerability,
            Answerability::Answerable,
            "bound {bound}"
        );
    }
}

#[test]
fn example_1_5_fd_makes_address_lookup_answerable() {
    let mut scenario = scenarios::university_fd();
    let q3 = scenario.query("Q3_address_of_id").unwrap().clone();
    let result = decide_monotone_answerability(
        &scenario.schema,
        &q3,
        &mut scenario.values,
        &default_options(),
    );
    assert_eq!(result.answerability, Answerability::Answerable);
    assert_eq!(result.constraint_class, ConstraintClass::FdsOnly);
    assert_eq!(result.simplification, SimplificationKind::Fd);

    let q3b = scenario.query("Q3b_phone_of_id").unwrap().clone();
    let result = decide_monotone_answerability(
        &scenario.schema,
        &q3b,
        &mut scenario.values,
        &default_options(),
    );
    assert_eq!(result.answerability, Answerability::NotAnswerable);
}

#[test]
fn example_6_1_choice_simplification_handles_tgds() {
    let mut scenario = scenarios::tgd_example_6_1();
    let q = scenario.query("Q_some_T").unwrap().clone();
    let result = decide_monotone_answerability(
        &scenario.schema,
        &q,
        &mut scenario.values,
        &default_options(),
    );
    assert_eq!(result.answerability, Answerability::Answerable);
    assert_eq!(result.simplification, SimplificationKind::Choice);
}

#[test]
fn paper_expectations_hold_across_all_scenarios() {
    for mut scenario in scenarios::all_scenarios() {
        let queries = scenario.queries.clone();
        for (name, query, expected) in queries {
            let Some(expected) = expected else { continue };
            let result = decide_monotone_answerability(
                &scenario.schema,
                &query,
                &mut scenario.values,
                &default_options(),
            );
            let got = match result.answerability {
                Answerability::Answerable => true,
                Answerability::NotAnswerable => false,
                Answerability::Unknown => {
                    panic!("{} / {name}: decision was inconclusive", scenario.name)
                }
            };
            assert_eq!(
                got, expected,
                "{} / {name}: paper expects answerable={expected}",
                scenario.name
            );
        }
    }
}

#[test]
fn example_1_2_plan_executes_completely_on_simulated_services() {
    let mut scenario = scenarios::university(None);
    let q1 = scenario.query("Q1_salary_names").unwrap().clone();
    let options = AnswerabilityOptions {
        synthesize_plan: true,
        crawl_rounds: 2,
        ..Default::default()
    };
    let result =
        decide_monotone_answerability(&scenario.schema, &q1, &mut scenario.values, &options);
    let plan = result.plan.expect("answerable query gets a plan");

    let data = university_instance(scenario.schema.signature(), &mut scenario.values, 25, 3);
    let expected = evaluate(&q1, &data).expect("example query is safe");
    let services = ServiceSimulator::new(scenario.schema.clone(), data.clone());
    let mut selection = TruncatingSelection::new();
    let (answers, metrics) = services.run_plan(&plan, &mut selection).unwrap();
    assert_eq!(answers, expected);
    assert!(metrics.total_calls > 0);

    let report = validate_plan(&scenario.schema, &plan, &q1, &[data], 3);
    assert!(report.is_valid(), "{:?}", report.discrepancy);
}

#[test]
fn example_2_1_boolean_plan_for_q2_is_selection_independent() {
    use rbqa::access::{AdversarialSelection, PlanBuilder, RaExpr};
    let mut scenario = scenarios::university(Some(1));
    let q2 = scenario.query("Q2_directory_nonempty").unwrap().clone();
    let plan = PlanBuilder::new()
        .access("T", "ud", RaExpr::unit(), vec![], vec![0, 1, 2])
        .middleware("T0", RaExpr::project(RaExpr::table("T"), vec![]))
        .returns("T0");
    let data = university_instance(scenario.schema.signature(), &mut scenario.values, 15, 9);
    let report = validate_plan(&scenario.schema, &plan, &q2, std::slice::from_ref(&data), 3);
    assert!(report.is_valid(), "{:?}", report.discrepancy);

    let services = ServiceSimulator::new(scenario.schema.clone(), data);
    let mut a = TruncatingSelection::new();
    let mut b = AdversarialSelection::new();
    let (out_a, _) = services.run_plan(&plan, &mut a).unwrap();
    let (out_b, _) = services.run_plan(&plan, &mut b).unwrap();
    assert_eq!(out_a, out_b);
}

#[test]
fn bio_and_movie_scenarios_follow_expectations() {
    let mut bio = scenarios::bio_services(5000);
    let q_point = bio.query("Q_compound_name_check").unwrap().clone();
    let result =
        decide_monotone_answerability(&bio.schema, &q_point, &mut bio.values, &default_options());
    assert_eq!(result.answerability, Answerability::Answerable);

    let q_all = bio.query("Q_all_compound_names").unwrap().clone();
    let result =
        decide_monotone_answerability(&bio.schema, &q_all, &mut bio.values, &default_options());
    assert_eq!(result.answerability, Answerability::NotAnswerable);

    let mut movies = scenarios::movie_services(10_000);
    let q_any = movies.query("Q_any_movie").unwrap().clone();
    let result = decide_monotone_answerability(
        &movies.schema,
        &q_any,
        &mut movies.values,
        &default_options(),
    );
    assert_eq!(result.answerability, Answerability::Answerable);
}
