//! Cache-discipline invariants: bounded eviction and warm-start
//! persistence, exercised from outside the service crate.
//!
//! * Property tests drive a size-weighted [`ShardedCache`] through random
//!   insert interleavings and random budgets: occupancy never exceeds the
//!   budget, the occupancy gauge always equals the sum of resident entry
//!   costs, and an evicted key recomputes exactly once on re-lookup.
//! * Threaded tests pin down the single-flight/eviction interaction: an
//!   in-flight computation survives arbitrary eviction pressure, and a
//!   panicking compute under that same pressure can never wedge a waiter.
//! * Service-level tests round-trip the decision cache through a snapshot
//!   file — a warm restart re-serves every decision without recomputing —
//!   and corrupt snapshots (truncated tail, flipped payload byte, bumped
//!   version) degrade to partial or cold starts, never to errors.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use rbqa::access::{AccessMethod, Schema};
use rbqa::common::{Signature, ValueFactory};
use rbqa::logic::constraints::tgd::inclusion_dependency;
use rbqa::logic::constraints::ConstraintSet;
use rbqa::logic::parser::parse_cq;
use rbqa::service::{
    AnswerRequest, CacheOutcome, Fingerprint, QueryService, ShardedCache, SNAPSHOT_VERSION,
};

fn fp(n: u128) -> Fingerprint {
    // Spread the shard index (top 64 bits) as well as the key.
    Fingerprint(n << 64 | n)
}

/// A cache of byte vectors where each entry costs its length.
fn sized_cache(shards: usize, budget: u64) -> ShardedCache<Vec<u8>> {
    ShardedCache::with_shards(shards)
        .with_cost_fn(Box::new(|v: &Vec<u8>| v.len()))
        .with_budget(Some(budget))
}

// --- eviction properties -------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random interleavings of differently-sized inserts against a random
    /// budget: the byte budget holds at *every* step, and the occupancy
    /// gauge stays consistent with the resident entries.
    #[test]
    fn occupancy_never_exceeds_budget(
        budget in 0u64..1500,
        ops in prop::collection::vec((0u8..40, 1usize..200), 1..60),
        shards in 1usize..5,
    ) {
        let cache = sized_cache(shards, budget);
        for &(key, cost) in &ops {
            let (value, outcome) = cache.get_or_compute(fp(key as u128 + 1), || vec![key; cost]);
            if outcome == CacheOutcome::Miss {
                prop_assert_eq!(value.len(), cost);
            }
            let stats = cache.stats();
            prop_assert!(
                stats.occupancy_bytes <= budget,
                "occupancy {} exceeds budget {budget}",
                stats.occupancy_bytes
            );
        }
        let resident: u64 = cache
            .ready_entries()
            .iter()
            .map(|(_, v)| v.len() as u64)
            .sum();
        let stats = cache.stats();
        prop_assert_eq!(stats.occupancy_bytes, resident);
        prop_assert_eq!(stats.entries as usize, cache.ready_entries().len());
        // Every byte ever evicted is accounted for.
        prop_assert!(stats.evictions == 0 || stats.bytes_evicted > 0);
    }

    /// After eviction pressure, a key that is no longer resident
    /// recomputes exactly once: the first re-lookup is a miss that runs
    /// the closure, the second is a pure hit that does not.
    #[test]
    fn evicted_key_recomputes_exactly_once(
        flood in prop::collection::vec(0u8..30, 10..50),
        cost in 10usize..40,
    ) {
        // Budget fits a handful of `cost`-sized entries.
        let cache = sized_cache(2, cost as u64 * 4);
        let probe = fp(1000);
        cache.get_or_compute(probe, || vec![0; cost]);
        for &key in &flood {
            cache.get_or_compute(fp(key as u128 + 1), || vec![key; cost]);
        }
        let computed = AtomicUsize::new(0);
        let lookup = || {
            cache
                .get_or_compute(probe, || {
                    computed.fetch_add(1, Ordering::Relaxed);
                    vec![0; cost]
                })
                .1
        };
        let first = lookup();
        let second = lookup();
        let expected = match first {
            // Still resident: neither lookup computes.
            CacheOutcome::Hit => 0,
            // Evicted: the first lookup recomputes, the second hits.
            CacheOutcome::Miss => 1,
            CacheOutcome::Coalesced => unreachable!("single thread cannot coalesce"),
        };
        prop_assert_eq!(computed.load(Ordering::Relaxed), expected);
        prop_assert_eq!(second, CacheOutcome::Hit);
        prop_assert!(cache.stats().occupancy_bytes <= cost as u64 * 4);
    }
}

// --- single-flight under eviction pressure -------------------------------

/// An in-flight computation is never an eviction victim: while one thread
/// sits inside the compute closure, other threads flood the cache far past
/// its budget; the in-flight key's waiters must still coalesce onto the
/// single computation.
#[test]
fn in_flight_entry_survives_eviction_pressure() {
    let cache = Arc::new(sized_cache(2, 64));
    let slow_key = fp(999);
    let computed = Arc::new(AtomicUsize::new(0));
    let gate = Arc::new(std::sync::Barrier::new(2));

    std::thread::scope(|scope| {
        let computer = {
            let (cache, computed, gate) = (cache.clone(), computed.clone(), gate.clone());
            scope.spawn(move || {
                cache.get_or_compute(slow_key, || {
                    gate.wait(); // flooders start only once we are in flight
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    computed.fetch_add(1, Ordering::Relaxed);
                    vec![7u8; 16]
                })
            })
        };
        gate.wait();
        // Far more bytes than the budget: every insert evicts.
        for i in 0..200u128 {
            cache.get_or_compute(fp(i + 1), || vec![1u8; 32]);
            assert!(cache.stats().occupancy_bytes <= 64);
        }
        // Late arrivals on the slow key must wait for the one computation,
        // not start their own.
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let (cache, computed) = (cache.clone(), computed.clone());
                scope.spawn(move || {
                    cache.get_or_compute(slow_key, || {
                        computed.fetch_add(1, Ordering::Relaxed);
                        vec![7u8; 16]
                    })
                })
            })
            .collect();
        let (value, outcome) = computer.join().unwrap();
        assert_eq!(outcome, CacheOutcome::Miss);
        assert_eq!(*value, vec![7u8; 16]);
        for waiter in waiters {
            let (value, _) = waiter.join().unwrap();
            assert_eq!(*value, vec![7u8; 16]);
        }
    });
    assert_eq!(
        computed.load(Ordering::Relaxed),
        1,
        "the in-flight computation ran exactly once despite eviction churn"
    );
}

/// Regression: a panicking compute under eviction pressure must not wedge
/// waiters on the same key. The panicking thread's in-flight marker is
/// removed, a waiter takes over the computation, and the cache keeps
/// honouring its budget throughout.
#[test]
fn panicking_compute_under_pressure_cannot_wedge_waiters() {
    let cache = Arc::new(sized_cache(2, 64));
    let key = fp(4242);
    let gate = Arc::new(std::sync::Barrier::new(3));

    std::thread::scope(|scope| {
        let panicker = {
            let (cache, gate) = (cache.clone(), gate.clone());
            scope.spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.get_or_compute(key, || {
                        gate.wait();
                        // Give waiters time to park on the in-flight entry.
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        panic!("compute failed");
                    })
                }));
                assert!(result.is_err());
            })
        };
        let waiter = {
            let (cache, gate) = (cache.clone(), gate.clone());
            scope.spawn(move || {
                gate.wait();
                cache.get_or_compute(key, || vec![9u8; 16])
            })
        };
        gate.wait();
        // Eviction churn while the panic and takeover play out.
        for i in 0..200u128 {
            cache.get_or_compute(fp(i + 1), || vec![1u8; 32]);
            assert!(cache.stats().occupancy_bytes <= 64);
        }
        panicker.join().unwrap();
        let (value, _) = waiter.join().unwrap();
        assert_eq!(*value, vec![9u8; 16], "waiter took over after the panic");
    });
    // The key is fully usable afterwards.
    let (value, _) = cache.get_or_compute(key, || vec![9u8; 16]);
    assert_eq!(*value, vec![9u8; 16]);
}

// --- snapshot persistence at the service level ---------------------------

/// Example 1.1 schema (result-bounded directory).
fn university_schema() -> (Schema, ValueFactory) {
    let mut sig = Signature::new();
    let prof = sig.add_relation("Prof", 3).unwrap();
    let udir = sig.add_relation("Udirectory", 3).unwrap();
    let mut constraints = ConstraintSet::new();
    constraints.push_tgd(inclusion_dependency(&sig, prof, &[0], udir, &[0]));
    let mut schema = Schema::with_parts(sig, constraints, vec![]).unwrap();
    schema
        .add_method(AccessMethod::unbounded("pr", prof, &[0]))
        .unwrap();
    schema
        .add_method(AccessMethod::bounded("ud", udir, &[], 100))
        .unwrap();
    (schema, ValueFactory::new())
}

const QUERIES: [&str; 3] = [
    "Q() :- Udirectory(i, a, p)",
    "Q(n) :- Prof(i, n, '10000')",
    "Q(n) :- Prof(i, n, '20000'), Udirectory(i, a, p)",
];

fn fresh_university_service() -> (QueryService, rbqa::service::CatalogId) {
    let service = QueryService::new();
    let (schema, values) = university_schema();
    let id = service.register_catalog("uni", schema, values).unwrap();
    (service, id)
}

fn decide(
    service: &QueryService,
    id: rbqa::service::CatalogId,
    text: &str,
) -> rbqa::service::AnswerResponse {
    let mut vf = service.catalog_values(id).unwrap();
    let mut sig = service.catalog_signature(id).unwrap();
    let query = parse_cq(text, &mut sig, &mut vf).unwrap();
    service
        .submit(&AnswerRequest::decide(id, query, vf))
        .unwrap()
}

fn snapshot_path(label: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "rbqa-cache-discipline-{}-{label}.snap",
        std::process::id()
    ))
}

/// Save → reload → identical hit behaviour: the restarted service serves
/// every decision from the snapshot with `decisions_computed` still zero,
/// and the decisions themselves are identical to the cold ones.
#[test]
fn snapshot_roundtrip_restarts_warm_without_recomputing() {
    let path = snapshot_path("roundtrip");
    let (cold, cold_id) = fresh_university_service();
    let cold_responses: Vec<_> = QUERIES.iter().map(|q| decide(&cold, cold_id, q)).collect();
    let saved = cold.save_snapshot(&path).unwrap();
    assert_eq!(saved.records, QUERIES.len());

    let (warm, warm_id) = fresh_university_service();
    let loaded = warm.load_snapshot(&path).unwrap();
    assert_eq!(loaded.records, QUERIES.len());
    assert_eq!(loaded.skipped, 0);
    assert_eq!(warm.warm_pending(), QUERIES.len());

    for (query, cold_response) in QUERIES.iter().zip(&cold_responses) {
        let response = decide(&warm, warm_id, query);
        assert!(response.cache_hit, "warm replay of `{query}` must hit");
        assert_eq!(response.fingerprint, cold_response.fingerprint);
        assert_eq!(response.summary, cold_response.summary);
        assert_eq!(response.plans.len(), cold_response.plans.len());
    }
    let metrics = warm.metrics();
    assert_eq!(
        metrics.decisions_computed, 0,
        "warm start must not re-chase"
    );
    assert_eq!(metrics.cache_warm_hits, QUERIES.len() as u64);
    // A second round is now plain cache hits, not warm decodes.
    decide(&warm, warm_id, QUERIES[0]);
    assert_eq!(warm.metrics().cache_warm_hits, QUERIES.len() as u64);
    let _ = std::fs::remove_file(&path);
}

/// Damaged snapshots load the surviving prefix record-by-record and are
/// never fatal: a truncated tail, a flipped payload byte, and a bumped
/// version header each still leave a service that answers correctly.
#[test]
fn corrupt_snapshots_degrade_to_partial_or_cold_starts() {
    let path = snapshot_path("corrupt");
    let (cold, cold_id) = fresh_university_service();
    let cold_responses: Vec<_> = QUERIES.iter().map(|q| decide(&cold, cold_id, q)).collect();
    cold.save_snapshot(&path).unwrap();
    let pristine = std::fs::read(&path).unwrap();

    type Corruptor = Box<dyn Fn(&mut Vec<u8>)>;
    let scenarios: [(&str, Corruptor); 3] = [
        (
            "truncated tail",
            Box::new(|bytes: &mut Vec<u8>| {
                let keep = bytes.len() - 5;
                bytes.truncate(keep);
            }),
        ),
        (
            "flipped payload byte",
            Box::new(|bytes: &mut Vec<u8>| {
                let last = bytes.len() - 1;
                bytes[last] ^= 0x40;
            }),
        ),
        (
            "bumped version header",
            Box::new(|bytes: &mut Vec<u8>| {
                bytes[8] = (SNAPSHOT_VERSION + 1) as u8;
            }),
        ),
    ];

    for (label, damage) in &scenarios {
        let mut bytes = pristine.clone();
        damage(&mut bytes);
        std::fs::write(&path, &bytes).unwrap();

        let (warm, warm_id) = fresh_university_service();
        let loaded = warm
            .load_snapshot(&path)
            .unwrap_or_else(|e| panic!("{label}: load must not fail: {e}"));
        assert!(
            loaded.records < QUERIES.len(),
            "{label}: at least one record must be lost (kept {})",
            loaded.records
        );
        // Whatever survived serves warm; whatever was lost recomputes —
        // and both agree with the cold decisions.
        for (query, cold_response) in QUERIES.iter().zip(&cold_responses) {
            let response = decide(&warm, warm_id, query);
            assert_eq!(
                response.summary, cold_response.summary,
                "{label}: `{query}`"
            );
        }
        let metrics = warm.metrics();
        assert_eq!(
            metrics.cache_warm_hits as usize, loaded.records,
            "{label}: every surviving record is a warm hit"
        );
        assert_eq!(
            metrics.decisions_computed as usize,
            QUERIES.len() - loaded.records,
            "{label}: only the lost records recompute"
        );
    }
    let _ = std::fs::remove_file(&path);
}
