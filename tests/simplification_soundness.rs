//! Cross-crate integration tests for the schema-simplification theorems:
//! decisions must be invariant under `ElimUB` (Proposition 3.3), invariant
//! under the *value* of result bounds for the classes covered by Sections 4
//! and 6, and consistent between a schema and its simplification.

use rbqa::access::{AccessMethod, Schema};
use rbqa::common::{Signature, ValueFactory};
use rbqa::core::{
    choice_simplification, decide_monotone_answerability, existence_check_simplification,
    fd_simplification, Answerability, AnswerabilityOptions,
};
use rbqa::logic::parser::parse_cq;
use rbqa::workloads::random::{RandomClass, RandomSchemaConfig};
use rbqa::workloads::scenarios;

fn decide(
    schema: &Schema,
    query: &rbqa::logic::ConjunctiveQuery,
    values: &mut ValueFactory,
) -> Answerability {
    decide_monotone_answerability(schema, query, values, &AnswerabilityOptions::default())
        .answerability
}

#[test]
fn elim_ub_does_not_change_decisions() {
    for bound in [1, 10, 100] {
        let mut scenario = scenarios::university(Some(bound));
        let relaxed = scenario.schema.eliminate_upper_bounds();
        for name in ["Q1_salary_names", "Q2_directory_nonempty"] {
            let query = scenario.query(name).unwrap().clone();
            let original = decide(&scenario.schema, &query, &mut scenario.values);
            let after = decide(&relaxed, &query, &mut scenario.values);
            assert_eq!(original, after, "ElimUB changed the verdict of {name}");
        }
    }
}

#[test]
fn result_bound_value_is_irrelevant_for_id_schemas() {
    // Theorem 4.2 / choice simplifiability: only the existence of a bound
    // matters, never its value.
    let mut verdicts = Vec::new();
    for bound in [1, 2, 7, 100, 5000] {
        let mut scenario = scenarios::university(Some(bound));
        let q1 = scenario.query("Q1_salary_names").unwrap().clone();
        let q2 = scenario.query("Q2_directory_nonempty").unwrap().clone();
        verdicts.push((
            decide(&scenario.schema, &q1, &mut scenario.values),
            decide(&scenario.schema, &q2, &mut scenario.values),
        ));
    }
    assert!(verdicts.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(verdicts[0].0, Answerability::NotAnswerable);
    assert_eq!(verdicts[0].1, Answerability::Answerable);
}

#[test]
fn result_bound_value_is_irrelevant_for_fd_schemas() {
    for bound in [1, 3, 50, 1000] {
        let mut sig = Signature::new();
        let udir = sig.add_relation("Udirectory", 3).unwrap();
        let mut constraints = rbqa::logic::constraints::ConstraintSet::new();
        constraints.push_fd(rbqa::logic::Fd::new(udir, vec![0], 1));
        let mut schema = Schema::with_parts(sig, constraints, vec![]).unwrap();
        schema
            .add_method(AccessMethod::bounded("ud2", udir, &[0], bound))
            .unwrap();
        let mut values = ValueFactory::new();
        let mut parse_sig = schema.signature().clone();
        let q = parse_cq(
            "Q() :- Udirectory('12345', 'mainst', p)",
            &mut parse_sig,
            &mut values,
        )
        .unwrap();
        assert_eq!(
            decide(&schema, &q, &mut values),
            Answerability::Answerable,
            "bound {bound}"
        );
    }
}

#[test]
fn existence_check_simplification_preserves_decisions_on_id_schemas() {
    // Theorem 4.2 both ways: a query is answerable over an ID schema iff it
    // is answerable over its existence-check simplification (the
    // simplification has no result bounds at all).
    for bound in [1, 100] {
        let mut scenario = scenarios::university(Some(bound));
        let simplified = existence_check_simplification(&scenario.schema);
        assert!(!simplified.has_result_bounds());
        for name in ["Q1_salary_names", "Q2_directory_nonempty"] {
            let query = scenario.query(name).unwrap().clone();
            let original = decide(&scenario.schema, &query, &mut scenario.values);
            let over_simplified = decide(&simplified, &query, &mut scenario.values);
            assert_eq!(
                original, over_simplified,
                "existence-check simplification changed the verdict of {name} (bound {bound})"
            );
        }
    }
}

#[test]
fn fd_simplification_preserves_decisions_on_fd_schemas() {
    let mut scenario = scenarios::university_fd();
    let simplified = fd_simplification(&scenario.schema);
    assert!(!simplified.has_result_bounds());
    for name in ["Q3_address_of_id", "Q3b_phone_of_id"] {
        let query = scenario.query(name).unwrap().clone();
        let original = decide(&scenario.schema, &query, &mut scenario.values);
        let over_simplified = decide(&simplified, &query, &mut scenario.values);
        assert_eq!(
            original, over_simplified,
            "FD simplification changed the verdict of {name}"
        );
    }
}

#[test]
fn choice_simplification_preserves_decisions_on_tgd_schema() {
    let mut scenario = scenarios::tgd_example_6_1();
    let simplified = choice_simplification(&scenario.schema);
    let query = scenario.query("Q_some_T").unwrap().clone();
    let original = decide(&scenario.schema, &query, &mut scenario.values);
    let over_simplified = decide(&simplified, &query, &mut scenario.values);
    assert_eq!(original, over_simplified);
    assert_eq!(original, Answerability::Answerable);
}

#[test]
fn decisions_on_random_id_workloads_are_bound_invariant() {
    // Sweep the bound value over the same random ID schema: every chain
    // query must keep its verdict (Theorem 4.2).
    for seed in 0..3u64 {
        let mut reference: Option<Vec<Answerability>> = None;
        for bound in [1usize, 50, 2000] {
            let config = RandomSchemaConfig {
                relations: 4,
                dependencies: 4,
                class: RandomClass::Ids { width: 1 },
                result_bound: bound,
                bounded_percent: 100,
                ..Default::default()
            };
            let mut workload = config.generate(seed);
            let verdicts: Vec<Answerability> = workload
                .queries
                .clone()
                .iter()
                .map(|q| decide(&workload.schema, q, &mut workload.values))
                .collect();
            match &reference {
                None => reference = Some(verdicts),
                Some(expected) => assert_eq!(expected, &verdicts, "seed {seed}, bound {bound}"),
            }
        }
    }
}

#[test]
fn unknown_is_never_reported_for_complete_classes_on_small_workloads() {
    // FDs and (bounded-width) IDs have complete procedures: on small random
    // workloads the pipeline must always reach a decision.
    for (seed, class) in [(1u64, RandomClass::Fds), (2, RandomClass::Ids { width: 1 })] {
        let config = RandomSchemaConfig {
            relations: 3,
            dependencies: 3,
            class,
            ..Default::default()
        };
        let mut workload = config.generate(seed);
        for q in workload.queries.clone() {
            let verdict = decide(&workload.schema, &q, &mut workload.values);
            assert_ne!(verdict, Answerability::Unknown);
        }
    }
}
