//! Differential property test: the compiled homomorphism kernel (match
//! programs over dense bindings and flat posting-list storage) is
//! equivalent to the retained reference backtracking search.
//!
//! For random conjunctive queries (random atoms over R/2, S/2, T/1 mixing
//! variables, repeated variables and constants) and random instances, both
//! kernels must enumerate **identical homomorphism sets** — same
//! assignments, compared as canonicalised sorted sets — both unseeded and
//! under random partial seed assignments. Together with
//! `tests/chase_differential.rs` (which runs the chase differential suite
//! on top of the same storage and kernel) this is the evidence that the
//! kernel rewrite preserves matching semantics.

use proptest::prelude::*;
use rbqa::common::{Instance, Signature, Value, ValueFactory};
use rbqa::logic::homomorphism::{self, reference, Homomorphism};
use rbqa::logic::{ConjunctiveQuery, CqBuilder, Term, VarId};

/// A small fixed signature: R/2, S/2, T/1.
fn signature() -> (
    Signature,
    rbqa::common::RelationId,
    rbqa::common::RelationId,
    rbqa::common::RelationId,
) {
    let mut sig = Signature::new();
    let r = sig.add_relation("R", 2).unwrap();
    let s = sig.add_relation("S", 2).unwrap();
    let t = sig.add_relation("T", 1).unwrap();
    (sig, r, s, t)
}

fn build_instance(
    pairs_r: &[(u8, u8)],
    pairs_s: &[(u8, u8)],
    singles_t: &[u8],
) -> (Instance, ValueFactory) {
    let (sig, r, s, t) = signature();
    let mut vf = ValueFactory::new();
    let mut inst = Instance::new(sig);
    let val = |vf: &mut ValueFactory, x: u8| vf.constant(&format!("v{x}"));
    for (a, b) in pairs_r {
        let (a, b) = (val(&mut vf, *a), val(&mut vf, *b));
        inst.insert(r, vec![a, b]).unwrap();
    }
    for (a, b) in pairs_s {
        let (a, b) = (val(&mut vf, *a), val(&mut vf, *b));
        inst.insert(s, vec![a, b]).unwrap();
    }
    for a in singles_t {
        let a = val(&mut vf, *a);
        inst.insert(t, vec![a]).unwrap();
    }
    (inst, vf)
}

/// Interprets a term spec: 0..4 are variables x0..x3, 4..7 are the
/// constants v0..v2 (shared with the instance's value factory).
fn term_of(spec: u8, builder: &mut CqBuilder, vf: &mut ValueFactory) -> Term {
    match spec % 7 {
        v @ 0..=3 => builder.var(&format!("x{v}")).into(),
        c => Term::Const(vf.constant(&format!("v{}", c - 4))),
    }
}

/// Builds a random Boolean CQ from generated atom specs. Every query keeps
/// variable ids aligned with `x0..x3` so seeds can reference them.
fn build_query(specs: &[(u8, u8, u8)], vf: &mut ValueFactory) -> (ConjunctiveQuery, Vec<VarId>) {
    let (_, r, s, t) = signature();
    let mut builder = CqBuilder::new();
    // Pre-declare the variable pool so VarIds are stable across queries.
    let vars: Vec<VarId> = (0..4).map(|v| builder.var(&format!("x{v}"))).collect();
    for (kind, a, b) in specs {
        let ta = term_of(*a, &mut builder, vf);
        let tb = term_of(*b, &mut builder, vf);
        match kind % 3 {
            0 => builder.atom(r, vec![ta, tb]),
            1 => builder.atom(s, vec![ta, tb]),
            _ => builder.atom(t, vec![ta]),
        };
    }
    (builder.build(), vars)
}

/// Canonicalises a homomorphism set for comparison.
fn canonical(homs: Vec<Homomorphism>) -> Vec<Vec<(VarId, Value)>> {
    let mut keys: Vec<Vec<(VarId, Value)>> = homs
        .into_iter()
        .map(|h| {
            let mut pairs: Vec<(VarId, Value)> = h.into_iter().collect();
            pairs.sort_unstable();
            pairs
        })
        .collect();
    keys.sort();
    keys.dedup();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Unseeded enumeration: identical homomorphism sets on random CQs and
    /// instances, and agreeing existence checks.
    #[test]
    fn kernels_enumerate_identical_homomorphism_sets(
        pairs_r in prop::collection::vec((0u8..5, 0u8..5), 0..10),
        pairs_s in prop::collection::vec((0u8..5, 0u8..5), 0..10),
        singles_t in prop::collection::vec(0u8..5, 0..5),
        specs in prop::collection::vec((0u8..3, 0u8..7, 0u8..7), 1..5),
    ) {
        let (inst, mut vf) = build_instance(&pairs_r, &pairs_s, &singles_t);
        let (query, _) = build_query(&specs, &mut vf);

        let compiled = canonical(homomorphism::all_homomorphisms(&query, &inst, usize::MAX));
        let baseline = canonical(reference::all_homomorphisms(&query, &inst, usize::MAX));
        prop_assert_eq!(
            &compiled,
            &baseline,
            "kernels disagree on {} over\n{}",
            query.display(inst.signature()),
            inst.dump()
        );
        prop_assert_eq!(homomorphism::holds(&query, &inst), !baseline.is_empty());
        prop_assert_eq!(
            homomorphism::find_homomorphism(&query, &inst, &Homomorphism::default()).is_some(),
            !baseline.is_empty()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Seeded enumeration (the semi-naive chase's entry point): identical
    /// sets when some variables are pre-assigned — including seeds naming
    /// values absent from the instance.
    #[test]
    fn kernels_agree_under_seed_assignments(
        pairs_r in prop::collection::vec((0u8..4, 0u8..4), 0..8),
        pairs_s in prop::collection::vec((0u8..4, 0u8..4), 0..8),
        specs in prop::collection::vec((0u8..3, 0u8..7, 0u8..7), 1..4),
        seed_spec in prop::collection::vec((0u8..4, 0u8..6), 0..3),
    ) {
        let (inst, mut vf) = build_instance(&pairs_r, &pairs_s, &[]);
        let (query, vars) = build_query(&specs, &mut vf);

        // Random partial seed over x0..x3; value v5 never occurs in the
        // instance, exercising the no-match path.
        let mut seed = Homomorphism::default();
        for (var, val) in &seed_spec {
            seed.insert(vars[*var as usize % 4], vf.constant(&format!("v{val}")));
        }

        let compiled =
            canonical(homomorphism::all_homomorphisms_seeded(&query, &inst, &seed, usize::MAX));
        let baseline =
            canonical(reference::all_homomorphisms_seeded(&query, &inst, &seed, usize::MAX));
        prop_assert_eq!(
            &compiled,
            &baseline,
            "seeded kernels disagree on {} over\n{}",
            query.display(inst.signature()),
            inst.dump()
        );
        prop_assert_eq!(
            homomorphism::find_homomorphism(&query, &inst, &seed).is_some(),
            !baseline.is_empty()
        );
    }
}
