//! Integration tests for the structured error taxonomy of the v1 API:
//! every failure mode a client can trigger surfaces as an `ApiError` with
//! a stable machine-readable code — unknown catalogs, arity-mismatched
//! atoms, unbound answer variables, degenerate unions — and decision-side
//! `Unknown` verdicts (budget exhaustion) surface through the response,
//! not as errors.

use rbqa::prelude::*;

fn university(bound: Option<usize>) -> (Schema, ValueFactory) {
    let mut sig = Signature::new();
    let prof = sig.add_relation("Prof", 3).unwrap();
    let udir = sig.add_relation("Udirectory", 3).unwrap();
    let mut values = ValueFactory::new();
    let mut parse_sig = sig.clone();
    let tau = parse_tgd(
        "Prof(i, n, s) -> Udirectory(i, a, p)",
        &mut parse_sig,
        &mut values,
    )
    .unwrap();
    let mut constraints = rbqa::logic::ConstraintSet::new();
    constraints.push_tgd(tau);
    let mut schema = Schema::with_parts(sig, constraints, vec![]).unwrap();
    schema
        .add_method(AccessMethod::unbounded("pr", prof, &[0]))
        .unwrap();
    let ud = match bound {
        None => AccessMethod::unbounded("ud", udir, &[]),
        Some(k) => AccessMethod::bounded("ud", udir, &[], k),
    };
    schema.add_method(ud).unwrap();
    (schema, values)
}

fn service_with_catalog() -> (QueryService, CatalogId) {
    let service = QueryService::new();
    let (schema, values) = university(Some(100));
    let id = service.register_catalog("uni", schema, values).unwrap();
    (service, id)
}

#[test]
fn unknown_catalog_by_id_and_name() {
    let service = QueryService::new();
    let err = service
        .request(CatalogId::from_index(7))
        .query_text("Q() :- R(x)")
        .submit()
        .unwrap_err();
    assert_eq!(err.code, ApiErrorCode::UnknownCatalog);
    assert_eq!(err.code.as_str(), "UNKNOWN_CATALOG");

    let err = service
        .request_named("missing")
        .err()
        .expect("unknown name is an error");
    assert_eq!(err.code, ApiErrorCode::UnknownCatalog);
    assert!(err.detail.contains("missing"));
}

#[test]
fn arity_mismatched_atom_is_rejected_at_build_time() {
    let (service, id) = service_with_catalog();
    // Text path: Prof is declared at arity 3.
    let err = service
        .request(id)
        .query_text("Q() :- Prof(x, y)")
        .build()
        .unwrap_err();
    assert_eq!(err.code, ApiErrorCode::ArityMismatch);

    // Hand-built path: an atom with the wrong argument count never reaches
    // the decision pipeline.
    let mut b = CqBuilder::new();
    let x = b.var("x");
    let bad = b
        .atom(rbqa::common::RelationId::from_index(0), vec![x.into()])
        .build();
    let err = service.request(id).query(bad).submit().unwrap_err();
    assert_eq!(err.code, ApiErrorCode::ArityMismatch);
    assert!(err.detail.contains("Prof"), "{}", err.detail);
}

#[test]
fn unbound_free_variable_is_rejected() {
    let (service, id) = service_with_catalog();
    // The parser already rejects unsafe queries in text form…
    let err = service
        .request(id)
        .query_text("Q(z) :- Prof(i, n, s)")
        .build()
        .unwrap_err();
    assert_eq!(err.code, ApiErrorCode::ParseError);

    // …and the builder catches hand-built queries that bypass the parser.
    let mut b = CqBuilder::new();
    let x = b.var("x");
    let z = b.var("z");
    let unbound = b
        .free(z)
        .atom(
            rbqa::common::RelationId::from_index(0),
            vec![x.into(), x.into(), x.into()],
        )
        .build();
    let err = service.request(id).query(unbound).submit().unwrap_err();
    assert_eq!(err.code, ApiErrorCode::UnboundFreeVariable);
    assert!(err.detail.contains('z'), "{}", err.detail);
}

#[test]
fn degenerate_unions_are_rejected() {
    let (service, id) = service_with_catalog();
    let err = service.request(id).build().unwrap_err();
    assert_eq!(err.code, ApiErrorCode::EmptyUnion);

    let err = service
        .request(id)
        .query_text("Q(n) :- Prof(i, n, s) || Q() :- Udirectory(i, a, p)")
        .build()
        .unwrap_err();
    assert_eq!(err.code, ApiErrorCode::UnionArityMismatch);
}

#[test]
fn execute_without_dataset_and_without_plan_have_distinct_codes() {
    let (service, id) = service_with_catalog();
    // Not answerable → no plan set to execute.
    let err = service
        .request(id)
        .query_text("Q(n) :- Prof(i, n, '10000')")
        .execute()
        .submit()
        .unwrap_err();
    assert_eq!(err.code, ApiErrorCode::NoPlan);

    // Answerable, but the catalog has no dataset attached.
    let err = service
        .request(id)
        .query_text("Q() :- Udirectory(i, a, p)")
        .execute()
        .submit()
        .unwrap_err();
    assert_eq!(err.code, ApiErrorCode::NoDataset);
}

#[test]
fn budget_exhausted_unknown_surfaces_through_the_response() {
    // A starved budget stops the chase before saturation; the verdict is
    // `Unknown` and is reported through the response summary (with
    // `complete == false`), not as an error — the request itself was valid.
    let (service, id) = service_with_catalog();
    let starved = Budget::small()
        .with_max_facts(2)
        .with_max_rounds(1)
        .with_max_depth(1)
        .with_max_nulls(1);
    let response = service
        .request(id)
        .query_text("Q(n) :- Prof(i, n, '10000'), Udirectory(i, a, p)")
        .with_budget(starved)
        .decide()
        .submit()
        .expect("a starved budget is not a request error");
    assert!(response.is_unknown(), "summary: {:?}", response.summary);
    assert!(!response.summary.complete);

    // The same query under a generous budget is decided definitively —
    // and cached separately (the budget is part of the fingerprint).
    let decided = service
        .request(id)
        .query_text("Q(n) :- Prof(i, n, '10000'), Udirectory(i, a, p)")
        .decide()
        .submit()
        .unwrap();
    assert!(!decided.cache_hit, "different options, different entry");
    assert!(!decided.is_unknown());
    assert!(decided.summary.complete);
    assert_ne!(response.fingerprint, decided.fingerprint);
}

#[test]
fn exec_backends_agree_and_budgets_fail_fast_through_the_api() {
    let service = QueryService::new();
    let (schema, mut values) = university(None);
    let sig = schema.signature().clone();
    let prof = sig.require("Prof").unwrap();
    let udir = sig.require("Udirectory").unwrap();
    let mut data = rbqa::common::Instance::new(sig);
    for i in 0..6 {
        let id = values.constant(&format!("id{i}"));
        let name = values.constant(&format!("name{i}"));
        let salary = values.constant("10000");
        let addr = values.constant(&format!("addr{i}"));
        let phone = values.constant(&format!("phone{i}"));
        data.insert(prof, vec![id, name, salary]).unwrap();
        data.insert(udir, vec![id, addr, phone]).unwrap();
    }
    let id = service.register_catalog("uni", schema, values).unwrap();
    service.attach_dataset(id, data).unwrap();

    let run = |backend: Option<BackendSpec>| {
        let mut builder = service
            .request(id)
            .query_text("Q(n) :- Prof(i, n, '10000')")
            .execute();
        if let Some(b) = backend {
            builder = builder.backend(b);
        }
        builder.submit().unwrap()
    };
    let default = run(None);
    let sharded = run(Some(BackendSpec::Sharded { shards: 3 }));
    let remote = run(Some(BackendSpec::SimulatedRemote {
        seed: 5,
        latency_micros: 120,
        fault_rate_pct: 0,
        transient: false,
    }));
    assert_eq!(default.rows, sharded.rows, "sharded rows match in-memory");
    assert_eq!(default.rows, remote.rows, "remote rows match in-memory");
    assert_ne!(
        default.fingerprint, sharded.fingerprint,
        "backend choice separates cache entries"
    );
    let metrics = remote.plan_metrics.as_ref().unwrap();
    assert!(metrics.latency_micros > 0, "remote latency is accounted");
    assert_eq!(default.plan_metrics.as_ref().unwrap().latency_micros, 0);

    // An over-quota Execute fails fast with the stable code instead of
    // returning partial rows.
    let err = service
        .request(id)
        .query_text("Q(n) :- Prof(i, n, '10000')")
        .execute()
        .call_budget(2)
        .submit()
        .unwrap_err();
    assert_eq!(err.code, ApiErrorCode::BudgetExhausted);
    assert_eq!(err.code.as_str(), "BUDGET_EXHAUSTED");

    // The budget caps the whole request: a union whose first disjunct
    // alone would fit must still exhaust once the second disjunct's plan
    // pushes the request past the cap.
    let single_calls = service
        .request(id)
        .query_text("Q(n) :- Prof(i, n, '10000')")
        .execute()
        .submit()
        .unwrap()
        .plan_metrics
        .unwrap()
        .total_calls;
    let err = service
        .request(id)
        .query_text("Q(n) :- Prof(i, n, '10000') || Q(a) :- Udirectory(i, a, p)")
        .execute()
        .call_budget(single_calls + 1)
        .submit()
        .unwrap_err();
    assert_eq!(err.code, ApiErrorCode::BudgetExhausted);

    // Exec options leave Decide fingerprints alone: the same decide
    // request with and without a backend override is one cache entry.
    let plain = service
        .request(id)
        .query_text("Q(n) :- Prof(i, n, '10000')")
        .submit()
        .unwrap();
    let with_backend = service
        .request(id)
        .query_text("Q(n) :- Prof(i, n, '10000')")
        .backend(BackendSpec::Sharded { shards: 2 })
        .submit()
        .unwrap();
    assert_eq!(plain.fingerprint, with_backend.fingerprint);
    assert!(with_backend.cache_hit);
}

#[test]
fn duplicate_catalog_registration_is_reported() {
    let (service, _) = service_with_catalog();
    let (schema, values) = university(Some(100));
    let err: ApiError = service
        .register_catalog("uni", schema, values)
        .unwrap_err()
        .into();
    assert_eq!(err.code, ApiErrorCode::DuplicateCatalog);
}
