//! Differential property test: adaptive execution (`rbqa-adapt`) is
//! row-equivalent to naive execution.
//!
//! For random university instances, random union shapes (one to three
//! salary-crawl disjuncts, duplicates included so the structural
//! short-circuit fires) and every backend family — in-memory instance,
//! sharded federations of 1..=4 shards, the fault-injecting simulated
//! remote (with retries), and a recorded-trace replay — the adaptive
//! executor must return exactly the naive row set for every disjunct
//! where both succeed. Failures may only ever tilt in adaptive's favour:
//! the window cache lets adaptive fit inside a call budget the naive run
//! exhausts (that asymmetry is the feature), while the reverse direction
//! — adaptive failing where naive succeeded, or any row divergence — is
//! a bug, and `exec.adaptive validate` must never report a structured
//! [`PlanError::AdaptiveMismatch`]. A final case drives a deadline abort
//! mid-schedule: with several commutable accesses ready to reorder, an
//! expired deadline must surface as `DeadlineExceeded`, not as a
//! mismatch or a partial row set.

use std::time::Duration;

use proptest::prelude::*;
use rbqa::access::plan::{execute_with_backend, PlanError};
use rbqa::access::{
    Condition, InstanceBackend, Plan, PlanBuilder, RaExpr, RecordingBackend, RetryPolicy,
};
use rbqa::adapt::{execute_plan_adaptive, AdaptiveMode, AdaptiveWindow};
use rbqa::common::ValueFactory;
use rbqa::engine::{university_instance, BackendSpec, ExecOptions, ServiceSimulator};
use rbqa::workloads::scenarios;

const SALARIES: [&str; 3] = ["10000", "20000", "30000"];

/// The Example 1.2 crawl parameterised by salary: list the directory,
/// look every professor up by id, filter, return names. `"30000"` never
/// occurs in the generated data, so that pick yields an empty disjunct.
fn salary_crawl(values: &mut ValueFactory, salary: &str) -> Plan {
    let salary = values.constant(salary);
    PlanBuilder::new()
        .access("ids", "ud", RaExpr::unit(), vec![], vec![0])
        .access("profs", "pr", RaExpr::table("ids"), vec![0], vec![0, 1, 2])
        .middleware(
            "matching",
            RaExpr::select(RaExpr::table("profs"), Condition::eq_const(2, salary)),
        )
        .middleware("names", RaExpr::project(RaExpr::table("matching"), vec![1]))
        .returns("names")
}

fn backend_for(pick: usize) -> BackendSpec {
    match pick {
        0 => BackendSpec::Instance,
        1..=4 => BackendSpec::Sharded { shards: pick },
        _ => BackendSpec::SimulatedRemote {
            seed: 23,
            latency_micros: 40,
            fault_rate_pct: 15,
            transient: true,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Naive/adaptive parity over every simulator backend, including
    /// degraded unions where individual disjuncts fail (injected faults,
    /// exhausted budgets) while the rest keep their rows.
    #[test]
    fn adaptive_matches_naive_across_backends_and_unions(
        n in 5usize..40,
        data_seed in 0u64..200,
        backend_pick in 0usize..6,
        budget_pick in 0usize..3,
        salary_picks in proptest::collection::vec(0usize..3, 1..4),
    ) {
        let mut scenario = scenarios::university(None);
        let plans: Vec<Plan> = salary_picks
            .iter()
            .map(|&pick| salary_crawl(&mut scenario.values, SALARIES[pick]))
            .collect();
        let plan_refs: Vec<&Plan> = plans.iter().collect();
        let data = university_instance(
            scenario.schema.signature(),
            &mut scenario.values,
            n,
            data_seed,
        );
        let simulator = ServiceSimulator::new(scenario.schema.clone(), data);

        let mut exec = ExecOptions::with_backend(backend_for(backend_pick));
        exec.call_budget = [None, Some(10), Some(60)][budget_pick];
        if backend_pick == 5 {
            exec.retry = Some(RetryPolicy::with_retries(2));
        }

        let naive = simulator.run_plans_exec_results(&plan_refs, &exec).unwrap();
        exec.adaptive = AdaptiveMode::On;
        let adaptive = simulator.run_plans_exec_results(&plan_refs, &exec).unwrap();
        for (index, (n_res, a_res)) in naive.iter().zip(&adaptive).enumerate() {
            match (n_res, a_res) {
                (Ok((n_rows, _)), Ok((a_rows, _))) => prop_assert_eq!(
                    n_rows, a_rows,
                    "disjunct {} rows diverged", index
                ),
                (Ok(_), Err(e)) => prop_assert!(
                    false,
                    "disjunct {} failed only under adaptive execution: {}", index, e
                ),
                // Naive-only failure (a budget the cache dodged) and
                // shared failure (same deterministic fault coin) are both
                // legitimate.
                (Err(_), _) => {}
            }
        }

        // The built-in differential: validate mode re-runs both executors
        // on fresh windows and must never report a structured mismatch.
        exec.adaptive = AdaptiveMode::Validate;
        let validated = simulator.run_plans_exec_results(&plan_refs, &exec).unwrap();
        for result in &validated {
            if let Err(e @ PlanError::AdaptiveMismatch { .. }) = result {
                prop_assert!(false, "validate reported a mismatch: {e}");
            }
        }
    }

    /// Replay parity: a trace recorded from a naive run replays through
    /// the adaptive executor with identical rows. The replay backend is
    /// keyed by (method, binding), so adaptive's reordering and skipping
    /// must stay within the recorded access set — a cache miss on an
    /// unrecorded access would fail the replay outright.
    #[test]
    fn adaptive_replays_recorded_traces_with_identical_rows(
        n in 5usize..30,
        data_seed in 0u64..200,
        salary_pick in 0usize..3,
    ) {
        let mut scenario = scenarios::university(None);
        let plan = salary_crawl(&mut scenario.values, SALARIES[salary_pick]);
        let data = university_instance(
            scenario.schema.signature(),
            &mut scenario.values,
            n,
            data_seed,
        );

        let mut recorder = RecordingBackend::new(InstanceBackend::truncating(&data));
        let recorded = execute_with_backend(&plan, &scenario.schema, &mut recorder).unwrap();
        let trace = recorder.into_trace();

        let mut naive_replay = trace.replayer();
        let naive = execute_with_backend(&plan, &scenario.schema, &mut naive_replay).unwrap();
        let mut adaptive_replay = trace.replayer();
        let mut window = AdaptiveWindow::new();
        let adaptive =
            execute_plan_adaptive(&plan, &scenario.schema, &mut adaptive_replay, &mut window)
                .unwrap();

        prop_assert_eq!(&naive.output, &recorded.output);
        prop_assert_eq!(&adaptive.output, &naive.output);
    }
}

/// An expired deadline aborts the adaptive schedule even when the cost
/// model has commutable accesses queued for reordering, and surfaces as
/// `DeadlineExceeded` in both naive and adaptive (validate returns the
/// adaptive error, never a mismatch).
#[test]
fn deadline_abort_mid_reorder_is_a_timeout_not_a_mismatch() {
    let mut scenario = scenarios::university(None);
    let plans = [
        salary_crawl(&mut scenario.values, "10000"),
        salary_crawl(&mut scenario.values, "20000"),
    ];
    let plan_refs: Vec<&Plan> = plans.iter().collect();
    let data = university_instance(scenario.schema.signature(), &mut scenario.values, 25, 7);
    let simulator = ServiceSimulator::new(scenario.schema.clone(), data);

    let mut exec = ExecOptions::with_backend(BackendSpec::Sharded { shards: 3 });
    exec.adaptive = AdaptiveMode::Validate;
    let _guard = rbqa::obs::arm_deadline(Duration::ZERO);
    std::thread::sleep(Duration::from_millis(1));
    let results = simulator.run_plans_exec_results(&plan_refs, &exec).unwrap();
    for result in results {
        match result {
            Err(PlanError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
}
