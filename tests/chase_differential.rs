//! Differential property test: the semi-naive (delta-driven) chase engine
//! is equivalent to the naive engine.
//!
//! For random instances and random constraint sets (inclusion dependencies
//! in both directions — so cyclic sets occur —, functional dependencies,
//! full transitivity-style TGDs and two-atom join rules), both engines must
//!
//! * report the **same [`Completion`]** (saturation, depth capping, budget
//!   exhaustion, FD failure), and
//! * produce **homomorphically equivalent instances** whenever the chase
//!   saturates (two saturated restricted-chase results are universal model
//!   prefixes of the same theory, so each must map into the other fixing
//!   the constants).
//!
//! Together with the engine-parametrised unit tests of `rbqa-chase` this is
//! the evidence that the delta optimisation preserves restricted-chase
//! semantics, derivation-depth accounting and budget behaviour.

use proptest::prelude::*;
use rbqa::chase::{chase, Budget, ChaseConfig, ChaseEngine, Completion};
use rbqa::common::{Instance, Signature, Value, ValueFactory};
use rbqa::logic::constraints::tgd::{inclusion_dependency, TgdBuilder};
use rbqa::logic::constraints::ConstraintSet;
use rbqa::logic::homomorphism::holds;
use rbqa::logic::{CqBuilder, Fd, Term};

/// A small fixed signature: R/2, S/2, T/1.
fn signature() -> (
    Signature,
    rbqa::common::RelationId,
    rbqa::common::RelationId,
    rbqa::common::RelationId,
) {
    let mut sig = Signature::new();
    let r = sig.add_relation("R", 2).unwrap();
    let s = sig.add_relation("S", 2).unwrap();
    let t = sig.add_relation("T", 1).unwrap();
    (sig, r, s, t)
}

fn build_instance(
    pairs_r: &[(u8, u8)],
    pairs_s: &[(u8, u8)],
    singles_t: &[u8],
) -> (Instance, ValueFactory) {
    let (sig, r, s, t) = signature();
    let mut vf = ValueFactory::new();
    let mut inst = Instance::new(sig);
    let val = |vf: &mut ValueFactory, x: u8| vf.constant(&format!("v{x}"));
    for (a, b) in pairs_r {
        let (a, b) = (val(&mut vf, *a), val(&mut vf, *b));
        inst.insert(r, vec![a, b]).unwrap();
    }
    for (a, b) in pairs_s {
        let (a, b) = (val(&mut vf, *a), val(&mut vf, *b));
        inst.insert(s, vec![a, b]).unwrap();
    }
    for a in singles_t {
        let a = val(&mut vf, *a);
        inst.insert(t, vec![a]).unwrap();
    }
    (inst, vf)
}

/// Interprets generated triples as a constraint set over {R, S, T}. The
/// eight shapes cover acyclic and cyclic IDs, FDs on both binary relations,
/// full (null-free) transitivity rules and a two-atom join rule — jointly
/// exercising delta restriction, the dependency map, FD rewriting of the
/// delta and the pending-trigger bookkeeping of the semi-naive engine.
fn build_constraints(sig: &Signature, specs: &[(u8, u8, u8)]) -> ConstraintSet {
    let (_, r, s, t) = signature();
    let mut constraints = ConstraintSet::new();
    for (kind, a, b) in specs {
        let (pa, pb) = ((*a % 2) as usize, (*b % 2) as usize);
        match kind % 8 {
            0 => constraints.push_tgd(inclusion_dependency(sig, r, &[pa], s, &[pb])),
            1 => constraints.push_tgd(inclusion_dependency(sig, s, &[pa], r, &[pb])),
            2 => constraints.push_tgd(inclusion_dependency(sig, r, &[pa], t, &[0])),
            3 => constraints.push_tgd(inclusion_dependency(sig, t, &[0], r, &[pb])),
            4 => constraints.push_fd(Fd::new(r, vec![pa], 1 - pa)),
            5 => constraints.push_fd(Fd::new(s, vec![pb], 1 - pb)),
            6 => {
                // Full transitivity on R or S: X(x, y), X(y, z) -> X(x, z).
                let rel = if pa == 0 { r } else { s };
                let mut bld = TgdBuilder::new();
                let (x, y, z) = (bld.var("x"), bld.var("y"), bld.var("z"));
                bld.body_atom(rel, vec![Term::Var(x), Term::Var(y)]);
                bld.body_atom(rel, vec![Term::Var(y), Term::Var(z)]);
                bld.head_atom(rel, vec![Term::Var(x), Term::Var(z)]);
                constraints.push_tgd(bld.build());
            }
            _ => {
                // Join rule R(x, y), S(y, z) -> T(y) or -> ∃w R(x, w).
                let mut bld = TgdBuilder::new();
                let (x, y, z) = (bld.var("x"), bld.var("y"), bld.var("z"));
                bld.body_atom(r, vec![Term::Var(x), Term::Var(y)]);
                bld.body_atom(s, vec![Term::Var(y), Term::Var(z)]);
                if pb == 0 {
                    bld.head_atom(t, vec![Term::Var(y)]);
                } else {
                    let w = bld.var("w");
                    bld.head_atom(r, vec![Term::Var(x), Term::Var(w)]);
                }
                constraints.push_tgd(bld.build());
            }
        }
    }
    constraints
}

/// Views `instance` as a Boolean conjunctive query: nulls become variables,
/// constants stay constants. A homomorphism of that query into `other` is
/// exactly a constant-fixing homomorphism `instance → other`.
fn maps_into(instance: &Instance, other: &Instance) -> bool {
    let mut builder = CqBuilder::new();
    let mut null_vars: rustc_hash::FxHashMap<Value, Term> = rustc_hash::FxHashMap::default();
    let mut next = 0usize;
    let mut atoms: Vec<(rbqa::common::RelationId, Vec<Term>)> = Vec::new();
    for fact in instance.iter_facts() {
        let terms: Vec<Term> = fact
            .args()
            .iter()
            .map(|&v| {
                if v.is_null() {
                    *null_vars.entry(v).or_insert_with(|| {
                        let var = builder.var(&format!("n{next}"));
                        next += 1;
                        Term::Var(var)
                    })
                } else {
                    Term::Const(v)
                }
            })
            .collect();
        atoms.push((fact.relation(), terms));
    }
    for (rel, terms) in atoms {
        builder.atom(rel, terms);
    }
    holds(&builder.build(), other)
}

/// Chases with both engines and applies the differential assertions.
fn assert_engines_agree(
    inst: &Instance,
    constraints: &ConstraintSet,
    vf: &ValueFactory,
    budget: Budget,
) {
    let mut vf_naive = vf.clone();
    let mut vf_semi = vf.clone();
    let naive = chase(
        inst,
        constraints,
        &mut vf_naive,
        ChaseConfig::with_budget(budget).with_engine(ChaseEngine::Naive),
    );
    let semi = chase(
        inst,
        constraints,
        &mut vf_semi,
        ChaseConfig::with_budget(budget).with_engine(ChaseEngine::SemiNaive),
    );

    prop_assert_eq!(
        naive.completion,
        semi.completion,
        "engines disagree on completion: naive={:?} semi={:?} on\n{}",
        naive.completion,
        semi.completion,
        inst.dump()
    );
    if naive.completion == Completion::Saturated {
        prop_assert!(
            maps_into(&naive.instance, &semi.instance),
            "no homomorphism naive -> semi-naive:\n{}\n--- vs ---\n{}",
            naive.instance.dump(),
            semi.instance.dump()
        );
        prop_assert!(
            maps_into(&semi.instance, &naive.instance),
            "no homomorphism semi-naive -> naive:\n{}\n--- vs ---\n{}",
            semi.instance.dump(),
            naive.instance.dump()
        );
    }
    if naive.completion != Completion::FdFailure && constraints.fds().is_empty() {
        // Without FD rewriting the chase only extends the input.
        prop_assert!(inst.is_subinstance_of(&naive.instance));
        prop_assert!(inst.is_subinstance_of(&semi.instance));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Generous budget, random constraint mixes: most runs saturate or end
    /// in an FD failure; cyclic ID sets are stopped by the depth cap.
    #[test]
    fn engines_agree_on_random_schemas(
        pairs_r in prop::collection::vec((0u8..6, 0u8..6), 0..10),
        pairs_s in prop::collection::vec((0u8..6, 0u8..6), 0..10),
        singles_t in prop::collection::vec(0u8..6, 0..5),
        specs in prop::collection::vec((0u8..8, 0u8..2, 0u8..2), 0..5),
        depth in 3usize..9,
    ) {
        let (inst, vf) = build_instance(&pairs_r, &pairs_s, &singles_t);
        let constraints = build_constraints(inst.signature(), &specs);
        let budget = Budget::generous().with_max_depth(depth);
        assert_engines_agree(&inst, &constraints, &vf, budget);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Deliberately cyclic ID sets with low depth caps: every run exercises
    /// the semi-naive engine's pending-trigger bookkeeping (DepthCapped must
    /// be distinguished from Saturated exactly as the naive engine does).
    #[test]
    fn engines_agree_on_cyclic_ids(
        pairs_r in prop::collection::vec((0u8..4, 0u8..4), 1..6),
        positions in (0u8..2, 0u8..2, 0u8..2, 0u8..2),
        depth in 2usize..7,
        with_fd in any::<bool>(),
    ) {
        let (inst, vf) = build_instance(&pairs_r, &[], &[]);
        let (_, r, s, _t) = signature();
        let (p0, p1, p2, p3) = positions;
        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(inclusion_dependency(
            inst.signature(), r, &[(p0 % 2) as usize], s, &[(p1 % 2) as usize],
        ));
        constraints.push_tgd(inclusion_dependency(
            inst.signature(), s, &[(p2 % 2) as usize], r, &[(p3 % 2) as usize],
        ));
        if with_fd {
            constraints.push_fd(Fd::new(s, vec![0], 1));
        }
        let budget = Budget::generous().with_max_depth(depth);
        assert_engines_agree(&inst, &constraints, &vf, budget);
    }
}
