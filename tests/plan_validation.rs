//! Integration tests for plan synthesis + empirical validation: every plan
//! synthesised for an answerable query must return the complete answer on
//! generated instances under every access selection tried by the harness.

use rbqa::core::{decide_monotone_answerability, Answerability, AnswerabilityOptions};
use rbqa::engine::{movie_instance, university_instance, validate_plan};
use rbqa::workloads::scenarios;

#[test]
fn synthesised_plans_for_university_queries_are_valid() {
    let mut scenario = scenarios::university(None);
    let options = AnswerabilityOptions {
        synthesize_plan: true,
        crawl_rounds: 2,
        ..Default::default()
    };
    let instances: Vec<_> = (0..3)
        .map(|i| {
            university_instance(
                scenario.schema.signature(),
                &mut scenario.values,
                10 + 5 * i,
                i as u64,
            )
        })
        .collect();
    for name in ["Q1_salary_names", "Q2_directory_nonempty"] {
        let query = scenario.query(name).unwrap().clone();
        let result =
            decide_monotone_answerability(&scenario.schema, &query, &mut scenario.values, &options);
        assert_eq!(result.answerability, Answerability::Answerable, "{name}");
        let plan = result.plan.expect("plan synthesised");
        let report = validate_plan(&scenario.schema, &plan, &query, &instances, 2);
        assert!(
            report.is_valid(),
            "{name}: synthesised plan failed validation: {:?}",
            report.discrepancy
        );
    }
}

#[test]
fn synthesised_plan_for_existence_check_is_valid_under_result_bounds() {
    // Q2 stays answerable with a result bound; the crawling plan only needs
    // the Boolean information, so it validates even though the services
    // truncate their output.
    let mut scenario = scenarios::university(Some(3));
    let options = AnswerabilityOptions {
        synthesize_plan: true,
        crawl_rounds: 1,
        ..Default::default()
    };
    let query = scenario.query("Q2_directory_nonempty").unwrap().clone();
    let result =
        decide_monotone_answerability(&scenario.schema, &query, &mut scenario.values, &options);
    assert_eq!(result.answerability, Answerability::Answerable);
    let plan = result.plan.expect("plan synthesised");
    let instances: Vec<_> = (0..2)
        .map(|i| {
            university_instance(
                scenario.schema.signature(),
                &mut scenario.values,
                12,
                77 + i,
            )
        })
        .collect();
    let report = validate_plan(&scenario.schema, &plan, &query, &instances, 3);
    assert!(report.is_valid(), "{:?}", report.discrepancy);
}

#[test]
fn crawling_plan_for_known_movie_cast_is_valid() {
    let mut scenario = scenarios::movie_services(10_000);
    let options = AnswerabilityOptions {
        synthesize_plan: true,
        crawl_rounds: 2,
        ..Default::default()
    };
    let query = scenario.query("Q_cast_of_known_movie").unwrap().clone();
    let result =
        decide_monotone_answerability(&scenario.schema, &query, &mut scenario.values, &options);
    assert_eq!(result.answerability, Answerability::Answerable);
    let plan = result.plan.expect("plan synthesised");
    let instances = vec![movie_instance(
        scenario.schema.signature(),
        &mut scenario.values,
        30,
        10,
        4,
    )];
    let report = validate_plan(&scenario.schema, &plan, &query, &instances, 2);
    assert!(report.is_valid(), "{:?}", report.discrepancy);
}

#[test]
fn incomplete_plans_are_caught_by_the_harness() {
    // Sanity check of the harness itself: the Example 1.2 plan is not valid
    // when ud has a small result bound (Example 1.3), and the validator
    // reports an incompleteness.
    use rbqa::access::{Condition, PlanBuilder, RaExpr};
    let mut scenario = scenarios::university(Some(2));
    let query = scenario.query("Q1_salary_names").unwrap().clone();
    let salary = scenario.values.constant("10000");
    let plan = PlanBuilder::new()
        .access("ids", "ud", RaExpr::unit(), vec![], vec![0])
        .access("profs", "pr", RaExpr::table("ids"), vec![0], vec![0, 1, 2])
        .middleware(
            "matching",
            RaExpr::select(RaExpr::table("profs"), Condition::eq_const(2, salary)),
        )
        .middleware("names", RaExpr::project(RaExpr::table("matching"), vec![1]))
        .returns("names");
    let instances = vec![university_instance(
        scenario.schema.signature(),
        &mut scenario.values,
        16,
        2,
    )];
    let report = validate_plan(&scenario.schema, &plan, &query, &instances, 2);
    assert!(!report.is_valid());
}
