//! Backend conformance and differential tests.
//!
//! Part 1 is a conformance suite run against all four [`AccessBackend`]
//! implementations (instance, simulated-remote, sharded, recording): every
//! backend must return valid outputs for the method's result bound, report
//! consistent accounting, and be idempotent per (method, binding).
//!
//! Part 2 is differential: a verbatim copy of the **pre-refactor**
//! executor (the `(&Instance, &mut dyn AccessSelection)` loop that
//! `execute` used to be) is run against the backend-generic executor over
//! random plans, random data and random selections — row sets and
//! accounting must be identical. A second differential asserts that a
//! [`ShardedBackend`] with 1..=4 shards produces exactly the
//! [`InstanceBackend`] rows on schemas whose methods are unbounded (where
//! every valid selection returns the full match set, so the backends must
//! agree tuple for tuple).

use proptest::prelude::*;
use rbqa::access::backend::partition_instance;
use rbqa::access::plan::{execute, execute_with_backend, PlanError};
use rbqa::access::{
    AccessBackend, AccessError, AccessMethod, AccessSelection, Condition, InstanceBackend, Plan,
    PlanBuilder, RaExpr, RandomSelection, RecordingBackend, RemoteProfile, Schema, ShardedBackend,
    SimulatedRemoteBackend, TruncatingSelection,
};
use rbqa::common::{Instance, Signature, Value, ValueFactory};
use rustc_hash::FxHashMap;

// ---------------------------------------------------------------------------
// Part 1: conformance suite over all four backends
// ---------------------------------------------------------------------------

/// R/2 with 8 rows sharing the key `a`, exposed through a bounded and an
/// unbounded method.
fn conformance_fixture() -> (AccessMethod, AccessMethod, Instance, ValueFactory) {
    let mut sig = Signature::new();
    let rel = sig.add_relation("R", 2).unwrap();
    let bounded = AccessMethod::bounded("m_bounded", rel, &[0], 3);
    let unbounded = AccessMethod::unbounded("m_all", rel, &[0]);
    let mut vf = ValueFactory::new();
    let mut inst = Instance::new(sig);
    let a = vf.constant("a");
    for i in 0..8 {
        let v = vf.constant(&format!("v{i}"));
        inst.insert(rel, vec![a, v]).unwrap();
    }
    (bounded, unbounded, inst, vf)
}

/// Runs the conformance assertions against one backend instance.
fn assert_conforms(backend: &mut dyn AccessBackend, name: &str) {
    let (bounded, unbounded, inst, mut vf) = conformance_fixture();
    let _ = inst;
    let a = vf.constant("a");
    let b = vf.constant("b");

    // Unbounded: the full match set comes back, accounting agrees.
    let full = backend.access(&unbounded, &[(0, a)]).unwrap();
    assert_eq!(full.tuples.len(), 8, "{name}: unbounded returns everything");
    assert_eq!(full.tuples_matched, 8, "{name}");
    assert!(!full.truncated, "{name}");

    // Bounded: min(k, |M|) tuples, all drawn from the match set, truncation
    // flagged, matched count preserved.
    let capped = backend.access(&bounded, &[(0, a)]).unwrap();
    assert_eq!(capped.tuples.len(), 3, "{name}: bound of 3 enforced");
    assert_eq!(capped.tuples_matched, 8, "{name}");
    assert!(capped.truncated, "{name}");
    for tuple in &capped.tuples {
        assert!(full.tuples.contains(tuple), "{name}: subset of matches");
    }
    assert_eq!(
        capped.truncated,
        capped.tuples.len() < capped.tuples_matched,
        "{name}: truncated flag is consistent with the counts"
    );

    // Idempotence per (method, binding).
    let again = backend.access(&bounded, &[(0, a)]).unwrap();
    assert_eq!(again.tuples, capped.tuples, "{name}: idempotent");
    assert_eq!(again.tuples_matched, capped.tuples_matched, "{name}");

    // Empty match set: no tuples, no truncation.
    let empty = backend.access(&bounded, &[(0, b)]).unwrap();
    assert!(empty.tuples.is_empty(), "{name}");
    assert_eq!(empty.tuples_matched, 0, "{name}");
    assert!(!empty.truncated, "{name}");
}

#[test]
fn all_four_backends_conform() {
    let (_, _, inst, _) = conformance_fixture();

    let mut instance = InstanceBackend::truncating(&inst);
    assert_conforms(&mut instance, "instance");

    let mut remote = SimulatedRemoteBackend::new(
        InstanceBackend::truncating(&inst),
        RemoteProfile {
            seed: 11,
            fault_rate_pct: 0,
            ..RemoteProfile::default()
        },
    );
    assert_conforms(&mut remote, "simulated-remote");

    for shards in 1..=4 {
        let mut sharded = ShardedBackend::over_instance(&inst, shards);
        assert_conforms(&mut sharded, &format!("sharded:{shards}"));
    }

    let mut recording = RecordingBackend::new(InstanceBackend::truncating(&inst));
    assert_conforms(&mut recording, "recording");
    let trace = recording.into_trace();
    assert!(!trace.is_empty(), "the conformance run left a trace");
    // The captured trace replays the same suite (replay serves recorded
    // (method, binding) pairs, so it conforms wherever the recording did).
    let mut replay = trace.replayer();
    assert_conforms(&mut replay, "replay");
}

#[test]
fn remote_faults_survive_retries_or_surface() {
    let (_, unbounded, inst, mut vf) = conformance_fixture();
    let a = vf.constant("a");
    // A 40% fault rate with 3 retries: deterministic per seed; whatever
    // happens must be either a conforming answer or a retryable error.
    for seed in 0..16 {
        let mut backend = SimulatedRemoteBackend::new(
            InstanceBackend::truncating(&inst),
            RemoteProfile {
                seed,
                fault_rate_pct: 40,
                retry: rbqa::access::RetryPolicy::with_retries(3),
                ..RemoteProfile::default()
            },
        );
        match backend.access(&unbounded, &[(0, a)]) {
            Ok(response) => assert_eq!(response.tuples.len(), 8, "seed {seed}"),
            // Exhausted retries surface as permanent: the draws are
            // deterministic, so the same access can only fail again.
            Err(e) => assert!(!e.is_retryable(), "seed {seed}: {e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Part 2: differential against the pre-refactor executor
// ---------------------------------------------------------------------------

/// A verbatim copy of the pre-refactor `execute` loop: instance +
/// selection, no backend indirection. This is the semantics the
/// backend-generic executor must reproduce exactly.
fn reference_execute(
    plan: &Plan,
    schema: &Schema,
    instance: &Instance,
    selection: &mut dyn AccessSelection,
) -> Result<(Vec<Vec<Value>>, usize, usize), PlanError> {
    use rbqa::access::plan::Command;
    use rbqa::access::TempTable;
    plan.validate(schema)?;
    let mut tables: FxHashMap<String, TempTable> = FxHashMap::default();
    let mut accesses_performed = 0usize;
    let mut tuples_fetched = 0usize;
    let mut row_ids: Vec<u32> = Vec::new();
    for command in plan.commands() {
        match command {
            Command::Middleware { output, expr } => {
                let table = expr.evaluate(&tables)?;
                tables.insert(output.clone(), table);
            }
            Command::Access {
                output,
                method,
                input,
                input_map,
                output_map,
            } => {
                let m = schema
                    .method(method)
                    .ok_or_else(|| PlanError::UnknownMethod(method.clone()))?;
                let bindings_table = input.evaluate(&tables)?;
                let input_positions = m.input_positions_vec();
                let mut out = TempTable::new(output_map.len());
                for binding_row in bindings_table.rows() {
                    let binding: Vec<(usize, Value)> = input_positions
                        .iter()
                        .zip(input_map.iter())
                        .map(|(&pos, &col)| (pos, binding_row[col]))
                        .collect();
                    row_ids.clear();
                    instance.matching_rows_into(m.relation(), &binding, &mut row_ids);
                    let matching: Vec<Vec<Value>> = row_ids
                        .iter()
                        .map(|&id| instance.row(m.relation(), id).to_vec())
                        .collect();
                    let selected = selection.select(m, &binding, &matching);
                    accesses_performed += 1;
                    tuples_fetched += selected.len();
                    for tuple in selected {
                        let projected: Vec<Value> = output_map.iter().map(|&p| tuple[p]).collect();
                        out.insert(projected)?;
                    }
                }
                tables.insert(output.clone(), out);
            }
        }
    }
    let output_table = tables
        .get(plan.output_table())
        .ok_or_else(|| PlanError::UnknownTable(plan.output_table().to_owned()))?;
    Ok((
        output_table.sorted_rows(),
        accesses_performed,
        tuples_fetched,
    ))
}

/// Random-plan fixture: R/2 keyed by position 0, S/2 behind an input-free
/// (optionally bounded) listing, T/1 behind an input-free listing.
fn differential_schema(s_bound: Option<usize>) -> Schema {
    let mut sig = Signature::new();
    let r = sig.add_relation("R", 2).unwrap();
    let s = sig.add_relation("S", 2).unwrap();
    let t = sig.add_relation("T", 1).unwrap();
    let mut schema = Schema::new(sig);
    schema
        .add_method(AccessMethod::unbounded("r_by0", r, &[0]))
        .unwrap();
    let s_all = match s_bound {
        None => AccessMethod::unbounded("s_all", s, &[]),
        Some(k) => AccessMethod::bounded("s_all", s, &[], k),
    };
    schema.add_method(s_all).unwrap();
    schema
        .add_method(AccessMethod::unbounded("t_all", t, &[]))
        .unwrap();
    schema
}

fn differential_instance(
    schema: &Schema,
    pairs_r: &[(u8, u8)],
    pairs_s: &[(u8, u8)],
    singles_t: &[u8],
) -> (Instance, ValueFactory) {
    let sig = schema.signature().clone();
    let r = sig.require("R").unwrap();
    let s = sig.require("S").unwrap();
    let t = sig.require("T").unwrap();
    let mut vf = ValueFactory::new();
    let mut inst = Instance::new(sig);
    let val = |vf: &mut ValueFactory, x: u8| vf.constant(&format!("v{x}"));
    for (a, b) in pairs_r {
        let (a, b) = (val(&mut vf, *a), val(&mut vf, *b));
        inst.insert(r, vec![a, b]).unwrap();
    }
    for (a, b) in pairs_s {
        let (a, b) = (val(&mut vf, *a), val(&mut vf, *b));
        inst.insert(s, vec![a, b]).unwrap();
    }
    for a in singles_t {
        let a = val(&mut vf, *a);
        inst.insert(t, vec![a]).unwrap();
    }
    (inst, vf)
}

/// Builds a random (but always valid) plan: seed the crawl with the S
/// listing, follow with per-key R lookups, then a few random monotone
/// middleware commands chosen by `ops`, and return the last table
/// projected to one column.
fn random_plan(ops: &[(u8, u8)]) -> Plan {
    let mut builder = PlanBuilder::new()
        .access("t0", "s_all", RaExpr::unit(), vec![], vec![0, 1])
        .access(
            "t1",
            "r_by0",
            RaExpr::project(RaExpr::table("t0"), vec![1]),
            vec![0],
            vec![0, 1],
        );
    let mut last = "t1".to_owned();
    let mut arity = 2usize;
    for (i, (kind, pick)) in ops.iter().enumerate() {
        let name = format!("m{i}");
        match kind % 4 {
            // Project onto a single random column.
            0 => {
                let col = (*pick as usize) % arity;
                builder =
                    builder.middleware(&name, RaExpr::project(RaExpr::table(&last), vec![col]));
                arity = 1;
            }
            // Select rows where two (possibly equal) columns agree.
            1 => {
                let c1 = (*pick as usize) % arity;
                let c2 = (*pick as usize / 3) % arity;
                builder = builder.middleware(
                    &name,
                    RaExpr::select(RaExpr::table(&last), Condition::eq_columns(c1, c2)),
                );
            }
            // Self-join on a random column pair.
            2 => {
                let c1 = (*pick as usize) % arity;
                let c2 = (*pick as usize / 3) % arity;
                builder = builder.middleware(
                    &name,
                    RaExpr::join(RaExpr::table(&last), RaExpr::table(&last), vec![(c1, c2)]),
                );
                arity *= 2;
            }
            // Union with the S listing's first column paired with itself
            // (kept monotone and arity-correct by projecting both sides).
            _ => {
                let col = (*pick as usize) % arity;
                builder = builder.middleware(
                    &name,
                    RaExpr::union(
                        RaExpr::project(RaExpr::table(&last), vec![col]),
                        RaExpr::project(RaExpr::table("t0"), vec![0]),
                    ),
                );
                arity = 1;
            }
        }
        last = name;
    }
    builder = builder.middleware("answers", RaExpr::project(RaExpr::table(&last), vec![0]));
    builder.returns("answers")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// The backend-generic executor over an `InstanceBackend` reproduces
    /// the pre-refactor executor exactly: same rows, same access count,
    /// same fetched-tuple count — across random plans, random data, random
    /// result bounds and random (seeded) selections.
    #[test]
    fn instance_backend_execution_equals_the_pre_refactor_path(
        pairs_r in prop::collection::vec((0u8..6, 0u8..6), 0..12),
        pairs_s in prop::collection::vec((0u8..6, 0u8..6), 0..12),
        singles_t in prop::collection::vec(0u8..6, 0..4),
        ops in prop::collection::vec((0u8..4, 0u8..9), 0..4),
        s_bound in 0usize..4,
        seed in 0u64..64,
    ) {
        let bound = if s_bound == 0 { None } else { Some(s_bound) };
        let schema = differential_schema(bound);
        let (inst, _vf) = differential_instance(&schema, &pairs_r, &pairs_s, &singles_t);
        let plan = random_plan(&ops);

        let mut reference_selection = RandomSelection::new(seed);
        let (expected_rows, expected_accesses, expected_fetched) =
            reference_execute(&plan, &schema, &inst, &mut reference_selection).unwrap();

        let mut selection = RandomSelection::new(seed);
        let run = execute(&plan, &schema, &inst, &mut selection).unwrap();
        prop_assert_eq!(&run.output, &expected_rows);
        prop_assert_eq!(run.accesses_performed, expected_accesses);
        prop_assert_eq!(run.tuples_fetched, expected_fetched);
        prop_assert!(run.tuples_matched >= run.tuples_fetched,
            "bounds can only drop tuples, never add them");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// With only unbounded methods every valid selection returns the full
    /// match set, so a sharded federation (any shard count) must produce
    /// exactly the instance backend's rows.
    #[test]
    fn sharded_matches_instance_on_unbounded_methods(
        pairs_r in prop::collection::vec((0u8..6, 0u8..6), 0..12),
        pairs_s in prop::collection::vec((0u8..6, 0u8..6), 0..12),
        singles_t in prop::collection::vec(0u8..6, 0..4),
        ops in prop::collection::vec((0u8..4, 0u8..9), 0..4),
        shards in 1usize..=4,
    ) {
        let schema = differential_schema(None);
        let (inst, _vf) = differential_instance(&schema, &pairs_r, &pairs_s, &singles_t);
        let plan = random_plan(&ops);

        let mut selection = TruncatingSelection::new();
        let direct = execute(&plan, &schema, &inst, &mut selection).unwrap();

        let mut sharded = ShardedBackend::over_instance(&inst, shards);
        let federated = execute_with_backend(&plan, &schema, &mut sharded).unwrap();
        prop_assert_eq!(&federated.output, &direct.output, "{} shards", shards);
        // Disjoint partition: the same tuples matched overall.
        prop_assert_eq!(federated.tuples_matched, direct.tuples_matched);
        prop_assert_eq!(federated.accesses_performed, direct.accesses_performed);
    }
}

#[test]
fn partitioning_is_a_disjoint_cover_of_the_instance() {
    let schema = differential_schema(None);
    let (inst, _) = differential_instance(
        &schema,
        &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)],
        &[(0, 0), (1, 1), (2, 2)],
        &[0, 1, 2, 3],
    );
    for shards in 1..=4 {
        let parts = partition_instance(&inst, shards);
        assert_eq!(parts.len(), shards);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, inst.len(), "{shards} shards cover every row");
    }
}

#[test]
fn budget_exhaustion_is_deterministic_across_executors() {
    // The budgeted backend fails on the same call number no matter which
    // plan shape drove it there.
    let schema = differential_schema(None);
    let (inst, _) = differential_instance(&schema, &[(0, 1), (1, 2)], &[(0, 1), (1, 0)], &[]);
    let plan = random_plan(&[]);
    let mut backend = rbqa::access::BudgetedBackend::new(InstanceBackend::truncating(&inst), 2);
    let err = execute_with_backend(&plan, &schema, &mut backend).unwrap_err();
    assert_eq!(
        err,
        PlanError::Access(AccessError::BudgetExhausted {
            budget: 2,
            calls: 3
        })
    );
}
