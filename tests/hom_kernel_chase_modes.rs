//! End-to-end kernel differential: running the chase with the compiled
//! matching kernel and with the reference kernel produces the same
//! [`Completion`] and homomorphically equivalent results.
//!
//! The kernel selector is process-wide ([`rbqa::logic::homomorphism::set_kernel_mode`]),
//! so this comparison lives in its own integration-test binary: nothing
//! else in this process observes the temporary switch to the reference
//! kernel. (The per-call kernel equivalence is covered by the proptest in
//! `tests/hom_kernel_differential.rs`.)

use rbqa::chase::{chase, Budget, ChaseConfig, ChaseEngine, Completion};
use rbqa::common::{Instance, Signature, Value, ValueFactory};
use rbqa::logic::constraints::tgd::{inclusion_dependency, TgdBuilder};
use rbqa::logic::constraints::ConstraintSet;
use rbqa::logic::homomorphism::{holds, set_kernel_mode, KernelMode};
use rbqa::logic::{CqBuilder, Fd, Term};

/// Views `instance` as a Boolean CQ (nulls become variables) and checks a
/// constant-fixing homomorphism into `other`.
fn maps_into(instance: &Instance, other: &Instance) -> bool {
    let mut builder = CqBuilder::new();
    let mut null_vars: rustc_hash::FxHashMap<Value, Term> = rustc_hash::FxHashMap::default();
    let mut next = 0usize;
    let mut atoms: Vec<(rbqa::common::RelationId, Vec<Term>)> = Vec::new();
    for fact in instance.iter_facts() {
        let terms: Vec<Term> = fact
            .args()
            .iter()
            .map(|&v| {
                if v.is_null() {
                    *null_vars.entry(v).or_insert_with(|| {
                        let var = builder.var(&format!("n{next}"));
                        next += 1;
                        Term::Var(var)
                    })
                } else {
                    Term::Const(v)
                }
            })
            .collect();
        atoms.push((fact.relation(), terms));
    }
    for (rel, terms) in atoms {
        builder.atom(rel, terms);
    }
    holds(&builder.build(), other)
}

/// A mixed workload: cyclic IDs, a join rule, a full transitivity rule and
/// an FD, over a seeded deterministic instance.
fn workload(seed: u64) -> (Instance, ConstraintSet, ValueFactory, Budget) {
    let mut sig = Signature::new();
    let r = sig.add_relation("R", 2).unwrap();
    let s = sig.add_relation("S", 2).unwrap();
    let t = sig.add_relation("T", 1).unwrap();
    let mut vf = ValueFactory::new();
    let vals: Vec<Value> = (0..6).map(|i| vf.constant(&format!("v{i}"))).collect();
    let mut inst = Instance::new(sig.clone());
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state as usize
    };
    for _ in 0..(4 + seed as usize % 5) {
        let (a, b) = (vals[next() % 6], vals[next() % 6]);
        inst.insert(r, vec![a, b]).unwrap();
    }
    for _ in 0..(2 + seed as usize % 4) {
        let (a, b) = (vals[next() % 6], vals[next() % 6]);
        inst.insert(s, vec![a, b]).unwrap();
    }

    let mut constraints = ConstraintSet::new();
    constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));
    constraints.push_tgd(inclusion_dependency(&sig, s, &[1], r, &[0]));
    let mut bld = TgdBuilder::new();
    let (x, y, z) = (bld.var("x"), bld.var("y"), bld.var("z"));
    bld.body_atom(r, vec![Term::Var(x), Term::Var(y)]);
    bld.body_atom(s, vec![Term::Var(y), Term::Var(z)]);
    bld.head_atom(t, vec![Term::Var(y)]);
    constraints.push_tgd(bld.build());
    if seed.is_multiple_of(2) {
        constraints.push_fd(Fd::new(s, vec![0], 1));
    }
    let budget = Budget::generous().with_max_depth(3 + (seed as usize % 4));
    (inst, constraints, vf, budget)
}

#[test]
fn chase_agrees_across_kernel_modes() {
    for seed in 0..24u64 {
        for engine in [ChaseEngine::Naive, ChaseEngine::SemiNaive] {
            let (inst, constraints, vf, budget) = workload(seed);
            let config = ChaseConfig::with_budget(budget).with_engine(engine);

            set_kernel_mode(KernelMode::Compiled);
            let mut vf_compiled = vf.clone();
            let compiled = chase(&inst, &constraints, &mut vf_compiled, config);

            set_kernel_mode(KernelMode::Reference);
            let mut vf_reference = vf.clone();
            let baseline = chase(&inst, &constraints, &mut vf_reference, config);
            set_kernel_mode(KernelMode::Compiled);

            assert_eq!(
                compiled.completion, baseline.completion,
                "kernels disagree on completion (seed {seed}, {engine:?})"
            );
            assert_eq!(
                compiled.instance.len(),
                baseline.instance.len(),
                "kernels disagree on result size (seed {seed}, {engine:?})"
            );
            if compiled.completion == Completion::Saturated {
                assert!(
                    maps_into(&compiled.instance, &baseline.instance)
                        && maps_into(&baseline.instance, &compiled.instance),
                    "saturated results are not hom-equivalent (seed {seed}, {engine:?})"
                );
            }
        }
    }
}
