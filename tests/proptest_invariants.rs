//! Property-based tests (proptest) for the core invariants of the stack:
//! chase soundness, homomorphism/evaluation monotonicity, FD-closure
//! idempotence, access-selection validity and accessible-part monotonicity.

use proptest::prelude::*;
use rbqa::access::{
    accessible_part, AccessMethod, GreedySelection, RandomSelection, Schema, TruncatingSelection,
};
use rbqa::chase::{chase, Budget, ChaseConfig};
use rbqa::common::{Instance, Signature, Value, ValueFactory};
use rbqa::logic::constraints::tgd::inclusion_dependency;
use rbqa::logic::constraints::ConstraintSet;
use rbqa::logic::implication::{det_by, fd_closure};
use rbqa::logic::{evaluate, CqBuilder, Fd};
use rustc_hash::FxHashSet;
use std::collections::BTreeSet;

/// A small fixed signature: R/2, S/2, T/1.
fn signature() -> (
    Signature,
    rbqa::common::RelationId,
    rbqa::common::RelationId,
    rbqa::common::RelationId,
) {
    let mut sig = Signature::new();
    let r = sig.add_relation("R", 2).unwrap();
    let s = sig.add_relation("S", 2).unwrap();
    let t = sig.add_relation("T", 1).unwrap();
    (sig, r, s, t)
}

/// Builds an instance from generated pairs: R gets the pairs, S gets the
/// reversed pairs of the second list, T gets the singletons.
fn build_instance(
    pairs_r: &[(u8, u8)],
    pairs_s: &[(u8, u8)],
    singles_t: &[u8],
) -> (Instance, ValueFactory) {
    let (sig, r, s, t) = signature();
    let mut vf = ValueFactory::new();
    let mut inst = Instance::new(sig);
    let val = |vf: &mut ValueFactory, x: u8| vf.constant(&format!("v{x}"));
    for (a, b) in pairs_r {
        let (a, b) = (val(&mut vf, *a), val(&mut vf, *b));
        inst.insert(r, vec![a, b]).unwrap();
    }
    for (a, b) in pairs_s {
        let (a, b) = (val(&mut vf, *a), val(&mut vf, *b));
        inst.insert(s, vec![a, b]).unwrap();
    }
    for a in singles_t {
        let a = val(&mut vf, *a);
        inst.insert(t, vec![a]).unwrap();
    }
    (inst, vf)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A saturated chase result satisfies every TGD of the constraint set
    /// (soundness of the chase fixpoint).
    #[test]
    fn chase_result_satisfies_ids(
        pairs_r in prop::collection::vec((0u8..6, 0u8..6), 0..12),
        pairs_s in prop::collection::vec((0u8..6, 0u8..6), 0..12),
    ) {
        let (inst, mut vf) = build_instance(&pairs_r, &pairs_s, &[]);
        let (sig, r, s, t) = signature();
        let mut constraints = ConstraintSet::new();
        constraints.push_tgd(inclusion_dependency(&sig, r, &[1], s, &[0]));
        constraints.push_tgd(inclusion_dependency(&sig, s, &[0], t, &[0]));
        let out = chase(&inst, &constraints, &mut vf, ChaseConfig::with_budget(Budget::generous()));
        prop_assert!(out.is_saturated());
        // Every R(x, y) has a witness S(y, _), every S(x, y) has T(x).
        for tuple in out.instance.tuples(r) {
            prop_assert!(!out.instance.matching_tuples(s, &[(0, tuple[1])]).is_empty());
        }
        for tuple in out.instance.tuples(s) {
            prop_assert!(out.instance.contains(t, &[tuple[0]]));
        }
        // The chase only extends the input.
        prop_assert!(inst.is_subinstance_of(&out.instance));
    }

    /// The FD chase repairs every repairable instance: the result satisfies
    /// the FDs, and original facts survive up to the applied unification.
    #[test]
    fn fd_chase_repairs_or_fails_cleanly(
        pairs_r in prop::collection::vec((0u8..4, 0u8..4), 0..10),
    ) {
        let (inst, mut vf) = build_instance(&pairs_r, &[], &[]);
        let (_sig, r, _s, _t) = signature();
        let mut constraints = ConstraintSet::new();
        constraints.push_fd(Fd::new(r, vec![0], 1));
        let out = chase(&inst, &constraints, &mut vf, ChaseConfig::with_budget(Budget::generous()));
        if out.is_saturated() {
            prop_assert!(Fd::new(r, vec![0], 1).holds_on(&out.instance));
        } else {
            // Distinct constants had to be merged: the input really violates
            // the FD on two constant tuples.
            prop_assert!(out.is_fd_failure());
            prop_assert!(!Fd::new(r, vec![0], 1).holds_on(&inst));
        }
    }

    /// CQ evaluation is monotone: answers over a subinstance are a subset of
    /// answers over the full instance.
    #[test]
    fn evaluation_is_monotone(
        pairs_r in prop::collection::vec((0u8..5, 0u8..5), 1..14),
        keep in prop::collection::vec(any::<bool>(), 14),
    ) {
        let (full, _vf) = build_instance(&pairs_r, &[], &[]);
        let (sig, r, _s, _t) = signature();
        // Build the subinstance from the kept prefix flags.
        let mut sub = Instance::new(sig);
        for (i, tuple) in full.tuples(r).enumerate() {
            if *keep.get(i).unwrap_or(&false) {
                sub.insert(r, tuple.to_vec()).unwrap();
            }
        }
        // Q(x) :- R(x, y), R(y, x)
        let mut b = CqBuilder::new();
        let (x, y) = (b.var("x"), b.var("y"));
        let q = b.free(x).atom(r, vec![x.into(), y.into()]).atom(r, vec![y.into(), x.into()]).build();
        let small = evaluate(&q, &sub).unwrap();
        let big = evaluate(&q, &full).unwrap();
        for answer in &small {
            prop_assert!(big.contains(answer));
        }
    }

    /// FD closure is monotone, idempotent and contains its input.
    #[test]
    fn fd_closure_properties(
        fds_raw in prop::collection::vec((0usize..3, 0usize..3), 0..6),
        start_raw in prop::collection::vec(0usize..3, 0..3),
    ) {
        let (_sig, _r, s, _t) = signature();
        // S has arity 2; map positions into range.
        let fds: Vec<Fd> = fds_raw
            .iter()
            .map(|(a, b)| Fd::new(s, vec![a % 2], b % 2))
            .collect();
        let start: BTreeSet<usize> = start_raw.iter().map(|p| p % 2).collect();
        let closure = fd_closure(&fds, s, &start);
        prop_assert!(start.is_subset(&closure));
        let twice = fd_closure(&fds, s, &closure);
        prop_assert_eq!(closure.clone(), twice);
        // DetBy of the full position set is the full position set.
        let all = det_by(&fds, s, &[0, 1]);
        prop_assert_eq!(all, BTreeSet::from([0, 1]));
    }

    /// Every access selection returns a valid output: a subset of the
    /// matching tuples, of valid size for the method's bound.
    #[test]
    fn selections_return_valid_outputs(
        pairs_r in prop::collection::vec((0u8..5, 0u8..5), 0..20),
        bound in 1usize..6,
        seed in any::<u64>(),
    ) {
        let (inst, _vf) = build_instance(&pairs_r, &[], &[]);
        let (_sig, r, _s, _t) = signature();
        let method = AccessMethod::bounded("m", r, &[], bound);
        let matching: Vec<Vec<Value>> = inst.tuples(r).map(|t| t.to_vec()).collect();
        let mut selections: Vec<Box<dyn rbqa::access::AccessSelection>> = vec![
            Box::new(TruncatingSelection::new()),
            Box::new(GreedySelection::new()),
            Box::new(RandomSelection::new(seed)),
        ];
        for sel in selections.iter_mut() {
            let output = sel.select(&method, &[], &matching);
            prop_assert!(rbqa::access::selection::is_valid_output(&method, &matching, &output));
        }
    }

    /// Accessible parts grow with the result bound: a larger bound (with the
    /// same deterministic selection) never reveals fewer facts.
    #[test]
    fn accessible_part_grows_with_bound(
        pairs_r in prop::collection::vec((0u8..5, 0u8..5), 0..16),
        small_bound in 1usize..4,
    ) {
        let (inst, _vf) = build_instance(&pairs_r, &[], &[]);
        let (sig, r, _s, _t) = signature();
        let large_bound = small_bound + 3;
        let part_of = |bound: usize| {
            let mut schema = Schema::new(sig.clone());
            schema.add_method(AccessMethod::bounded("m", r, &[], bound)).unwrap();
            let mut sel = TruncatingSelection::new();
            accessible_part(&inst, &schema, &mut sel, &FxHashSet::default())
        };
        let small = part_of(small_bound);
        let large = part_of(large_bound);
        prop_assert!(small.is_subinstance_of(&large));
        prop_assert!(large.is_subinstance_of(&inst));
    }
}
