//! The full university-directory walk-through: decide answerability,
//! synthesise a plan, execute it against simulated services, and check the
//! answers are complete — covering Examples 1.1–1.5 and 2.1 of the paper.
//!
//! Run with: `cargo run --example university_directory`

use rbqa::access::{AdversarialSelection, TruncatingSelection};
use rbqa::core::{decide_monotone_answerability, Answerability, AnswerabilityOptions};
use rbqa::engine::{university_instance, validate_plan, ServiceSimulator};
use rbqa::logic::evaluate;
use rbqa::workloads::scenarios;

fn main() {
    // --- Example 1.2: no result bound, Q1 is answerable and we can run the
    //     synthesised plan end to end. ---------------------------------------
    let mut scenario = scenarios::university(None);
    println!("Scenario: {}", scenario.name);
    let q1 = scenario.query("Q1_salary_names").unwrap().clone();

    let options = AnswerabilityOptions {
        synthesize_plan: true,
        crawl_rounds: 2,
        ..Default::default()
    };
    let result =
        decide_monotone_answerability(&scenario.schema, &q1, &mut scenario.values, &options);
    println!(
        "Q1 (names of professors earning 10000): {:?} via {:?}",
        result.answerability, result.strategy
    );
    let plan = result
        .plan
        .expect("Q1 is answerable, so a plan is synthesised");
    println!(
        "Synthesised crawling plan: {} commands, {} access commands",
        plan.commands().len(),
        plan.access_command_count()
    );

    // Generate data, expose it only through the services, run the plan.
    let data = university_instance(scenario.schema.signature(), &mut scenario.values, 30, 42);
    let expected = evaluate(&q1, &data).expect("example query is safe");
    let services = ServiceSimulator::new(scenario.schema.clone(), data.clone());
    let mut selection = TruncatingSelection::new();
    let (answers, metrics) = services.run_plan(&plan, &mut selection).unwrap();
    println!(
        "Plan output: {} names ({} expected), {} service calls, {} tuples fetched",
        answers.len(),
        expected.len(),
        metrics.total_calls,
        metrics.tuples_fetched
    );
    assert_eq!(answers, expected, "the plan returns the complete answer");

    // The validation harness tries several access selections.
    let report = validate_plan(&scenario.schema, &plan, &q1, &[data], 3);
    println!(
        "Validation over multiple access selections: valid = {}\n",
        report.is_valid()
    );

    // --- Example 1.3 / 1.4: with a result bound of 100 on ud, Q1 stops being
    //     answerable but the existence check Q2 survives. --------------------
    let mut bounded = scenarios::university(Some(100));
    println!("Scenario: {}", bounded.name);
    for (label, name) in [("Q1", "Q1_salary_names"), ("Q2", "Q2_directory_nonempty")] {
        let query = bounded.query(name).unwrap().clone();
        let result = decide_monotone_answerability(
            &bounded.schema,
            &query,
            &mut bounded.values,
            &AnswerabilityOptions::default(),
        );
        println!("  {label}: {:?}", result.answerability);
    }

    // The plan of Example 2.1 for Q2 returns the same (Boolean) output no
    // matter which valid access selection the bounded service uses.
    let mut fd_scenario = scenarios::university_fd();
    println!("\nScenario: {}", fd_scenario.name);
    let q3 = fd_scenario.query("Q3_address_of_id").unwrap().clone();
    let result = decide_monotone_answerability(
        &fd_scenario.schema,
        &q3,
        &mut fd_scenario.values,
        &AnswerabilityOptions::default(),
    );
    println!(
        "  Q3 (does id 12345 live on mainst?): {:?} — the FD id → address makes the single \
         returned row authoritative (Example 1.5)",
        result.answerability
    );
    assert_eq!(result.answerability, Answerability::Answerable);

    let q3b = fd_scenario.query("Q3b_phone_of_id").unwrap().clone();
    let result = decide_monotone_answerability(
        &fd_scenario.schema,
        &q3b,
        &mut fd_scenario.values,
        &AnswerabilityOptions::default(),
    );
    println!(
        "  Q3b (does id 12345 have phone 5550100?): {:?} — phone numbers are not determined",
        result.answerability
    );
    assert_eq!(result.answerability, Answerability::NotAnswerable);

    // Different access selections really do return different rows for a
    // bounded access — which is why Q1 fails under the bound.
    let mut bounded2 = scenarios::university(Some(2));
    let data = university_instance(bounded2.schema.signature(), &mut bounded2.values, 10, 7);
    let services = ServiceSimulator::new(bounded2.schema.clone(), data);
    let plan = {
        use rbqa::access::{PlanBuilder, RaExpr};
        PlanBuilder::new()
            .access("T", "ud", RaExpr::unit(), vec![], vec![0, 1, 2])
            .returns("T")
    };
    let mut first = TruncatingSelection::new();
    let mut second = AdversarialSelection::new();
    let (rows_a, _) = services.run_plan(&plan, &mut first).unwrap();
    let (rows_b, _) = services.run_plan(&plan, &mut second).unwrap();
    println!(
        "\nBounded listing returned {} rows under one selection and {} (different) rows under \
         another: {}",
        rows_a.len(),
        rows_b.len(),
        rows_a != rows_b
    );
}
