//! A tour of the paper's schema simplifications (Sections 4 and 6): what
//! each one does to a schema, which constraint classes it is sound for, and
//! how the reduction to query containment looks before and after.
//!
//! Run with: `cargo run --example simplification_zoo`

use rbqa::common::ValueFactory;
use rbqa::core::{
    choice_simplification, classify_constraints, existence_check_simplification, fd_simplification,
    AmondetProblem, AxiomStyle, SimplificationKind,
};
use rbqa::logic::parser::parse_cq;
use rbqa::workloads::scenarios;

fn describe_schema(label: &str, schema: &rbqa::access::Schema) {
    println!("  {label}:");
    println!("    relations   : {}", schema.signature().len());
    println!("    constraints : {}", schema.constraints().len());
    println!(
        "    methods     : {} ({} result-bounded)",
        schema.methods().len(),
        schema
            .methods()
            .iter()
            .filter(|m| m.is_result_bounded())
            .count()
    );
}

fn main() {
    // --- Existence-check simplification (IDs, Theorem 4.2) ------------------
    let scenario = scenarios::university(Some(100));
    println!("== Existence-check simplification (Example 4.1) ==");
    println!(
        "constraint class: {:?} -> recommended simplification {:?}",
        classify_constraints(scenario.schema.constraints()),
        SimplificationKind::recommended_for(classify_constraints(scenario.schema.constraints()))
    );
    describe_schema("original", &scenario.schema);
    let simplified = existence_check_simplification(&scenario.schema);
    describe_schema("existence-check simplification", &simplified);
    println!(
        "    new view relations: {:?}\n",
        simplified
            .signature()
            .iter()
            .filter(|(_, r)| r.name().contains("__"))
            .map(|(_, r)| r.name().to_owned())
            .collect::<Vec<_>>()
    );

    // --- FD simplification (FDs, Theorem 4.5) -------------------------------
    let fd_scenario = scenarios::university_fd();
    println!("== FD simplification (Example 4.4) ==");
    println!(
        "constraint class: {:?}",
        classify_constraints(fd_scenario.schema.constraints())
    );
    describe_schema("original", &fd_scenario.schema);
    let fd_simplified = fd_simplification(&fd_scenario.schema);
    describe_schema("FD simplification", &fd_simplified);
    let view = fd_simplified
        .signature()
        .require("Udirectory__ud2")
        .unwrap();
    println!(
        "    the view Udirectory__ud2 keeps DetBy(ud2) = {{id, address}} (arity {})\n",
        fd_simplified.signature().arity(view)
    );

    // --- Choice simplification (TGDs / UIDs+FDs, Theorems 6.3, 6.4) ---------
    let tgd_scenario = scenarios::tgd_example_6_1();
    println!("== Choice simplification (Example 6.1) ==");
    println!(
        "constraint class: {:?}",
        classify_constraints(tgd_scenario.schema.constraints())
    );
    describe_schema("original", &tgd_scenario.schema);
    let choice = choice_simplification(&tgd_scenario.schema);
    describe_schema("choice simplification", &choice);
    println!(
        "    every result bound became 1: {:?}\n",
        choice
            .methods()
            .iter()
            .map(|m| (m.name().to_owned(), m.result_bound().map(|b| b.limit)))
            .collect::<Vec<_>>()
    );

    // --- The containment problem before and after simplification ------------
    println!("== Reduction to query containment (Section 3, Example 3.5) ==");
    let mut values = ValueFactory::new();
    let mut sig = scenario.schema.signature().clone();
    let q2 = parse_cq("Q() :- Udirectory(i, a, p)", &mut sig, &mut values).unwrap();

    let naive = AmondetProblem::build(
        &scenario.schema,
        &q2,
        &mut values,
        AxiomStyle::NaiveCardinality { cap: 100 },
    );
    let simplified_axioms =
        AmondetProblem::build(&scenario.schema, &q2, &mut values, AxiomStyle::Simplified);
    println!(
        "  naive cardinality axiomatisation (Example 3.5 proxy): {} TGDs",
        naive.constraints.tgds().len()
    );
    println!(
        "  after the simplification theorems:                    {} TGDs",
        simplified_axioms.constraints.tgds().len()
    );
    println!(
        "  (the schema simplifications are what keep the containment problem in a decidable,\n\
         \x20  cardinality-free fragment — Sections 4 to 7 of the paper)"
    );
}
