//! Quickstart: decide whether a query can be answered through
//! result-bounded web-service interfaces.
//!
//! This walks through the paper's running example (Examples 1.1–1.4)
//! using the sanctioned client API — register a catalog once, then ask
//! questions through the validating request builder. A university exposes
//! `Prof(id, name, salary)` behind a lookup-by-id method and
//! `Udirectory(id, address, phone)` behind an input-free listing method
//! that returns **at most 100 rows** (a result bound). Can we still
//! answer our queries completely?
//!
//! Run with: `cargo run --example quickstart`

use rbqa::prelude::*;

fn main() {
    // 1. Declare the relations.
    let mut sig = Signature::new();
    let prof = sig.add_relation("Prof", 3).unwrap();
    let udir = sig.add_relation("Udirectory", 3).unwrap();

    // 2. State what we know about the data: every professor id appears in
    //    the university directory (the referential constraint τ of
    //    Example 1.1).
    let mut values = ValueFactory::new();
    let mut parse_sig = sig.clone();
    let tau = parse_tgd(
        "Prof(i, n, s) -> Udirectory(i, a, p)",
        &mut parse_sig,
        &mut values,
    )
    .unwrap();
    let mut constraints = rbqa::logic::ConstraintSet::new();
    constraints.push_tgd(tau);

    // 3. Describe the web services: `pr` looks up a professor by id and
    //    returns everything; `ud` lists the directory but returns at most
    //    100 rows.
    let mut schema = Schema::with_parts(sig, constraints, vec![]).unwrap();
    schema
        .add_method(AccessMethod::unbounded("pr", prof, &[0]))
        .unwrap();
    schema
        .add_method(AccessMethod::bounded("ud", udir, &[], 100))
        .unwrap();

    // 4. Register the catalog once, then ask the questions through the
    //    request builder — queries are plain DSL text, validated against
    //    the catalog (unknown relations, wrong arities and unbound answer
    //    variables come back as structured ApiErrors, not panics).
    let service = QueryService::new();
    let uni = service.register_catalog("uni", schema, values).unwrap();

    for (label, query) in [
        (
            "Q1: names of professors earning 10000",
            "Q(n) :- Prof(i, n, '10000')",
        ),
        (
            "Q2: is the directory non-empty?",
            "Q() :- Udirectory(i, a, p)",
        ),
        (
            "Q1 ∨ Q2-addresses as a union (UCQ request)",
            "Q(n) :- Prof(i, n, '10000') || Q(a) :- Udirectory(i, a, p)",
        ),
    ] {
        let response = service
            .request(uni)
            .query_text(query)
            .decide()
            .submit()
            .expect("valid request");
        let verdict = match response.summary.answerability {
            Answerability::Answerable => "answerable",
            Answerability::NotAnswerable => "NOT answerable",
            Answerability::Unknown => "unknown (budget exhausted)",
        };
        println!("{label}");
        println!(
            "  constraint class : {:?}",
            response.summary.constraint_class
        );
        println!("  simplification   : {:?}", response.summary.simplification);
        println!("  strategy         : {:?}", response.summary.strategy);
        println!("  fingerprint      : {}", response.fingerprint);
        println!("  verdict          : {verdict}\n");
    }

    // Malformed requests fail with stable machine-readable codes.
    let err = service
        .request(uni)
        .query_text("Q(x) :- Nonexistent(x)")
        .submit()
        .unwrap_err();
    println!(
        "malformed request  : {} ({})",
        err.code.as_str(),
        err.detail
    );

    // Q1 is not answerable because `ud` may silently drop directory rows
    // (Example 1.3); Q2 is answerable because an existence check does not
    // care which rows come back (Example 1.4). Re-run with the bound
    // removed (`AccessMethod::unbounded("ud", ...)`) and Q1 becomes
    // answerable via the plan of Example 1.2.
}
