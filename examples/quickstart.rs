//! Quickstart: decide whether a query can be answered through
//! result-bounded web-service interfaces.
//!
//! This walks through the paper's running example (Examples 1.1–1.4):
//! a university exposes `Prof(id, name, salary)` behind a lookup-by-id
//! method and `Udirectory(id, address, phone)` behind an input-free listing
//! method that returns **at most 100 rows** (a result bound). Can we still
//! answer our queries completely?
//!
//! Run with: `cargo run --example quickstart`

use rbqa::access::{AccessMethod, Schema};
use rbqa::common::{Signature, ValueFactory};
use rbqa::core::{decide_monotone_answerability, Answerability, AnswerabilityOptions};
use rbqa::logic::constraints::tgd::inclusion_dependency;
use rbqa::logic::constraints::ConstraintSet;
use rbqa::logic::parser::parse_cq;

fn main() {
    // 1. Declare the relations.
    let mut sig = Signature::new();
    let prof = sig.add_relation("Prof", 3).unwrap();
    let udir = sig.add_relation("Udirectory", 3).unwrap();

    // 2. State what we know about the data: every professor id appears in
    //    the university directory (the referential constraint τ of
    //    Example 1.1).
    let mut constraints = ConstraintSet::new();
    constraints.push_tgd(inclusion_dependency(&sig, prof, &[0], udir, &[0]));

    // 3. Describe the web services: `pr` looks up a professor by id and
    //    returns everything; `ud` lists the directory but returns at most
    //    100 rows.
    let mut schema = Schema::with_parts(sig, constraints, vec![]).unwrap();
    schema
        .add_method(AccessMethod::unbounded("pr", prof, &[0]))
        .unwrap();
    schema
        .add_method(AccessMethod::bounded("ud", udir, &[], 100))
        .unwrap();

    // 4. Ask the questions.
    let mut values = ValueFactory::new();
    let mut parse_sig = schema.signature().clone();
    let q1 = parse_cq("Q(n) :- Prof(i, n, '10000')", &mut parse_sig, &mut values).unwrap();
    let q2 = parse_cq("Q() :- Udirectory(i, a, p)", &mut parse_sig, &mut values).unwrap();

    let options = AnswerabilityOptions::default();
    for (label, query) in [
        ("Q1: names of professors earning 10000", &q1),
        ("Q2: is the directory non-empty?", &q2),
    ] {
        let result = decide_monotone_answerability(&schema, query, &mut values, &options);
        let verdict = match result.answerability {
            Answerability::Answerable => "answerable",
            Answerability::NotAnswerable => "NOT answerable",
            Answerability::Unknown => "unknown (budget exhausted)",
        };
        println!("{label}");
        println!("  constraint class : {:?}", result.constraint_class);
        println!("  simplification   : {:?}", result.simplification);
        println!("  strategy         : {:?}", result.strategy);
        println!("  verdict          : {verdict}\n");
    }

    // Q1 is not answerable because `ud` may silently drop directory rows
    // (Example 1.3); Q2 is answerable because an existence check does not
    // care which rows come back (Example 1.4). Re-run with the bound removed
    // (`AccessMethod::unbounded("ud", ...)`) and Q1 becomes answerable via
    // the plan of Example 1.2.
}
