//! Web-service integration scenarios modelled on the paper's motivating
//! examples (Section 1): a ChEBI-style chemistry service whose lookups are
//! capped at 5000 rows, and an IMDb-style movie catalogue whose title
//! listing is capped at 10000 rows with rate-limited calls.
//!
//! For each service we ask which queries can still be answered *completely*
//! through the interfaces, and we execute a plan against the simulator to
//! see the number of calls and transferred tuples — through the pluggable
//! backend API: the same plan runs against the in-memory instance, a
//! 3-shard federation, and a simulated remote service with seeded latency,
//! and a hard call quota makes an over-budget crawl fail fast.
//!
//! Run with: `cargo run --example web_services`

use rbqa::access::plan::PlanError;
use rbqa::access::{AccessError, Condition, PlanBuilder, RaExpr, TruncatingSelection};
use rbqa::core::{decide_monotone_answerability, AnswerabilityOptions};
use rbqa::engine::{movie_instance, BackendSpec, ExecOptions, ServiceSimulator};
use rbqa::workloads::scenarios;

fn main() {
    // --- ChEBI-style biological entities -----------------------------------
    let mut bio = scenarios::bio_services(5000);
    println!("== {} ==", bio.name);
    let queries = bio.queries.clone();
    for (name, query, expected) in &queries {
        let result = decide_monotone_answerability(
            &bio.schema,
            query,
            &mut bio.values,
            &AnswerabilityOptions::default(),
        );
        println!(
            "  {:<28} -> {:?} (paper expectation: {:?})",
            name, result.answerability, expected
        );
    }
    println!(
        "  A bounded per-id lookup still answers point queries (the id determines name and \
         mass), but \"list all compounds\" cannot be answered completely.\n"
    );

    // --- IMDb-style movie catalogue -----------------------------------------
    let mut movies = scenarios::movie_services(10_000);
    println!("== {} ==", movies.name);
    let queries = movies.queries.clone();
    for (name, query, expected) in &queries {
        let result = decide_monotone_answerability(
            &movies.schema,
            query,
            &mut movies.values,
            &AnswerabilityOptions::default(),
        );
        println!(
            "  {:<28} -> {:?} (paper expectation: {:?})",
            name, result.answerability, expected
        );
    }

    // Execute a hand-written plan for "names of the cast of movie0" against
    // the simulated services, once per backend: the in-memory instance, a
    // 3-shard hash federation, and a simulated remote with 150µs base
    // latency per call. All three must return the same names.
    let data = movie_instance(movies.schema.signature(), &mut movies.values, 200, 40, 11);
    let services = ServiceSimulator::new(movies.schema.clone(), data).with_rate_limit(50);
    let movie0 = movies.values.constant("movie0");
    let plan = PlanBuilder::new()
        .middleware("seed", RaExpr::singleton(vec![movie0]))
        .access(
            "cast",
            "cast_by_movie",
            RaExpr::table("seed"),
            vec![0],
            vec![0, 1],
        )
        .access(
            "actors",
            "actor_by_id",
            RaExpr::project(RaExpr::table("cast"), vec![1]),
            vec![0],
            vec![0, 1],
        )
        .middleware("names", RaExpr::project(RaExpr::table("actors"), vec![1]))
        .returns("names");
    println!("\n  Cast of movie0 through each backend (rate limit 50 calls/run):");
    for (label, backend) in [
        ("instance", BackendSpec::Instance),
        ("sharded:3", BackendSpec::Sharded { shards: 3 }),
        (
            "remote",
            BackendSpec::SimulatedRemote {
                seed: 42,
                latency_micros: 150,
                fault_rate_pct: 0,
                transient: false,
            },
        ),
    ] {
        let exec = ExecOptions::with_backend(backend);
        let (names, metrics) = services.run_plan_exec(&plan, &exec).unwrap();
        println!(
            "    {:<10} {} actors, {} calls, {} tuples fetched ({} matched), simulated latency {} µs",
            label,
            names.len(),
            metrics.total_calls,
            metrics.tuples_fetched,
            metrics.tuples_matched,
            metrics.latency_micros
        );
    }

    // Quotas are hard errors now: a crawl that would exceed its call
    // budget fails fast instead of returning partial rows.
    let starved = ExecOptions {
        backend: BackendSpec::Instance,
        call_budget: Some(1),
        ..ExecOptions::default()
    };
    match services.run_plan_exec(&plan, &starved) {
        Err(PlanError::Access(AccessError::BudgetExhausted { budget, calls })) => println!(
            "  With a budget of {budget} calls the crawl fails fast on call {calls} — no partial \
             answers."
        ),
        other => println!("  unexpected outcome under a starved budget: {other:?}"),
    }

    // A plan that tries to list every title through the bounded search is
    // incomplete: compare its output size with the hidden data.
    let all_titles_plan = PlanBuilder::new()
        .access("m", "movie_search", RaExpr::unit(), vec![], vec![0, 1, 2])
        .middleware(
            "titles",
            RaExpr::project(RaExpr::select(RaExpr::table("m"), Condition::True), vec![1]),
        )
        .returns("titles");
    // Rebuild the simulator with a small search bound to make the truncation
    // visible at this scale.
    let mut small = scenarios::movie_services(50);
    let data = movie_instance(small.schema.signature(), &mut small.values, 200, 40, 11);
    let movie_rel = small.schema.signature().require("Movie").unwrap();
    let total_movies = data.relation_len(movie_rel);
    let services = ServiceSimulator::new(small.schema.clone(), data);
    let mut selection = TruncatingSelection::new();
    let (titles, _) = services.run_plan(&all_titles_plan, &mut selection).unwrap();
    println!(
        "  \"All titles\" through a search capped at 50: got {} of {} titles — incomplete, as \
         the answerability analysis predicted.",
        titles.len(),
        total_movies
    );
}
