//! Service traffic demo: many clients, few chases.
//!
//! Registers the university catalog (Example 1.1) with the
//! query-answering service, attaches a dataset, and then fires a mixed
//! workload at it through the public request builder — repeated queries,
//! α-renamed variants, UCQ requests, batches of concurrent identical
//! requests, and `Execute` calls that run the synthesised plans against
//! the simulated services. The printed metrics show the point of the
//! fingerprinted cache: traffic scales while chase invocations stay at
//! the number of *distinct* decision problems.
//!
//! Run with: `cargo run --release --example service_traffic`

use rbqa::engine::dataset::university_instance;
use rbqa::logic::constraints::tgd::inclusion_dependency;
use rbqa::logic::ConstraintSet;
use rbqa::prelude::*;

fn university(ud_bound: Option<usize>) -> (Schema, ValueFactory) {
    let mut sig = Signature::new();
    let prof = sig.add_relation("Prof", 3).unwrap();
    let udir = sig.add_relation("Udirectory", 3).unwrap();
    let mut constraints = ConstraintSet::new();
    constraints.push_tgd(inclusion_dependency(&sig, prof, &[0], udir, &[0]));
    let mut schema = Schema::with_parts(sig, constraints, vec![]).unwrap();
    schema
        .add_method(AccessMethod::unbounded("pr", prof, &[0]))
        .unwrap();
    let ud = match ud_bound {
        None => AccessMethod::unbounded("ud", udir, &[]),
        Some(k) => AccessMethod::bounded("ud", udir, &[], k),
    };
    schema.add_method(ud).unwrap();
    (schema, ValueFactory::new())
}

fn main() {
    let service = QueryService::new();

    // Register two catalogs: the bounded directory (Examples 1.3/1.4) and
    // the unbounded one (Example 1.2) with a dataset for execution.
    let (bounded_schema, bounded_values) = university(Some(100));
    let bounded = service
        .register_catalog("university-bounded", bounded_schema, bounded_values)
        .unwrap();
    let (open_schema, mut open_values) = university(None);
    let data = university_instance(open_schema.signature(), &mut open_values, 20, 7);
    let open = service
        .register_catalog("university-open", open_schema, open_values)
        .unwrap();
    service.attach_dataset(open, data).unwrap();

    // 1. A burst of α-equivalent Decide traffic, including UCQ requests:
    //    every client names its variables differently (and orders union
    //    disjuncts differently), but one chase per distinct problem serves
    //    them all. Requests are built through the validating builder and
    //    fanned out as a batch.
    println!("-- 60 Decide requests, 4 distinct problems, many spellings --");
    let spellings = [
        "Q(n) :- Prof(i, n, '10000')",
        "Q(name) :- Prof(pid, name, '10000')",
        "Q(x) :- Prof(y, x, '10000')",
        "Q() :- Udirectory(i, a, p)",
        "Q() :- Udirectory(row, addr, phone)",
        "Q(i) :- Udirectory(i, a, p), Prof(i, n, s)",
        "Q(id) :- Prof(id, nm, sa), Udirectory(id, ad, ph)",
        // The same UCQ, spelled in both disjunct orders.
        "Q(n) :- Prof(i, n, '10000') || Q(a) :- Udirectory(i, a, p)",
        "Q(ad) :- Udirectory(row, ad, ph) || Q(nm) :- Prof(pid, nm, '10000')",
    ];
    let requests: Vec<AnswerRequest> = (0..60)
        .map(|round| {
            service
                .request(bounded)
                .query_text(spellings[round % spellings.len()])
                .decide()
                .build()
                .expect("catalog-valid query text")
        })
        .collect();
    let responses = service.submit_batch(&requests);
    let answerable = responses
        .iter()
        .filter(|r| r.as_ref().is_ok_and(|r| r.is_answerable()))
        .count();
    println!("   answerable: {answerable}/60");

    // 2. Execute traffic against the open catalog: plan synthesis happens
    //    once, execution per request.
    println!("-- 10 Execute requests for the salary query --");
    for k in 0..10 {
        let response = service
            .request(open)
            .query_text("Q(n) :- Prof(i, n, '10000')")
            .execute()
            .submit()
            .unwrap();
        if k == 0 {
            let rows = response.rows.as_ref().unwrap();
            let pm = response.plan_metrics.as_ref().unwrap();
            println!(
                "   {} rows, {} service calls, cache_hit={}",
                rows.len(),
                pm.total_calls,
                response.cache_hit
            );
        }
    }

    // 3. The metrics tell the story.
    let m = service.metrics();
    println!("-- service metrics --");
    println!("   cache hits            : {}", m.cache_hits);
    println!("   cache misses          : {}", m.cache_misses);
    println!("   coalesced waits       : {}", m.cache_coalesced);
    println!("   decisions computed    : {}", m.decisions_computed);
    println!(
        "   chase invocations saved: {}",
        m.chase_invocations_saved()
    );
    println!("   chase rounds saved    : {}", m.chase_rounds_saved);
    println!("   plan executions       : {}", m.executions);
    println!(
        "   mean latency (Decide / Synthesize / Execute): {} / {} / {} µs",
        m.mean_micros(RequestMode::Decide),
        m.mean_micros(RequestMode::Synthesize),
        m.mean_micros(RequestMode::Execute),
    );
    println!("   distinct cached decisions: {}", service.cache_len());

    assert_eq!(
        m.decisions_computed + m.chase_invocations_saved(),
        70,
        "every request either computed once or rode the cache"
    );
}
