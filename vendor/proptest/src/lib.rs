//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Supports the subset the workspace tests use:
//!
//! * the [`proptest!`] macro over `#[test] fn name(arg in strategy, ...)`
//!   items, with an optional `#![proptest_config(...)]` header;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * strategies: integer ranges (`0u8..6`, `1usize..=4`), tuples of
//!   strategies, `any::<T>()` for primitives, and
//!   `prop::collection::vec(strategy, size)`;
//! * `ProptestConfig::with_cases(n)`.
//!
//! Each test runs `cases` random cases from a seed derived from the test's
//! module path and name (deterministic across runs). There is no shrinking:
//! a failing case panics with the generated inputs included in the report.

/// Random source for strategy generation.
pub mod test_runner {
    /// SplitMix64 generator used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG seeded from an arbitrary string (e.g. the test
        /// name), so every test gets a distinct but reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// The [`strategy::Strategy`] trait and primitive implementations.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values (no shrinking in this stand-in).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return start + rng.next_u64() as $t;
                    }
                    start + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D));
}

/// `any::<T>()` for primitive types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Marker strategy produced by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any {
                _marker: std::marker::PhantomData,
            }
        }
    }

    /// Types with a full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Acceptable size arguments for [`vec()`]: an exact `usize`, a `Range`
    /// or a `RangeInclusive`.
    pub trait IntoSizeRange {
        /// Picks a concrete length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            let (start, end) = (*self.start(), *self.end());
            start + rng.below((end - start + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector strategy with element strategy `element` and size `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// Run configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "proptest assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases. A failing case panics
/// with the generated inputs printed in the failure report.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::strategy::Strategy as _;
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $( let $arg = ($strat).generate(&mut __rng); )+
                    let __inputs = format!(
                        concat!("case ", "{}", $(": ", stringify!($arg), " = {:?}"),+),
                        __case, $(&$arg),+
                    );
                    let __result = std::panic::catch_unwind(
                        std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(panic) = __result {
                        eprintln!("proptest {} failed on {}", stringify!($name), __inputs);
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3u8..9, y in 1usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        /// Tuple and vec strategies compose.
        #[test]
        fn vec_of_tuples(
            v in prop::collection::vec((0u8..5, 0u8..5), 0..10),
            exact in prop::collection::vec(any::<bool>(), 4),
        ) {
            prop_assert!(v.len() < 10);
            prop_assert_eq!(exact.len(), 4);
            for (a, b) in &v {
                prop_assert!(*a < 5 && *b < 5);
            }
        }
    }

    proptest! {
        /// Default config also works (no header).
        #[test]
        fn default_config_runs(seed in any::<u64>()) {
            let _ = seed;
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
