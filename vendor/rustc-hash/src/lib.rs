//! Offline stand-in for the `rustc-hash` crate (see `vendor/README.md`).
//!
//! Provides `FxHashMap` / `FxHashSet` type aliases over a fast,
//! non-cryptographic multiply-mix hasher with the same API surface as the
//! real crate: `FxHasher`, `FxBuildHasher`, and `Default`-constructible
//! maps/sets.

use std::hash::{BuildHasherDefault, Hasher};

/// A fast multiply-mix hasher in the spirit of the rustc `FxHasher`.
///
/// Not cryptographic and not DoS-resistant — exactly like the original —
/// but deterministic within a process, which is what the workspace relies
/// on for reproducible iteration orders *never* being assumed (all code
/// paths that need determinism sort explicitly).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        m.insert("a".to_owned(), 1);
        m.insert("b".to_owned(), 2);
        assert_eq!(m["a"], 1);
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }

    #[test]
    fn hashing_is_deterministic_within_a_process() {
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        let h = |x: &str| bh.hash_one(x);
        assert_eq!(h("hello"), h("hello"));
        assert_ne!(h("hello"), h("world"));
    }
}
