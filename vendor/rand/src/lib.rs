//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the API subset the workspace uses: `rngs::StdRng` seeded via
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}` over integer
//! ranges, and `seq::SliceRandom::shuffle`. The generator is xoshiro256++
//! seeded through SplitMix64 — deterministic per seed, but **not**
//! stream-compatible with the real `StdRng` (ChaCha12).

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value uniformly from a range, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples uniformly from the range. Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + (rng.next_u64() as $t);
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// User-facing randomness methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A value uniformly distributed in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 high bits give a uniform double in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<usize> = (0..8).map(|_| a.gen_range(0..1_000_000)).collect();
        let vc: Vec<usize> = (0..8).map(|_| c.gen_range(0..1_000_000)).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2..=5u32);
            assert!((2..=5).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let trues = (0..1000).filter(|_| rng.gen_bool(0.7)).count();
        assert!((500..900).contains(&trues), "got {trues}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
