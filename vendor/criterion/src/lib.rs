//! Offline stand-in for the `criterion` crate (see `vendor/README.md`).
//!
//! Implements the subset used by the workspace benches: `Criterion`,
//! `benchmark_group`, `sample_size` / `warm_up_time` / `measurement_time`,
//! `bench_with_input`, `Bencher::iter`, `BenchmarkId`, `black_box` and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery it runs a fixed warm-up
//! followed by timed samples and prints mean / min per benchmark id:
//!
//! ```text
//! table1_ids/4            time: [mean 412.3 µs, min 398.1 µs, 10 samples]
//! ```
//!
//! Set `RBQA_BENCH_JSON=1` to additionally emit one machine-readable line
//! per benchmark (used by the experiment scripts to record numbers).

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export spot for the real crate's `black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id `function/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id consisting only of the parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    /// Mean and minimum per-iteration time of the last `iter` call.
    last: Option<(Duration, Duration, usize)>,
}

impl Bencher {
    /// Times `routine`, storing mean / min per-iteration durations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Measurement: `samples` timed runs, stopping early only if the
        // measurement window is exhausted (but always at least 1 sample).
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        let meas_start = Instant::now();
        for _ in 0..self.samples.max(1) {
            let t0 = Instant::now();
            black_box(routine());
            times.push(t0.elapsed());
            if meas_start.elapsed() >= self.measurement && !times.is_empty() {
                break;
            }
        }
        let total: Duration = times.iter().sum();
        let mean = total / times.len() as u32;
        let min = *times.iter().min().expect("at least one sample");
        self.last = Some((mean, min, times.len()));
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            warm_up: self.warm_up,
            measurement: self.measurement,
            last: None,
        };
        f(&mut bencher, input);
        let full_id = format!("{}/{}", self.name, id.id);
        match bencher.last {
            Some((mean, min, n)) => {
                println!(
                    "{full_id:<48} time: [mean {}, min {}, {n} samples]",
                    fmt_duration(mean),
                    fmt_duration(min)
                );
                if std::env::var_os("RBQA_BENCH_JSON").is_some() {
                    println!(
                        "{{\"bench\":\"{full_id}\",\"mean_ns\":{},\"min_ns\":{},\"samples\":{n}}}",
                        mean.as_nanos(),
                        min.as_nanos()
                    );
                }
            }
            None => println!("{full_id:<48} (no iter() call)"),
        }
        self
    }

    /// Finishes the group (printing is done eagerly; kept for API parity).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("== group {name}");
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_secs(1),
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; a filter arg may follow. The
            // stand-in runs everything and ignores filters.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(10));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| (0..n).sum::<usize>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_records() {
        benches();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
